"""Static dataflow extraction for SPEAR pipelines.

Because the algebra is closed over ``(P, C, M)`` (paper §3.3), every
pipeline's dataflow is derivable *before* any tokens are spent: which
prompt entries, template parameters, and context slots each operator
reads and writes is a static property of the operator parameters.  The
builder here walks a :class:`~repro.core.pipeline.Pipeline` with an
abstract interpreter that mirrors the runtime contracts — it reuses
:func:`~repro.core.operators._context_reads_for_template` (the exact
routine GEN footprints use) over the statically-known prompt texts
instead of re-implementing template parsing, and each
:class:`OpNode` can render its static input set as a
:class:`~repro.core.footprint.Footprint` so analysis results and
result-cache fingerprints speak the same vocabulary.

The abstract state tracks, per prompt key, the *set of possible texts*
(collapsing to :data:`DYNAMIC` past a small fan-out) and whether the key
is definitely or only maybe written; per context slot and metadata
signal, a definite/maybe origin.  Branch bodies (CHECK arms, SWITCH
cases, RETRY refiners) are walked as *conditional*: their writes count
as bindings for later reads but never satisfy definiteness-sensitive
checks such as dead-write detection.  Opaque operators
(:class:`~repro.core.algebra.FunctionOperator`, unknown subclasses) set
a havoc flag — everything after them may have been read or written, so
downstream "definitely missing/unused" claims are suppressed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.diagnostics import SourceSpan
from repro.core.algebra import FunctionOperator, Operator
from repro.core.derived import DIFF, MAP, RETRY, SWITCH, VIEW
from repro.core.entry import RefAction
from repro.core.footprint import ABSENT, Footprint, stable_digest
from repro.core.operators import (
    CHECK,
    DELEGATE,
    GEN,
    MERGE,
    REF,
    RET,
    _context_reads_for_template,
)
from repro.core.pipeline import Pipeline
from repro.errors import ViewError
from repro.optimizer.fusion import ref_fusion_compatibility
from repro.optimizer.gen_fusion import FusedGen
from repro.optimizer.select_view_op import SelectView

__all__ = [
    "DYNAMIC",
    "AnalysisEnv",
    "OpNode",
    "DataflowGraph",
    "build_dataflow",
    "condition_atoms",
]

#: sentinel for a prompt text (or value) the walker cannot know statically.
DYNAMIC = "<dynamic>"

#: past this many alternative texts for one key, collapse to DYNAMIC —
#: branchy pipelines would otherwise explode the product of literals.
_TEXT_FAN_LIMIT = 8

#: metadata signals one GEN application writes (see ``GEN._run``).
_GEN_SIGNALS = (
    "confidence",
    "latency",
    "prompt_tokens",
    "cached_tokens",
    "output_tokens",
    "cache_hit_rate",
    "last_gen",
    "last_prompt_key",
    "gen_calls",
)

_METADATA_ATOM = re.compile(
    r'M\["(?P<key>[^"]+)"\]\s*(?P<op>[<>])\s*(?P<value>-?\d+(?:\.\d+)?)'
)
_CONTEXT_ATOM = re.compile(r'"(?P<key>[^"]+)"\s+(?P<negated>not\s+)?in\s+C')


def condition_atoms(text: str) -> list[tuple[str, ...]]:
    """Parse the atomic reads out of a condition's textual form.

    Conditions are first-class, printable objects (``M["confidence"] <
    0.7``, ``"orders" not in C``); compound conditions render as
    ``(a) and (b)``.  Returns ``("metadata", key, op, value)`` and
    ``("context", key, "present"|"missing")`` tuples for every atom found.
    """
    atoms: list[tuple[str, ...]] = []
    for match in _METADATA_ATOM.finditer(text):
        atoms.append(
            ("metadata", match.group("key"), match.group("op"), match.group("value"))
        )
    for match in _CONTEXT_ATOM.finditer(text):
        atoms.append(
            (
                "context",
                match.group("key"),
                "missing" if match.group("negated") else "present",
            )
        )
    return atoms


@dataclass
class AnalysisEnv:
    """The environment a pipeline is checked against.

    ``None`` for ``sources``/``agents`` means "unknown" — registration
    checks are skipped; an empty list means "none registered".
    ``open_context=True`` declares that a harness binds arbitrary context
    before the run (e.g. the batch runners' per-item ``bind``), which
    downgrades missing-context findings to unknowable.
    """

    #: initially-present prompt entries: key → text (or a PromptStore).
    prompts: Mapping[str, str] = field(default_factory=dict)
    #: initially-bound context slots.
    context: Iterable[str] = ()
    views: Any = None
    sources: Sequence[str] | None = None
    agents: Sequence[str] | None = None
    open_context: bool = False
    #: template-parameter names bound per initial prompt key.
    prompt_params: Mapping[str, Iterable[str]] = field(default_factory=dict)
    #: runtime configuration the pipeline will run under (from
    #: :class:`~repro.runtime.options.RuntimeOptions`): keys like
    #: ``scheduler`` / ``priority`` / ``deadline_s``.  ``None`` means
    #: "unknown" — runtime-configuration checks (SPEAR145) are skipped.
    runtime: Mapping[str, Any] | None = None


@dataclass
class OpNode:
    """One operator application site with its extracted read/write sets."""

    index: int
    label: str
    kind: str
    operator: Operator
    span: SourceSpan | None = None
    #: labels of the enclosing named pipelines / control operators.
    path: tuple[str, ...] = ()
    #: True when the node runs only under some condition.
    conditional: bool = False
    #: True when the node may run more than once (RETRY bodies).
    repeated: bool = False
    #: True when an opaque operator ran earlier in the walk.
    under_havoc: bool = False
    #: True when the path-sensitive walker proved this node sits inside a
    #: statically-dead branch: it can never run, so per-node findings are
    #: suppressed (the dead branch itself is SPEAR148).
    unreachable: bool = False
    #: True when the walker cannot see inside this operator.
    opaque: bool = False
    prompt_reads: tuple[str, ...] = ()
    prompt_writes: tuple[str, ...] = ()
    context_reads: tuple[str, ...] = ()
    context_writes: tuple[str, ...] = ()
    metadata_reads: tuple[str, ...] = ()
    metadata_writes: tuple[str, ...] = ()
    #: template placeholder roots this node's prompt texts interpolate.
    template_params: tuple[str, ...] = ()
    #: prompt keys read here that no earlier operator (or the initial
    #: store) provides.
    missing_prompts: tuple[str, ...] = ()
    #: template roots unbound at this point in the walk.
    unbound_params: tuple[str, ...] = ()
    #: hard context reads (DELEGATE payloads) unbound at this point.
    missing_context: tuple[str, ...] = ()
    #: operator-specific extras (source/agent/view names, conditions, …).
    data: dict[str, Any] = field(default_factory=dict)

    def as_footprint(self) -> Footprint:
        """The node's static input set in result-cache vocabulary.

        Prompt versions are unknowable statically, so deps carry version
        ``-1``; read digests are :data:`ABSENT` for slots the walker saw
        unbound and :data:`DYNAMIC` otherwise.  Useful for comparing the
        static read set against runtime footprints.
        """
        reads = tuple(
            (slot, ABSENT if slot in self.unbound_params else DYNAMIC)
            for slot in self.context_reads
        )
        deps = tuple(
            (key, -1, stable_digest(DYNAMIC), stable_digest(DYNAMIC))
            for key in self.prompt_reads
        )
        return Footprint(
            operator=self.label,
            identity=stable_digest({"label": self.label, "kind": self.kind}),
            model_key=None,
            prompt_deps=deps,
            context_reads=reads,
            context_writes=self.context_writes,
        )


class DataflowGraph:
    """The extracted per-operator read/write sets of one pipeline."""

    def __init__(
        self,
        pipeline: Pipeline,
        nodes: list[OpNode],
        *,
        name: str | None = None,
        initial_prompts: frozenset[str] = frozenset(),
        initial_context: frozenset[str] = frozenset(),
        dead_writes: tuple[tuple[int, str], ...] = (),
        fusion_pairs: tuple[tuple[int, int, str], ...] = (),
    ) -> None:
        self.pipeline = pipeline
        self.name = name or pipeline.name
        self.nodes = nodes
        self.initial_prompts = initial_prompts
        self.initial_context = initial_context
        #: ``(writer_node_index, slot)`` pairs the walker proved dead.
        self.dead_writes = dead_writes
        #: ``(prev_index, node_index, verdict)`` adjacent-REF pairs.
        self.fusion_pairs = fusion_pairs
        # An opaque operator in a statically-dead branch never runs, so
        # it cannot havoc the live pipeline's negatives.
        self.has_opaque = any(
            node.opaque and not node.unreachable for node in nodes
        )
        self.prompt_readers: dict[str, list[OpNode]] = {}
        self.prompt_writers: dict[str, list[OpNode]] = {}
        self.context_readers: dict[str, list[OpNode]] = {}
        self.context_writers: dict[str, list[OpNode]] = {}
        for node in nodes:
            for key in node.prompt_reads:
                self.prompt_readers.setdefault(key, []).append(node)
            for key in node.prompt_writes:
                self.prompt_writers.setdefault(key, []).append(node)
            for slot in node.context_reads:
                self.context_readers.setdefault(slot, []).append(node)
            for slot in node.context_writes:
                self.context_writers.setdefault(slot, []).append(node)

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, label: str) -> OpNode:
        """The first node whose label matches; lists available labels."""
        for node in self.nodes:
            if node.label == label:
                return node
        available = sorted({node.label for node in self.nodes})
        raise KeyError(
            f"no operator labelled {label!r} in this dataflow graph; "
            f"available labels: {available}"
        )

    # -- aggregate sets ------------------------------------------------------

    def prompt_read_set(self) -> frozenset[str]:
        """Every prompt key some operator reads."""
        return frozenset(self.prompt_readers)

    def prompt_write_set(self) -> frozenset[str]:
        """Every prompt key some operator writes."""
        return frozenset(self.prompt_writers)

    def context_read_set(self) -> frozenset[str]:
        """Every context slot some operator reads (incl. templates)."""
        return frozenset(self.context_readers)

    def context_write_set(self) -> frozenset[str]:
        """Every context slot some operator writes."""
        return frozenset(self.context_writers)

    def writers_after(self, index: int, slot: str) -> list[OpNode]:
        """Context writers of ``slot`` strictly after node ``index``."""
        return [
            node
            for node in self.context_writers.get(slot, [])
            if node.index >= index
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataflowGraph({self.name or 'pipeline'}, {len(self.nodes)} nodes)"


# -- the abstract interpreter ----------------------------------------------


class _SlotView:
    """Duck-typed stand-in for :class:`~repro.core.context.Context`."""

    def __init__(self, slots: dict[str, str]) -> None:
        self._slots = slots

    def __contains__(self, key: object) -> bool:
        return key in self._slots

    def __getitem__(self, key: str) -> str:
        return self._slots[key]


class _StateShim:
    """The minimal state surface ``_context_reads_for_template`` needs."""

    def __init__(self, slots: dict[str, str]) -> None:
        self.context = _SlotView(slots)


class _PromptState:
    """Abstract value of one prompt key during the walk."""

    __slots__ = ("texts", "definite", "initial", "params", "spill")

    def __init__(
        self,
        texts: frozenset[str] | None,
        *,
        definite: bool = True,
        initial: bool = False,
        params: frozenset[str] = frozenset(),
        spill: frozenset[str] = frozenset(),
    ) -> None:
        #: the possible current texts; ``None`` means unknowable.
        self.texts = texts
        self.definite = definite
        self.initial = initial
        #: template roots bound by the entry's own params.
        self.params = params
        #: placeholder roots salvaged from texts the fan limiter dropped:
        #: exact content is gone, but the read set stays sound — a GEN on
        #: this key still claims these roots statically.
        self.spill = spill


class _Walker:
    def __init__(self, env: AnalysisEnv) -> None:
        self.env = env
        self.nodes: list[OpNode] = []
        self.prompts: dict[str, _PromptState] = {}
        for key in _prompt_keys(env.prompts):
            text = _prompt_text(env.prompts, key)
            self.prompts[key] = _PromptState(
                frozenset({text}) if text is not None else None,
                initial=True,
                params=frozenset(env.prompt_params.get(key, ())),
            )
        self.context: dict[str, str] = {
            slot: "definite" for slot in env.context
        }
        self.metadata: dict[str, str] = {}
        self.havoc = False
        #: slot → index of the last unconditional write not yet read.
        self.pending_writes: dict[str, int] = {}
        self.dead_writes: list[tuple[int, str]] = []
        self.fusion_pairs: list[tuple[int, int, str]] = []
        #: >0 while walking a statically-dead branch (path-sensitive mode).
        self._dead_depth = 0

    # -- node plumbing -------------------------------------------------------

    def _node(
        self,
        operator: Operator,
        kind: str,
        *,
        conditional: bool,
        repeated: bool,
        path: tuple[str, ...],
    ) -> OpNode:
        node = OpNode(
            index=len(self.nodes),
            label=operator.label,
            kind=kind,
            operator=operator,
            span=getattr(operator, "span", None),
            path=path,
            conditional=conditional,
            repeated=repeated,
            under_havoc=self.havoc,
            unreachable=self._dead_depth > 0,
        )
        self.nodes.append(node)
        return node

    # -- abstract store operations -------------------------------------------

    def _read_context(self, node: OpNode, slot: str, *, hard: bool) -> None:
        if slot not in node.context_reads:
            node.context_reads += (slot,)
        self.pending_writes.pop(slot, None)
        if hard and slot not in self.context and not self.havoc:
            if slot not in node.missing_context:
                node.missing_context += (slot,)

    def _write_context(
        self, node: OpNode, slot: str, *, conditional: bool, repeated: bool
    ) -> None:
        node.context_writes += (slot,)
        if conditional:
            self.context.setdefault(slot, "maybe")
        else:
            self.context[slot] = "definite"
        if slot.endswith("__result"):
            # GEN's companion record slot: a pipeline re-generating a
            # label overwrites it by design; never dead-write material.
            return
        previous = self.pending_writes.pop(slot, None)
        if not conditional and not repeated:
            if previous is not None and not self.havoc:
                self.dead_writes.append((previous, slot))
            self.pending_writes[slot] = node.index

    def _write_metadata(
        self, node: OpNode, signals: Iterable[str], *, conditional: bool
    ) -> None:
        for signal in signals:
            node.metadata_writes += (signal,)
            if conditional:
                self.metadata.setdefault(signal, "maybe")
            else:
                self.metadata[signal] = "definite"

    def _read_prompt(self, node: OpNode, key: str) -> _PromptState | None:
        if key not in node.prompt_reads:
            node.prompt_reads += (key,)
        info = self.prompts.get(key)
        if info is None and not self.havoc:
            node.missing_prompts += (key,)
        return info

    def _spill_roots(
        self, texts: frozenset[str], params: frozenset[str]
    ) -> frozenset[str]:
        """Placeholder roots of ``texts``, for retention past a collapse.

        Extracted eagerly (against the current abstract context) so the
        spill set stays bounded by the placeholder vocabulary no matter
        how many alternative texts the fan limiter drops.
        """
        shim = _StateShim(self.context)
        shadowed = params | {"base"}
        roots: set[str] = set()
        for text in texts:
            for root, _status in _context_reads_for_template(
                shim, text, shadowed=shadowed
            ):
                roots.add(root)
        return frozenset(roots)

    def _write_prompt(
        self,
        node: OpNode,
        key: str,
        texts: frozenset[str] | None,
        *,
        conditional: bool,
        params: frozenset[str] = frozenset(),
    ) -> None:
        node.prompt_writes += (key,)
        info = self.prompts.get(key)
        spill: frozenset[str] = frozenset()
        if texts is not None and len(texts) > _TEXT_FAN_LIMIT:
            spill = self._spill_roots(texts, params)
            texts = None
        if info is None:
            self.prompts[key] = _PromptState(
                texts, definite=not conditional, params=params, spill=spill
            )
            return
        if conditional:
            if info.texts is not None and texts is not None:
                merged = info.texts | texts
                if len(merged) <= _TEXT_FAN_LIMIT:
                    info.texts = merged
                else:
                    # Losing the exact texts must not lose their reads.
                    spill = spill | self._spill_roots(merged, info.params | params)
                    info.texts = None
            else:
                known = (info.texts or frozenset()) | (texts or frozenset())
                if known:
                    spill = spill | self._spill_roots(known, info.params | params)
                info.texts = None
        else:
            if texts is None:
                # Unknowable full write: the old content may survive (e.g.
                # a dynamic APPEND), so keep its roots as over-approximation.
                if info.texts:
                    spill = spill | self._spill_roots(info.texts, info.params)
            else:
                # Exact knowledge again: prior spill is superseded.
                info.spill = frozenset()
            info.texts = texts
            info.definite = True
        info.spill = info.spill | spill
        info.params = info.params | params

    def _template_reads(
        self,
        node: OpNode,
        info: _PromptState | None,
        *,
        shadowed: frozenset[str] = frozenset(),
    ) -> None:
        """Record the context slots a prompt's template interpolates.

        Reuses the runtime's own placeholder fingerprinting over every
        statically-known text; a DYNAMIC text contributes nothing (its
        reads are unknowable).
        """
        if info is None or (info.texts is None and not info.spill):
            return
        shadowed = shadowed | info.params | {"base"}
        shim = _StateShim(self.context)
        for text in info.texts or ():
            for root, status in _context_reads_for_template(
                shim, text, shadowed=shadowed
            ):
                if root not in node.template_params:
                    node.template_params += (root,)
                self._read_context(node, root, hard=False)
                if status == ABSENT and not self.havoc:
                    if root not in node.unbound_params:
                        node.unbound_params += (root,)
        # Roots salvaged from fan-limited texts still count as reads, but
        # never as unbound-placeholder findings: the exact text that would
        # justify the lint is gone.
        for root in info.spill:
            if root in shadowed:
                continue
            if root not in node.template_params:
                node.template_params += (root,)
            self._read_context(node, root, hard=False)

    def _read_condition(self, node: OpNode, text: str) -> None:
        for atom in condition_atoms(text):
            if atom[0] == "metadata":
                if atom[1] not in node.metadata_reads:
                    node.metadata_reads += (atom[1],)
            else:
                self._read_context(node, atom[1], hard=False)

    def _static_condition(self, text: str) -> bool | None:
        """Evaluate a condition statically, or None when unknowable.

        Only simple (single-atom) conditions are evaluated.  An unwritten
        metadata signal reads as 0.0 (the runtime's ``get`` default); a
        context slot is decidable only when definitely bound or provably
        never bound.
        """
        if self.havoc:
            return None
        stripped = text.strip()
        match = _METADATA_ATOM.fullmatch(stripped)
        if match is not None:
            if match.group("key") in self.metadata:
                return None
            threshold = float(match.group("value"))
            if match.group("op") == "<":
                return 0.0 < threshold
            return 0.0 > threshold
        match = _CONTEXT_ATOM.fullmatch(stripped)
        if match is not None:
            if self.env.open_context:
                return None
            origin = self.context.get(match.group("key"))
            if origin == "maybe":
                return None
            present = origin == "definite"
            return not present if match.group("negated") else present
        return None

    def _preview_view(
        self, name: str, params: Mapping[str, Any]
    ) -> tuple[str | None, str | None]:
        """Expand a view without touching its memo cache.

        Returns ``(text, error)``; exactly one side is set.  A missing
        registry means the text is unknowable, not an error.
        """
        if self.env.views is None:
            return None, None
        try:
            return self.env.views.preview(name, params), None
        except ViewError as error:
            return None, str(error)

    # -- walking ---------------------------------------------------------------

    def walk_sequence(
        self,
        operators: Iterable[Operator],
        *,
        conditional: bool,
        repeated: bool,
        path: tuple[str, ...],
    ) -> None:
        previous: tuple[Operator, OpNode] | None = None
        for operator in operators:
            node = self.walk(
                operator, conditional=conditional, repeated=repeated, path=path
            )
            if (
                previous is not None
                and node is not None
                and isinstance(operator, REF)
                and isinstance(previous[0], REF)
            ):
                verdict = ref_fusion_compatibility(previous[0], operator)
                if verdict != "unrelated":
                    self.fusion_pairs.append(
                        (previous[1].index, node.index, verdict)
                    )
            previous = (operator, node) if node is not None else None

    def walk(
        self,
        operator: Operator,
        *,
        conditional: bool,
        repeated: bool,
        path: tuple[str, ...],
    ) -> OpNode | None:
        if isinstance(operator, Pipeline):
            inner_path = path + ((operator.name,) if operator.name else ())
            self.walk_sequence(
                operator.operators,
                conditional=conditional,
                repeated=repeated,
                path=inner_path,
            )
            return None
        if isinstance(operator, RET):
            return self._walk_ret(operator, conditional, repeated, path)
        if isinstance(operator, GEN):
            return self._walk_gen(operator, conditional, repeated, path)
        if isinstance(operator, REF):
            return self._walk_ref(operator, conditional, repeated, path)
        if isinstance(operator, CHECK):
            return self._walk_check(operator, conditional, repeated, path)
        if isinstance(operator, MERGE):
            return self._walk_merge(operator, conditional, repeated, path)
        if isinstance(operator, DELEGATE):
            return self._walk_delegate(operator, conditional, repeated, path)
        if isinstance(operator, RETRY):
            return self._walk_retry(operator, conditional, repeated, path)
        if isinstance(operator, MAP):
            return self._walk_map(operator, conditional, repeated, path)
        if isinstance(operator, SWITCH):
            return self._walk_switch(operator, conditional, repeated, path)
        if isinstance(operator, VIEW):
            return self._walk_view(operator, conditional, repeated, path)
        if isinstance(operator, DIFF):
            return self._walk_diff(operator, conditional, repeated, path)
        if isinstance(operator, SelectView):
            return self._walk_select_view(operator, conditional, repeated, path)
        if isinstance(operator, FusedGen):
            return self._walk_fused_gen(operator, conditional, repeated, path)
        return self._walk_opaque(operator, conditional, repeated, path)

    # -- per-operator walkers ---------------------------------------------------

    def _walk_ret(self, op: RET, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "RET", conditional=conditional, repeated=repeated, path=path
        )
        node.data["source"] = op.source
        if op.prompt_key is not None:
            info = self._read_prompt(node, op.prompt_key)
            self._template_reads(node, info)
        self._write_context(
            node, op.into, conditional=conditional, repeated=repeated
        )
        return node

    def _walk_gen(self, op: GEN, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "GEN", conditional=conditional, repeated=repeated, path=path
        )
        node.data["prompt_key"] = op.prompt_key
        node.data["extra"] = sorted(op.extra)
        info = self._read_prompt(node, op.prompt_key)
        if info is not None and info.texts is not None:
            # Statically-known template texts, kept for shape-sensitive
            # checkers (e.g. SPEAR146's placeholder-ordering rule).
            node.data["prompt_texts"] = tuple(sorted(info.texts))
        self._template_reads(node, info, shadowed=frozenset(op.extra))
        self._write_context(
            node, op.label_key, conditional=conditional, repeated=repeated
        )
        self._write_context(
            node,
            f"{op.label_key}__result",
            conditional=conditional,
            repeated=repeated,
        )
        self._write_metadata(node, _GEN_SIGNALS, conditional=conditional)
        return node

    def _walk_ref(self, op: REF, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "REF", conditional=conditional, repeated=repeated, path=path
        )
        node.data["action"] = op.action.value
        node.data["condition"] = op.condition
        node.data["literal"] = isinstance(op.f, str)
        info = self.prompts.get(op.key)
        texts: frozenset[str] | None = None
        if isinstance(op.f, str):
            literal = op.f
            if op.action in (RefAction.CREATE, RefAction.UPDATE, RefAction.REPLACE):
                texts = frozenset({literal})
            elif op.action in (RefAction.APPEND, RefAction.PREPEND):
                if info is None:
                    texts = frozenset({literal})
                elif info.texts is not None:
                    if op.action is RefAction.APPEND:
                        combined = {
                            f"{current}\n{literal}" if current else literal
                            for current in info.texts
                        }
                    else:
                        combined = {
                            f"{literal}\n{current}" if current else literal
                            for current in info.texts
                        }
                    if not info.definite:
                        combined.add(literal)
                    texts = frozenset(combined)
        self._write_prompt(node, op.key, texts, conditional=conditional)
        node.metadata_reads += ("confidence", "latency")
        self._write_metadata(node, ("refinements",), conditional=conditional)
        return node

    def _walk_check(self, op: CHECK, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "CHECK", conditional=conditional, repeated=repeated, path=path
        )
        node.data["condition"] = op.cond.text
        node.data["static"] = self._static_condition(op.cond.text)
        node.data["has_then"] = op.then is not None
        node.data["has_orelse"] = op.orelse is not None
        self._read_condition(node, op.cond.text)
        self._write_metadata(node, ("checks",), conditional=conditional)
        branch_path = path + (op.label,)
        if op.then is not None:
            self.walk(
                op.then, conditional=True, repeated=repeated, path=branch_path
            )
        if op.orelse is not None:
            self.walk(
                op.orelse, conditional=True, repeated=repeated, path=branch_path
            )
        return node

    def _walk_merge(self, op: MERGE, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "MERGE", conditional=conditional, repeated=repeated, path=path
        )
        node.data["into"] = op.into
        self._read_prompt(node, op.key_1)
        self._read_prompt(node, op.key_2)
        self._write_prompt(node, op.into, None, conditional=conditional)
        return node

    def _walk_delegate(self, op: DELEGATE, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "DELEGATE", conditional=conditional, repeated=repeated, path=path
        )
        node.data["agent"] = op.agent_name
        if isinstance(op.payload, str):
            node.data["payload"] = op.payload
            self._read_context(node, op.payload, hard=True)
        else:
            node.data["dynamic_payload"] = True
        self._write_context(
            node, op.into, conditional=conditional, repeated=repeated
        )
        self._write_metadata(node, ("delegations",), conditional=conditional)
        return node

    def _walk_retry(self, op: RETRY, conditional, repeated, path) -> OpNode:
        inner_path = path + (op.label,)
        body_start = len(self.nodes)
        # The inner op always runs at least once; only re-runs are
        # conditional, so it keeps the parent's conditionality but is
        # marked repeated (its writes are overwritten by design).
        self.walk(op.op, conditional=conditional, repeated=True, path=inner_path)
        if op.refine is not None:
            self.walk(
                op.refine, conditional=True, repeated=True, path=inner_path
            )
        node = self._node(
            op, "RETRY", conditional=conditional, repeated=repeated, path=path
        )
        #: node-index span of the body (and refiner) this RETRY re-runs —
        #: the cost analyzer multiplies these nodes by the attempt bound.
        node.data["body_range"] = (body_start, node.index)
        node.data["condition"] = op.condition.text
        node.data["has_policy"] = op.policy is not None
        node.data["max_retries"] = op.max_retries
        self._read_condition(node, op.condition.text)
        self._write_metadata(node, ("retries",), conditional=True)
        return node

    def _walk_map(self, op: MAP, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "MAP", conditional=conditional, repeated=repeated, path=path
        )
        node.data["action"] = op.action.value
        for key in op.keys:
            self._write_prompt(node, key, None, conditional=conditional)
        self._write_metadata(node, ("refinements",), conditional=conditional)
        return node

    def _walk_switch(self, op: SWITCH, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "SWITCH", conditional=conditional, repeated=repeated, path=path
        )
        statics: list[bool | None] = []
        for cond, __ in op.cases:
            self._read_condition(node, cond.text)
            statics.append(self._static_condition(cond.text))
        node.data["conditions"] = [cond.text for cond, __ in op.cases]
        node.data["statics"] = statics
        node.data["has_default"] = op.default is not None
        branch_path = path + (op.label,)
        for __, case_op in op.cases:
            self.walk(
                case_op, conditional=True, repeated=repeated, path=branch_path
            )
        if op.default is not None:
            self.walk(
                op.default, conditional=True, repeated=repeated, path=branch_path
            )
        return node

    def _walk_view(self, op: VIEW, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "VIEW", conditional=conditional, repeated=repeated, path=path
        )
        node.data["view"] = op.view_name
        text, error = self._preview_view(op.view_name, op.params)
        if error is not None:
            node.data["view_error"] = error
        self._write_prompt(
            node,
            op.key,
            frozenset({text}) if text is not None else None,
            conditional=conditional,
            params=frozenset(op.params),
        )
        return node

    def _walk_diff(self, op: DIFF, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "DIFF", conditional=conditional, repeated=repeated, path=path
        )
        for spec in (op.key_1, op.key_2):
            self._read_prompt(node, spec.partition("@")[0])
        self._write_context(
            node, op.into, conditional=conditional, repeated=repeated
        )
        return node

    def _walk_select_view(self, op: SelectView, conditional, repeated, path) -> OpNode:
        node = self._node(
            op,
            "SELECT_VIEW",
            conditional=conditional,
            repeated=repeated,
            path=path,
        )
        node.data["views"] = list(op.candidates)
        errors: dict[str, str] = {}
        for candidate in op.candidates:
            __, error = self._preview_view(candidate, op.params)
            if error is not None:
                errors[candidate] = error
        if errors:
            node.data["view_errors"] = errors
        self._write_prompt(
            node,
            op.key,
            None,
            conditional=conditional,
            params=frozenset(op.params),
        )
        self._write_metadata(node, ("selected_view",), conditional=conditional)
        return node

    def _walk_fused_gen(self, op: FusedGen, conditional, repeated, path) -> OpNode:
        node = self._node(
            op, "FUSED_GEN", conditional=conditional, repeated=repeated, path=path
        )
        fused_texts: list[str] = []
        for label, prompt_key in op.specs:
            info = self._read_prompt(node, prompt_key)
            if info is not None and info.texts is not None:
                fused_texts.extend(sorted(info.texts))
            self._template_reads(node, info)
            self._write_context(
                node, label, conditional=conditional, repeated=repeated
            )
        if fused_texts:
            node.data["prompt_texts"] = tuple(fused_texts)
        self._write_context(
            node,
            f"{op.specs[0][0]}__result",
            conditional=conditional,
            repeated=repeated,
        )
        signals = tuple(
            s for s in _GEN_SIGNALS if s not in ("last_gen", "last_prompt_key")
        )
        self._write_metadata(node, signals, conditional=conditional)
        return node

    def _walk_opaque(self, op: Operator, conditional, repeated, path) -> OpNode:
        node = self._node(
            op,
            "FN" if isinstance(op, FunctionOperator) else type(op).__name__,
            conditional=conditional,
            repeated=repeated,
            path=path,
        )
        node.opaque = True
        self.havoc = True
        # An opaque operator may read any pending write, so none of them
        # can be proven dead from here on.
        self.pending_writes.clear()
        return node


def _prompt_keys(prompts: Any) -> list[str]:
    if prompts is None:
        return []
    if hasattr(prompts, "keys"):
        return list(prompts.keys())
    return list(prompts)


def _prompt_text(prompts: Any, key: str) -> str | None:
    if prompts is None:
        return None
    entry = prompts[key]
    if isinstance(entry, str):
        return entry
    text = getattr(entry, "text", None)
    return text if isinstance(text, str) else None


def build_dataflow(
    pipeline: Pipeline,
    env: AnalysisEnv | None = None,
    *,
    name: str | None = None,
    path_sensitive: bool = True,
) -> DataflowGraph:
    """Extract the per-operator read/write sets of ``pipeline``.

    Pure: neither the pipeline, the environment, nor any registry cache
    is mutated — safe to run immediately before a real execution without
    perturbing it.

    ``path_sensitive`` (the default) analyzes CHECK/SWITCH arms on
    forked abstract states with joined post-states and skips
    statically-dead arms (see :mod:`repro.analysis.absint`); pass False
    for the legacy flow-insensitive walk, which threads one mutable
    state through every arm.
    """
    env = env if env is not None else AnalysisEnv()
    if path_sensitive:
        from repro.analysis.absint import PathSensitiveWalker

        walker: _Walker = PathSensitiveWalker(env)
    else:
        walker = _Walker(env)
    walker.walk_sequence(
        pipeline.operators, conditional=False, repeated=False, path=()
    )
    return DataflowGraph(
        pipeline,
        walker.nodes,
        name=name,
        initial_prompts=frozenset(_prompt_keys(env.prompts)),
        initial_context=frozenset(env.context),
        dead_writes=tuple(walker.dead_writes),
        fusion_pairs=tuple(walker.fusion_pairs),
    )
