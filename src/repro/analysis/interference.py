"""Lane-interference analysis: races and hazards under concurrency.

A pipeline that is perfectly sound run alone can misbehave the moment it
runs *many times at once* — per item in a
:class:`~repro.runtime.parallel.ParallelBatchRunner` batch, or per
request in a :class:`~repro.serve.server.SpearServer` tenant.  The
runtime describes its concurrency shape through
``AnalysisEnv.runtime``:

- ``lanes`` — number of concurrent executions (batch workers);
- ``shared_prompts`` — lanes share one prompt store (the batch runners'
  default; ``isolate_prompts=True`` clears it);
- ``shared_context`` — lanes share context slots (never the default;
  set by harnesses that bind a communal scratch slot);
- ``serve`` — the pipeline is registered in a serving layer whose
  per-tenant prompt store persists across requests.

Three analyzers:

- SPEAR161 — write-write race: two lanes refine the same shared prompt
  key (or shared context slot), so each item's prompt depends on lane
  scheduling;
- SPEAR162 — refine-during-serve: a registered pipeline mutates a
  registered prompt key, so one request's refinement leaks into every
  later request of the tenant (supersedes the ad-hoc runtime warnings);
- SPEAR163 — non-deterministic MERGE: merging keys that concurrent
  lanes are rewriting makes the merged text depend on arrival order.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.analysis.dataflow import AnalysisEnv, DataflowGraph, OpNode
from repro.analysis.diagnostics import Diagnostic, make_diagnostic

__all__ = [
    "check_prompt_write_races",
    "check_refine_during_serve",
    "check_merge_determinism",
]

#: REF actions that mutate an existing entry rather than build a new one.
_REFINING_ACTIONS = frozenset(
    {"append", "prepend", "update", "replace", "delete"}
)


def _diag(
    code: str,
    message: str,
    graph: DataflowGraph,
    node: OpNode | None = None,
    **data: Any,
) -> Diagnostic:
    return make_diagnostic(
        code,
        message,
        operator=node.label if node is not None else None,
        pipeline=graph.name,
        span=node.span if node is not None else None,
        **data,
    )


def _runtime(env: AnalysisEnv) -> Mapping[str, Any]:
    return env.runtime or {}


def _lanes(env: AnalysisEnv) -> int:
    lanes = _runtime(env).get("lanes")
    if isinstance(lanes, int) and not isinstance(lanes, bool):
        return lanes
    return 1


def _live_prompt_writers(graph: DataflowGraph) -> dict[str, OpNode]:
    """First reachable writer per prompt key, in program order."""
    writers: dict[str, OpNode] = {}
    for node in graph:
        if node.unreachable:
            continue
        for key in node.prompt_writes:
            writers.setdefault(key, node)
    return writers


def check_prompt_write_races(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR161 — concurrent lanes write the same shared key or slot."""
    lanes = _lanes(env)
    if lanes <= 1:
        return []
    runtime = _runtime(env)
    findings: list[Diagnostic] = []
    if runtime.get("shared_prompts"):
        for key, node in sorted(_live_prompt_writers(graph).items()):
            findings.append(
                _diag(
                    "SPEAR161",
                    f"prompt key {key!r} is written while {lanes} lanes "
                    "share one prompt store: items race on its text; "
                    "pass isolate_prompts=True or refine a per-item key",
                    graph,
                    node,
                    key=key,
                    lanes=lanes,
                )
            )
    if runtime.get("shared_context"):
        seen: set[str] = set()
        for node in graph:
            if node.unreachable:
                continue
            for slot in node.context_writes:
                if slot in seen:
                    continue
                seen.add(slot)
                findings.append(
                    _diag(
                        "SPEAR161",
                        f"context slot {slot!r} is written while {lanes} "
                        "lanes share context: items race on its value",
                        graph,
                        node,
                        slot=slot,
                        lanes=lanes,
                    )
                )
    return findings


def check_refine_during_serve(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR162 — a served pipeline mutates persistent prompt state.

    The serving layer's per-tenant prompt store outlives any single
    request (requests fork context and metadata, not prompts), so a
    refining write — a non-CREATE REF, a MAP, a MERGE, or any write to a
    key the registration seeded — changes what *every later request* of
    the tenant renders.  Creating a fresh working key is fine; mutating
    shared prompt state from request handling is flagged.
    """
    if not _runtime(env).get("serve"):
        return []
    registered = set(env.prompts)
    findings: list[Diagnostic] = []
    flagged: set[str] = set()
    for node in graph:
        if node.unreachable or not node.prompt_writes:
            continue
        if node.kind == "REF":
            refining = node.data.get("action") in _REFINING_ACTIONS
        elif node.kind in ("MAP", "MERGE"):
            refining = True
        else:
            refining = False
        for key in node.prompt_writes:
            if key in flagged:
                continue
            if not refining and key not in registered:
                continue
            flagged.add(key)
            findings.append(
                _diag(
                    "SPEAR162",
                    f"prompt key {key!r} is refined while the pipeline "
                    "is registered for serving: the tenant prompt store "
                    "persists across requests, so this write leaks into "
                    "every later request; refine into a fresh key or "
                    "re-register instead",
                    graph,
                    node,
                    key=key,
                )
            )
    return findings


def check_merge_determinism(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR163 — MERGE over keys concurrent lanes are rewriting."""
    lanes = _lanes(env)
    if lanes <= 1 or not _runtime(env).get("shared_prompts"):
        return []
    written = set(_live_prompt_writers(graph))
    findings: list[Diagnostic] = []
    for node in graph:
        if node.kind != "MERGE" or node.unreachable:
            continue
        racy = sorted(written & set(node.prompt_reads))
        if not racy:
            continue
        keys = ", ".join(repr(key) for key in racy)
        findings.append(
            _diag(
                "SPEAR163",
                f"MERGE reads {keys} which {lanes} concurrent lanes are "
                "rewriting: the merged text depends on lane arrival "
                "order and is not deterministic",
                graph,
                node,
                keys=tuple(racy),
                lanes=lanes,
            )
        )
    return findings
