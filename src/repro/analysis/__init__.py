"""Static dataflow analysis and linting for SPEAR pipelines.

The algebra's closure over ``(P, C, M)`` makes pipeline dataflow a
static property; this package extracts it (:mod:`~repro.analysis.dataflow`),
lints it against ~15 stable diagnostic codes
(:mod:`~repro.analysis.checkers`), and exposes `spear check` / strict
mode through three entry points (:mod:`~repro.analysis.check`).
"""

from repro.analysis.check import check_pipeline, check_program, check_state
from repro.analysis.checkers import ANALYZERS, run_analyzers
from repro.analysis.dataflow import (
    AnalysisEnv,
    DataflowGraph,
    OpNode,
    build_dataflow,
)
from repro.analysis.diagnostics import (
    CODE_CATALOG,
    CheckResult,
    Diagnostic,
    Severity,
    SourceSpan,
    make_diagnostic,
)

__all__ = [
    "check_pipeline",
    "check_program",
    "check_state",
    "ANALYZERS",
    "run_analyzers",
    "AnalysisEnv",
    "DataflowGraph",
    "OpNode",
    "build_dataflow",
    "CODE_CATALOG",
    "CheckResult",
    "Diagnostic",
    "Severity",
    "SourceSpan",
    "make_diagnostic",
]
