"""Static dataflow analysis and linting for SPEAR pipelines.

The algebra's closure over ``(P, C, M)`` makes pipeline dataflow a
static property; this package extracts it (:mod:`~repro.analysis.dataflow`),
interprets it path-sensitively (:mod:`~repro.analysis.absint`), prices
it (:mod:`~repro.analysis.costs`), checks it for lane interference
(:mod:`~repro.analysis.interference`), lints it against the stable
diagnostic catalog (:mod:`~repro.analysis.checkers`), and exposes
`spear check` / strict mode through three entry points
(:mod:`~repro.analysis.check`) plus an incremental re-check cache
(:mod:`~repro.analysis.cache`).
"""

from repro.analysis.absint import PathSensitiveWalker
from repro.analysis.cache import (
    GLOBAL_CHECK_CACHE,
    CheckCache,
    cached_check_pipeline,
    cached_check_state,
    fingerprint_check,
)
from repro.analysis.check import check_pipeline, check_program, check_state
from repro.analysis.checkers import ANALYZERS, run_analyzers
from repro.analysis.costs import (
    CostBound,
    OperatorCost,
    PipelineCostSummary,
    estimate_costs,
)
from repro.analysis.dataflow import (
    AnalysisEnv,
    DataflowGraph,
    OpNode,
    build_dataflow,
)
from repro.analysis.diagnostics import (
    CODE_CATALOG,
    CheckResult,
    Diagnostic,
    Severity,
    SourceSpan,
    make_diagnostic,
)
from repro.analysis.sarif import to_sarif
from repro.analysis.suppressions import Suppression, apply_suppressions

__all__ = [
    "check_pipeline",
    "check_program",
    "check_state",
    "ANALYZERS",
    "run_analyzers",
    "AnalysisEnv",
    "DataflowGraph",
    "OpNode",
    "build_dataflow",
    "PathSensitiveWalker",
    "CODE_CATALOG",
    "CheckResult",
    "Diagnostic",
    "Severity",
    "SourceSpan",
    "make_diagnostic",
    "CostBound",
    "OperatorCost",
    "PipelineCostSummary",
    "estimate_costs",
    "CheckCache",
    "GLOBAL_CHECK_CACHE",
    "cached_check_pipeline",
    "cached_check_state",
    "fingerprint_check",
    "Suppression",
    "apply_suppressions",
    "to_sarif",
]
