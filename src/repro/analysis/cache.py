"""Incremental re-check cache: strict mode in O(1) for unchanged pipelines.

Strict mode re-validates on *every* run — a per-request graph build plus
the full analyzer registry.  For a server re-registering tenants or a
batch runner validating the same pipeline per batch, almost all of that
work is identical run to run.  This module fingerprints the pair
*(pipeline structure, environment)* without building the dataflow graph
and memoizes the resulting :class:`~repro.analysis.diagnostics.
CheckResult`, so a warm re-check is one hash plus one dict lookup.

The fingerprint covers everything analysis can observe: operator
structure (types, keys, texts, conditions, nested pipelines), initial
prompt texts and params, bound context slots, registered sources and
agents, the view registry, ``open_context``, and the runtime mapping.
Unhashable leaves (callables, custom objects) fall back to identity —
two *distinct but equal* lambdas miss the cache, which only costs a
re-analysis, never a stale verdict.

Hits and misses are observable as ``spear_check_cache_hits_total`` /
``spear_check_cache_misses_total`` when a metrics registry is passed.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.analysis.check import check_pipeline
from repro.analysis.diagnostics import CheckResult
from repro.core.operators import Operator
from repro.core.pipeline import Pipeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.state import ExecutionState
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "GLOBAL_CHECK_CACHE",
    "CheckCache",
    "fingerprint_check",
    "cached_check_pipeline",
    "cached_check_state",
]

_PRIMITIVES = (str, int, float, bool, bytes)


def _describe(obj: Any, depth: int = 0) -> Any:
    """A stable, structural description of ``obj`` for hashing."""
    if depth > 32:
        return "<deep>"
    if obj is None or isinstance(obj, _PRIMITIVES):
        return obj
    if isinstance(obj, Pipeline):
        return (
            "Pipeline",
            tuple(_describe(op, depth + 1) for op in obj.operators),
        )
    if isinstance(obj, (list, tuple)):
        return tuple(_describe(item, depth + 1) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return tuple(sorted(repr(_describe(item, depth + 1)) for item in obj))
    if isinstance(obj, Mapping):
        return tuple(
            (str(key), _describe(value, depth + 1))
            for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))
        )
    text = getattr(obj, "text", None)
    if text is not None and type(obj).__name__ == "Condition":
        return ("Condition", text)
    attrs = getattr(obj, "__dict__", None)
    # Operators are callable but must be described structurally: two
    # separately-built but equal pipelines share one cache entry.
    if attrs is not None and (isinstance(obj, Operator) or not callable(obj)):
        return (
            type(obj).__name__,
            tuple(
                (name, _describe(value, depth + 1))
                for name, value in sorted(attrs.items())
            ),
        )
    # Callables and __slots__ exotica: identity is the only safe key.
    return f"{type(obj).__name__}:{getattr(obj, '__qualname__', '')}@{id(obj)}"


#: per-object memo of the (expensive) structural pipeline digest.  The
#: id-tuple guard detects operators being replaced, added, removed, or
#: reordered; mutating an operator's attributes *in place* after a check
#: is not detected (operators are build-time-frozen by convention).
_PIPELINE_DIGESTS: "weakref.WeakKeyDictionary[Pipeline, tuple[tuple[int, ...], str]]" = (
    weakref.WeakKeyDictionary()
)


def _pipeline_digest(pipeline: Pipeline) -> str:
    """Digest of the pipeline's structural description, memoized.

    The structural walk dominates warm fingerprint cost; re-checking the
    same pipeline object (the serve and strict-executor hot path) skips
    it entirely.  Distinct-but-equal pipelines still converge on the
    same digest through the full walk.
    """
    ops_ids = tuple(id(op) for op in pipeline.operators)
    memo = _PIPELINE_DIGESTS.get(pipeline)
    if memo is not None and memo[0] == ops_ids:
        return memo[1]
    digest = hashlib.sha256(repr(_describe(pipeline)).encode()).hexdigest()
    _PIPELINE_DIGESTS[pipeline] = (ops_ids, digest)
    return digest


def fingerprint_check(
    pipeline: Pipeline,
    *,
    prompts: Mapping[str, Any] | None = None,
    context: Iterable[str] = (),
    views: Any = None,
    sources: Sequence[str] | None = None,
    agents: Sequence[str] | None = None,
    open_context: bool = False,
    prompt_params: Mapping[str, Iterable[str]] | None = None,
    name: str | None = None,
    runtime: Mapping[str, Any] | None = None,
) -> str:
    """Content hash of one (pipeline, environment) check request."""
    description = (
        _pipeline_digest(pipeline),
        _describe(
            {
                key: getattr(value, "text", value)
                for key, value in (prompts or {}).items()
            }
        ),
        tuple(sorted(context)),
        _describe(views),
        tuple(sources) if sources is not None else None,
        tuple(agents) if agents is not None else None,
        open_context,
        _describe(
            {key: tuple(value) for key, value in (prompt_params or {}).items()}
        ),
        name,
        _describe(runtime) if runtime is not None else None,
    )
    return hashlib.sha256(repr(description).encode()).hexdigest()


class CheckCache:
    """A bounded LRU of check results keyed by content fingerprint."""

    def __init__(self, maxsize: int = 512) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, CheckResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def get(self, key: str) -> CheckResult | None:
        result = self._entries.get(key)
        if result is not None:
            self._entries.move_to_end(key)
        return result

    def put(self, key: str, result: CheckResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def check(
        self,
        pipeline: Pipeline,
        *,
        metrics: "MetricsRegistry | None" = None,
        **env: Any,
    ) -> CheckResult:
        """:func:`~repro.analysis.check.check_pipeline`, memoized.

        Accepts exactly ``check_pipeline``'s keyword environment.  The
        returned result is shared between callers — treat it as frozen.
        """
        key = fingerprint_check(pipeline, **env)
        cached = self.get(key)
        if cached is not None:
            self.hits += 1
            if metrics is not None:
                metrics.counter(
                    "spear_check_cache_hits_total",
                    "Static re-checks served from the incremental cache.",
                ).inc()
            return cached
        self.misses += 1
        if metrics is not None:
            metrics.counter(
                "spear_check_cache_misses_total",
                "Static checks that ran the full analysis.",
            ).inc()
        result = check_pipeline(pipeline, **env)
        self.put(key, result)
        return result


#: the process-wide cache strict mode and the serving layer share.
GLOBAL_CHECK_CACHE = CheckCache()


def cached_check_pipeline(
    pipeline: Pipeline,
    *,
    cache: CheckCache | None = None,
    metrics: "MetricsRegistry | None" = None,
    **env: Any,
) -> CheckResult:
    """Memoized :func:`~repro.analysis.check.check_pipeline`."""
    if cache is None:
        cache = GLOBAL_CHECK_CACHE
    return cache.check(pipeline, metrics=metrics, **env)


def cached_check_state(
    pipeline: Pipeline,
    state: "ExecutionState",
    *,
    name: str | None = None,
    open_context: bool = False,
    runtime: Mapping[str, Any] | None = None,
    cache: CheckCache | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> CheckResult:
    """Memoized :func:`~repro.analysis.check.check_state`.

    Mirrors ``check_state``'s environment extraction so the fingerprint
    sees exactly what the analysis would: prompt texts and params,
    context slots, the attached view registry, sources, and agents.
    """
    prompts: dict[str, str] = {}
    prompt_params: dict[str, tuple[str, ...]] = {}
    for key in state.prompts.keys():
        entry = state.prompts[key]
        prompts[key] = entry.text
        prompt_params[key] = tuple(entry.params)
    if cache is None:
        cache = GLOBAL_CHECK_CACHE
    return cache.check(
        pipeline,
        metrics=metrics,
        prompts=prompts,
        context=tuple(state.context.keys()),
        views=getattr(state, "_views", None),
        sources=state.sources(),
        agents=state.agents(),
        open_context=open_context,
        prompt_params=prompt_params,
        name=name,
        runtime=runtime,
    )
