"""The analyzer suite: dataflow graph → diagnostics.

Each analyzer is a pure function ``(graph, env) -> list[Diagnostic]``
over one pipeline's :class:`~repro.analysis.dataflow.DataflowGraph`;
:func:`run_analyzers` runs the whole registry.  Analyzers that assert a
*negative* over the whole pipeline ("this slot is never written", "this
write is never read") are skipped when the graph contains an opaque
operator — a :class:`~repro.core.algebra.FunctionOperator` may read or
write anything, so such claims would be unsound.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.analysis.costs import (
    check_cache_defeating_refiner,
    check_deadline_feasible,
    check_unbounded_fanout,
)
from repro.analysis.dataflow import AnalysisEnv, DataflowGraph, OpNode
from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.analysis.interference import (
    check_merge_determinism,
    check_prompt_write_races,
    check_refine_during_serve,
)

__all__ = ["run_analyzers", "ANALYZERS"]


def _diag(
    code: str,
    message: str,
    graph: DataflowGraph,
    node: OpNode | None = None,
    **data: Any,
) -> Diagnostic:
    return make_diagnostic(
        code,
        message,
        operator=node.label if node is not None else None,
        pipeline=graph.name,
        span=node.span if node is not None else None,
        **data,
    )


#: prompt keys read because a later write *appends to* them are created
#: implicitly; only these node kinds genuinely consume a prompt's text.
_PROMPT_READER_KINDS = frozenset({"GEN", "RET", "MERGE", "DIFF", "FUSED_GEN"})


def check_undefined_prompt_refs(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR101 — reading a prompt key no earlier operator creates."""
    findings = []
    for node in graph:
        if node.unreachable:
            continue  # dead branch: the arm itself is SPEAR148
        if node.kind == "MERGE":
            continue  # reported as SPEAR131 with merge-specific context
        for key in node.missing_prompts:
            findings.append(
                _diag(
                    "SPEAR101",
                    f"prompt key {key!r} is read here but never created "
                    "by an earlier operator or the initial prompt store",
                    graph,
                    node,
                    key=key,
                )
            )
    return findings


def check_unbound_template_params(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR102/SPEAR111 — template placeholders with no binding.

    A placeholder whose slot *some later operator* writes is a
    read-before-write (SPEAR111); one no operator ever writes is an
    unbound parameter that will render literally (SPEAR102).
    """
    if graph.has_opaque or env.open_context:
        return []
    findings = []
    for node in graph:
        if node.unreachable:
            continue
        for root in node.unbound_params:
            later = [
                writer
                for writer in graph.context_writers.get(root, [])
                if writer.index > node.index
            ]
            if later:
                findings.append(
                    _diag(
                        "SPEAR111",
                        f"context slot {root!r} is interpolated here but "
                        f"first written later by {later[0].label}",
                        graph,
                        node,
                        slot=root,
                        first_writer=later[0].label,
                    )
                )
            else:
                findings.append(
                    _diag(
                        "SPEAR102",
                        f"template placeholder {{{root}}} is never bound "
                        "by context, view params, or extra= literals; it "
                        "will render literally",
                        graph,
                        node,
                        placeholder=root,
                    )
                )
    return findings


def check_shadowed_template_params(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR103 — a GEN ``extra=`` literal hides a pipeline-written slot."""
    findings = []
    for node in graph:
        if node.kind != "GEN" or node.unreachable:
            continue
        for key in node.data.get("extra", ()):
            writers = [
                writer
                for writer in graph.context_writers.get(key, [])
                if writer.index != node.index
            ]
            if writers or key in graph.initial_context:
                findings.append(
                    _diag(
                        "SPEAR103",
                        f"extra= literal {key!r} shadows the context slot "
                        "of the same name; the literal wins over the "
                        "pipeline's value",
                        graph,
                        node,
                        param=key,
                    )
                )
    return findings


def check_view_resolution(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR104 — VIEW/SELECT_VIEW that cannot expand."""
    findings = []
    for node in graph:
        error = node.data.get("view_error")
        if error is not None:
            findings.append(
                _diag("SPEAR104", error, graph, node, view=node.data.get("view"))
            )
        for candidate, message in node.data.get("view_errors", {}).items():
            findings.append(
                _diag("SPEAR104", message, graph, node, view=candidate)
            )
    return findings


def check_read_before_write(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR111/SPEAR142 — hard context reads of unwritten slots.

    A DELEGATE whose payload slot is produced by its own (or a later)
    delegation is a cycle (SPEAR142); any other unwritten hard read is a
    read-before-write (SPEAR111).
    """
    if graph.has_opaque or env.open_context:
        return []
    findings = []
    for node in graph:
        if node.unreachable:
            continue
        for slot in node.missing_context:
            later = graph.writers_after(node.index, slot)
            delegate_writer = next(
                (writer for writer in later if writer.kind == "DELEGATE"), None
            )
            if node.kind == "DELEGATE" and delegate_writer is not None:
                findings.append(
                    _diag(
                        "SPEAR142",
                        f"delegation payload slot {slot!r} is only produced "
                        f"by {delegate_writer.label}"
                        + (
                            " (this very delegation)"
                            if delegate_writer.index == node.index
                            else " later in the pipeline"
                        )
                        + "; the delegation can never observe its input",
                        graph,
                        node,
                        slot=slot,
                        writer=delegate_writer.label,
                    )
                )
                continue
            strictly_later = [w for w in later if w.index > node.index]
            if strictly_later:
                findings.append(
                    _diag(
                        "SPEAR111",
                        f"context slot {slot!r} is read here but first "
                        f"written later by {strictly_later[0].label}",
                        graph,
                        node,
                        slot=slot,
                        first_writer=strictly_later[0].label,
                    )
                )
            else:
                findings.append(
                    _diag(
                        "SPEAR111",
                        f"context slot {slot!r} is read here but never "
                        "written by any operator or the initial context",
                        graph,
                        node,
                        slot=slot,
                    )
                )
    return findings


def check_dead_writes(graph: DataflowGraph, env: AnalysisEnv) -> list[Diagnostic]:
    """SPEAR112 — context writes unconditionally clobbered before a read."""
    if graph.has_opaque:
        return []
    findings = []
    for index, slot in graph.dead_writes:
        node = graph.nodes[index]
        findings.append(
            _diag(
                "SPEAR112",
                f"the write to context slot {slot!r} is overwritten before "
                "any operator reads it",
                graph,
                node,
                slot=slot,
            )
        )
    return findings


def check_unused_prompts(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR121 — prompt entries the pipeline builds but never consumes."""
    if graph.has_opaque:
        return []
    findings = []
    consumed = {
        key
        for key, readers in graph.prompt_readers.items()
        if any(reader.kind in _PROMPT_READER_KINDS for reader in readers)
    }
    for key, writers in sorted(graph.prompt_writers.items()):
        if key in consumed:
            continue
        live_writers = [w for w in writers if not w.unreachable]
        if not live_writers:
            continue  # only a dead branch builds it; that arm is SPEAR148
        node = live_writers[0]
        findings.append(
            _diag(
                "SPEAR121",
                f"prompt key {key!r} is written but never read by "
                "GEN/RET/MERGE/DIFF",
                graph,
                node,
                key=key,
            )
        )
    return findings


def check_merge_unwritten(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR131 — MERGE over prompt keys that are never written."""
    findings = []
    for node in graph:
        if node.kind != "MERGE" or node.unreachable:
            continue
        for key in node.missing_prompts:
            findings.append(
                _diag(
                    "SPEAR131",
                    f"MERGE reads prompt key {key!r}, which no earlier "
                    "operator or the initial prompt store provides; the "
                    "merge would fail at runtime",
                    graph,
                    node,
                    key=key,
                )
            )
    return findings


def check_unbounded_retry(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR141 — RETRY without a RetryPolicy."""
    findings = []
    for node in graph:
        if node.unreachable:
            continue
        if node.kind == "RETRY" and not node.data.get("has_policy", True):
            findings.append(
                _diag(
                    "SPEAR141",
                    "RETRY has no RetryPolicy: transient model errors are "
                    "not retried and nothing bounds backoff; pass policy= "
                    "or use the DL form (which always attaches one)",
                    graph,
                    node,
                    max_retries=node.data.get("max_retries"),
                )
            )
    return findings


def check_unknown_agents(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR143 — DELEGATE to an unregistered agent."""
    if env.agents is None:
        return []
    known = set(env.agents)
    findings = []
    for node in graph:
        if node.kind != "DELEGATE" or node.unreachable:
            continue
        agent = node.data.get("agent")
        if agent not in known:
            findings.append(
                _diag(
                    "SPEAR143",
                    f"agent {agent!r} is not registered; "
                    f"available agents: {sorted(known)}",
                    graph,
                    node,
                    agent=agent,
                )
            )
    return findings


def check_unknown_sources(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR144 — RET from an unregistered data source."""
    if env.sources is None:
        return []
    known = set(env.sources)
    findings = []
    for node in graph:
        if node.kind != "RET" or node.unreachable:
            continue
        source = node.data.get("source")
        if source not in known:
            findings.append(
                _diag(
                    "SPEAR144",
                    f"data source {source!r} is not registered; "
                    f"available sources: {sorted(known)}",
                    graph,
                    node,
                    source=source,
                )
            )
    return findings


def check_dead_branches(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR148 — branches that can never fire.

    Only *unreachable work* is flagged: a constant-true CHECK guarding a
    then-branch is a common idiom for "run once" (``"x" not in C``) and
    stays silent; a constant-false CHECK with a then-branch (or a
    constant-true one with an else-branch) hides operators that can
    never run.
    """
    findings = []
    for node in graph:
        if node.kind == "CHECK":
            static = node.data.get("static")
            condition = node.data.get("condition")
            if static is False and node.data.get("has_then"):
                findings.append(
                    _diag(
                        "SPEAR148",
                        f"condition {condition!r} is statically false here; "
                        "the then-branch can never fire",
                        graph,
                        node,
                        condition=condition,
                        branch="then",
                    )
                )
            if static is True and node.data.get("has_orelse"):
                findings.append(
                    _diag(
                        "SPEAR148",
                        f"condition {condition!r} is statically true here; "
                        "the else-branch can never fire",
                        graph,
                        node,
                        condition=condition,
                        branch="orelse",
                    )
                )
        elif node.kind == "SWITCH":
            conditions = node.data.get("conditions", [])
            for position, static in enumerate(node.data.get("statics", [])):
                if static is False:
                    findings.append(
                        _diag(
                            "SPEAR148",
                            f"switch case {position} condition "
                            f"{conditions[position]!r} is statically false; "
                            "the case can never fire",
                            graph,
                            node,
                            condition=conditions[position],
                            case=position,
                        )
                    )
    return findings


def check_fusion_safety(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR171/SPEAR172 — cross-validate against the fusion planner.

    Verdicts come from the planner's own
    :func:`~repro.optimizer.fusion.ref_fusion_compatibility`, so the set
    of pairs ``fuse_refs`` coalesces is exactly the SPEAR171 set and the
    planner can never fuse a pair flagged SPEAR172.
    """
    findings = []
    for prev_index, index, verdict in graph.fusion_pairs:
        prev_node = graph.nodes[prev_index]
        node = graph.nodes[index]
        if verdict == "fusable":
            findings.append(
                _diag(
                    "SPEAR171",
                    f"adjacent literal REF[APPEND]s ({prev_node.label} then "
                    f"{node.label}) on one key; fuse_refs will coalesce "
                    "them into a single edit",
                    graph,
                    node,
                    previous=prev_node.label,
                    verdict=verdict,
                )
            )
        else:
            reason = {
                "dynamic": "a refiner is a callable",
                "incompatible-mode": "their refinement modes differ",
                "incompatible-condition": "they record different "
                "triggering conditions",
            }.get(verdict, verdict)
            findings.append(
                _diag(
                    "SPEAR172",
                    f"adjacent REF[APPEND]s ({prev_node.label} then "
                    f"{node.label}) on one key cannot be fused: {reason}; "
                    "the planner will skip them",
                    graph,
                    node,
                    previous=prev_node.label,
                    verdict=verdict,
                )
            )
    return findings


def check_deadline_without_scheduler(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR145 — deadline/priority configured but no scheduler to act on it.

    ``deadline_s`` (and a non-default ``priority``) only influence
    admission ordering inside the continuous
    :class:`~repro.runtime.scheduler.GenScheduler`; with the scheduler
    disabled they silently no-op — the classic misconfiguration this
    check surfaces.  Runs only when the environment describes the
    runtime (``env.runtime``); unknown runtime skips it.
    """
    runtime = env.runtime
    if runtime is None or runtime.get("serve"):
        # Serving pools get the sharper SPEAR147 finding instead.
        return []
    scheduler = runtime.get("scheduler")
    enabled = scheduler is not None and scheduler is not False
    if enabled:
        return []
    configured = [
        name
        for name in ("deadline_s", "priority")
        if runtime.get(name) is not None
    ]
    if not configured:
        return []
    gen = next((node for node in graph if node.kind == "GEN"), None)
    return [
        _diag(
            "SPEAR145",
            f"{' and '.join(configured)} configured but no scheduler is "
            "enabled; the deadline/priority policy will silently no-op — "
            "enable RuntimeOptions(scheduler=...) or drop the setting",
            graph,
            gen,
            configured=tuple(configured),
        )
    ]


def check_serve_policy_without_scheduler(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR147 — serving policy configured but the pool runs unscheduled.

    Extends SPEAR145 to the serving layer: when ``env.runtime`` describes
    a :class:`~repro.serve.server.SpearServer` pool (``serve`` truthy)
    whose ``scheduler`` is disabled, per-request/per-tenant ``priority``
    and ``deadline_s`` still order *admission* but never reach the
    per-run GEN scheduler — the serving policy silently degrades to
    queue ordering.  Callers describe the pool with keys like
    ``{"serve": True, "scheduler": False, "deadline_s": 5.0}``.
    """
    runtime = env.runtime
    if runtime is None or not runtime.get("serve"):
        return []
    scheduler = runtime.get("scheduler")
    enabled = scheduler is not None and scheduler is not False
    if enabled:
        return []
    configured = [
        name
        for name in ("deadline_s", "priority")
        if runtime.get(name) is not None
    ]
    if not configured:
        return []
    gen = next((node for node in graph if node.kind == "GEN"), None)
    return [
        _diag(
            "SPEAR147",
            f"serving {' and '.join(configured)} configured but the pool's "
            "scheduler is disabled; requests are admission-ordered only and "
            "the per-run deadline/priority policy silently no-ops — build "
            "SpearServer(scheduler=True) or a SchedulerConfig",
            graph,
            gen,
            configured=tuple(configured),
        )
    ]


#: mirror of the runtime's placeholder syntax (``repro.core.entry``);
#: dotted names resolve from their root key.
_TEMPLATE_PLACEHOLDER_RE = re.compile(r"\{([A-Za-z_][A-Za-z0-9_.]*)\}")


def _static_text_len(segment: str) -> int:
    """Length of ``segment`` with placeholders removed and edges trimmed."""
    return len(_TEMPLATE_PLACEHOLDER_RE.sub("", segment).strip())


def check_item_first_template(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR146 — a varying placeholder precedes the template's static text.

    Prefix caching shares the longest common *leading* token run across
    requests, so a GEN template that interpolates per-item content before
    its static instructions diverges at the first varying token and every
    request re-prefills the instructions from scratch.  Instruction-first
    ordering makes the static text the shared trunk instead — same
    tokens, same model output, large prefill savings under the radix
    cache (see ``repro.llm.tasks.POST_ITEM_MARKER``).

    A placeholder is *varying* when its root reads from the item context
    (``node.template_params``); prompt-entry params and ``{base}`` are
    call-static and do not trip the rule.  Only statically-known texts
    are inspected, and only when the static text after the first varying
    placeholder outweighs the static text before it.
    """
    findings = []
    for node in graph:
        if node.kind not in ("GEN", "FUSED_GEN") or node.unreachable:
            continue
        texts = node.data.get("prompt_texts")
        if not texts:
            continue
        varying = set(node.template_params)
        if not varying:
            continue
        for text in texts:
            first = None
            root = ""
            for match in _TEMPLATE_PLACEHOLDER_RE.finditer(text):
                root = match.group(1).split(".", 1)[0]
                if root in varying:
                    first = match
                    break
            if first is None:
                continue
            before = _static_text_len(text[: first.start()])
            after = _static_text_len(text[first.end() :])
            if after <= before:
                continue
            findings.append(
                _diag(
                    "SPEAR146",
                    f"template puts the varying placeholder {{{root}}} before "
                    f"most of its static text ({after} static chars after it "
                    f"vs {before} before): item-first ordering defeats prefix "
                    "caching — move the static instructions ahead of the "
                    "placeholder",
                    graph,
                    node,
                    placeholder=root,
                    static_before=before,
                    static_after=after,
                    fix_hint=(
                        "move the static instruction text before the "
                        f"{{{root}}} placeholder so requests share a common "
                        "prompt trunk"
                    ),
                )
            )
            break  # one finding per GEN is enough; further texts add noise
    return findings


ANALYZERS: tuple[Callable[[DataflowGraph, AnalysisEnv], list[Diagnostic]], ...] = (
    check_undefined_prompt_refs,
    check_unbound_template_params,
    check_shadowed_template_params,
    check_view_resolution,
    check_read_before_write,
    check_dead_writes,
    check_unused_prompts,
    check_merge_unwritten,
    check_unbounded_retry,
    check_unknown_agents,
    check_unknown_sources,
    check_dead_branches,
    check_fusion_safety,
    check_deadline_without_scheduler,
    check_serve_policy_without_scheduler,
    check_item_first_template,
    # cost bounds (repro.analysis.costs)
    check_deadline_feasible,
    check_unbounded_fanout,
    check_cache_defeating_refiner,
    # lane interference (repro.analysis.interference)
    check_prompt_write_races,
    check_refine_during_serve,
    check_merge_determinism,
)


def run_analyzers(graph: DataflowGraph, env: AnalysisEnv) -> list[Diagnostic]:
    """Run every registered analyzer over one pipeline's graph."""
    findings: list[Diagnostic] = []
    for analyzer in ANALYZERS:
        findings.extend(analyzer(graph, env))
    return findings
