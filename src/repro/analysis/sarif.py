"""SARIF 2.1.0 output for `spear check` — CI-native diagnostics.

GitHub code scanning, VS Code's SARIF viewer, and most CI lint
aggregators speak `SARIF <https://sarifweb.azurewebsites.net/>`_; this
renderer maps the checker's :class:`~repro.analysis.diagnostics.
CheckResult` onto it: one ``run``, one rule per catalog code that
appears, one ``result`` per diagnostic with its source region when the
finding carries a span.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.analysis.diagnostics import CODE_CATALOG, Diagnostic, Severity

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule(code: str) -> dict[str, Any]:
    severity, title, summary = CODE_CATALOG[code]
    return {
        "id": code,
        "name": title,
        "shortDescription": {"text": summary},
        "defaultConfiguration": {"level": _LEVELS[severity]},
    }


def _result(diagnostic: Diagnostic) -> dict[str, Any]:
    message = diagnostic.message
    if diagnostic.operator:
        message = f"{diagnostic.operator}: {message}"
    result: dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": message},
    }
    span = diagnostic.span
    if span is not None and span.file:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": span.file},
                    "region": {
                        "startLine": max(span.line, 1),
                        "startColumn": max(span.column, 1),
                    },
                }
            }
        ]
    if diagnostic.pipeline:
        result["properties"] = {"pipeline": diagnostic.pipeline}
    return result


def to_sarif(diagnostics: Iterable[Diagnostic]) -> dict[str, Any]:
    """Render diagnostics as one SARIF 2.1.0 log (a JSON-ready dict)."""
    findings = list(diagnostics)
    rules = sorted({diagnostic.code for diagnostic in findings})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "spear-check",
                        "informationUri": "docs/static-analysis.md",
                        "rules": [_rule(code) for code in rules],
                    }
                },
                "results": [_result(diagnostic) for diagnostic in findings],
            }
        ],
    }
