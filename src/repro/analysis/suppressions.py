"""Inline suppressions: ``# spear: ignore[SPEAR1xx]`` in SPEAR-DL source.

A suppression comment silences the listed codes on its *target line* —
the comment's own line when it trails code, the next line when it
stands alone:

.. code-block:: text

    pipeline p {
      # spear: ignore[SPEAR121]
      REF[CREATE, "draft", key="scratch"]
      GEN["answer", prompt="qa"]  # spear: ignore[SPEAR101]
    }

Suppressions are collected by the lexer
(:func:`repro.dl.lexer.collect_suppressions`) so they survive exactly
as the parser sees the source, and applied after analysis by
:func:`apply_suppressions`.  Every listed code that silenced nothing —
a stale suppression, a typo, an unknown code — comes back as SPEAR199,
so suppressions can never rot silently.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.diagnostics import (
    CODE_CATALOG,
    CheckResult,
    Diagnostic,
    SourceSpan,
    make_diagnostic,
)

__all__ = ["SUPPRESSION_RE", "Suppression", "apply_suppressions"]

#: the accepted comment shape; codes are comma-separated inside [].
SUPPRESSION_RE = re.compile(
    r"#\s*spear:\s*ignore\[(?P<codes>[A-Za-z0-9_,\s]+)\]"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# spear: ignore[...]`` comment."""

    #: the line whose findings are silenced.
    line: int
    codes: tuple[str, ...]
    #: where the comment itself sits (SPEAR199 anchors here).
    comment_line: int
    comment_column: int

    @classmethod
    def from_comment(
        cls, text: str, line: int, column: int, *, trailing: bool
    ) -> "Suppression | None":
        """Parse a comment's text; None when it is not a suppression.

        ``trailing`` — the comment follows code on its own line, so it
        targets that line; a standalone comment targets the next line.
        """
        match = SUPPRESSION_RE.search(text)
        if match is None:
            return None
        codes = tuple(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        if not codes:
            return None
        return cls(
            line=line if trailing else line + 1,
            codes=codes,
            comment_line=line,
            comment_column=column,
        )


def apply_suppressions(
    result: Iterable[Diagnostic],
    suppressions: Sequence[Suppression],
    *,
    filename: str | None = None,
) -> CheckResult:
    """Drop suppressed findings; surface useless suppressions as SPEAR199.

    A ``(suppression, code)`` pair is *used* when at least one finding
    with that code sat on the suppression's target line.  Unused pairs —
    including codes the catalog does not know — each yield one SPEAR199
    anchored at the comment.  SPEAR199 itself cannot be suppressed.
    """
    by_line: dict[int, list[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)
    used: set[tuple[Suppression, str]] = set()
    kept: list[Diagnostic] = []
    for diagnostic in result:
        span = diagnostic.span
        silenced = False
        if diagnostic.code != "SPEAR199" and span is not None:
            for suppression in by_line.get(span.line, ()):
                if diagnostic.code in suppression.codes:
                    used.add((suppression, diagnostic.code))
                    silenced = True
        if not silenced:
            kept.append(diagnostic)
    out = CheckResult(kept)
    extra: list[Diagnostic] = []
    for suppression in suppressions:
        for code in suppression.codes:
            if (suppression, code) in used:
                continue
            reason = (
                "nothing to suppress"
                if code in CODE_CATALOG
                else "unknown code"
            )
            extra.append(
                make_diagnostic(
                    "SPEAR199",
                    f"useless suppression: {code} ({reason}) — no such "
                    f"finding on line {suppression.line}; remove it",
                    span=SourceSpan(
                        file=filename,
                        line=suppression.comment_line,
                        column=suppression.comment_column,
                    ),
                    suppressed_code=code,
                    target_line=suppression.line,
                )
            )
    out.extend(extra)
    return out.sort()
