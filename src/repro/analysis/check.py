"""Entry points: check pipelines, states, and SPEAR-DL programs.

Three front doors, one engine:

- :func:`check_pipeline` — a Python-API :class:`~repro.core.pipeline.Pipeline`
  against an explicitly described environment;
- :func:`check_state` — a pipeline against a live
  :class:`~repro.core.state.ExecutionState` (what strict mode runs);
- :func:`check_program` — SPEAR-DL source or a parsed
  :class:`~repro.dl.ast_nodes.Program`: syntax and compile failures become
  SPEAR001/SPEAR002 diagnostics instead of exceptions, every compiled
  pipeline is checked, and program-level findings (unused views) ride on
  the view definitions' source spans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.analysis.checkers import run_analyzers
from repro.analysis.dataflow import AnalysisEnv, DataflowGraph, build_dataflow
from repro.analysis.diagnostics import (
    CheckResult,
    SourceSpan,
    make_diagnostic,
)
from repro.analysis.suppressions import Suppression, apply_suppressions
from repro.core.pipeline import Pipeline
from repro.core.state import ExecutionState
from repro.errors import DslCompileError, DslSyntaxError

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at call time: repro.dl.compiler stamps SourceSpans
    # from repro.analysis.diagnostics, so a module-level import here
    # would be circular.
    from repro.dl.ast_nodes import Program

__all__ = ["check_pipeline", "check_state", "check_program"]


def _check_graph(graph: DataflowGraph, env: AnalysisEnv) -> CheckResult:
    # Sorted on emission: stable output across runs and dict orders.
    return CheckResult(run_analyzers(graph, env)).sort()


def check_pipeline(
    pipeline: Pipeline,
    *,
    prompts: Mapping[str, Any] | None = None,
    context: Iterable[str] = (),
    views: Any = None,
    sources: Sequence[str] | None = None,
    agents: Sequence[str] | None = None,
    open_context: bool = False,
    prompt_params: Mapping[str, Iterable[str]] | None = None,
    name: str | None = None,
    runtime: Mapping[str, Any] | None = None,
) -> CheckResult:
    """Statically check one pipeline against a described environment.

    ``prompts`` maps initially-present prompt keys to their text (or to
    entry objects with a ``.text``); ``context`` lists initially-bound
    slots.  ``sources``/``agents`` of None mean "unknown" and skip the
    registration checks (SPEAR143/SPEAR144); pass explicit lists — even
    empty ones — to enable them.  ``open_context=True`` declares that a
    harness binds arbitrary context before running (per-item batch
    inputs), suppressing missing-context findings.  ``runtime``
    describes the runner configuration the pipeline will execute under
    (keys like ``scheduler`` / ``deadline_s``), enabling the
    runtime-configuration checks (SPEAR145); None skips them.
    """
    env = AnalysisEnv(
        prompts=prompts or {},
        context=tuple(context),
        views=views,
        sources=sources,
        agents=agents,
        open_context=open_context,
        prompt_params=prompt_params or {},
        runtime=runtime,
    )
    graph = build_dataflow(pipeline, env, name=name)
    return _check_graph(graph, env)


def check_state(
    pipeline: Pipeline,
    state: ExecutionState,
    *,
    name: str | None = None,
    open_context: bool = False,
    runtime: Mapping[str, Any] | None = None,
) -> CheckResult:
    """Check a pipeline against a live execution state.

    Derives the environment from the state itself: present prompt entries
    (with their texts and bound params), bound context slots, the view
    registry *if one was attached* (never forces the lazy registry into
    existence), and the registered sources/agents.
    """
    prompts: dict[str, str] = {}
    prompt_params: dict[str, tuple[str, ...]] = {}
    for key in state.prompts.keys():
        entry = state.prompts[key]
        prompts[key] = entry.text
        prompt_params[key] = tuple(entry.params)
    return check_pipeline(
        pipeline,
        prompts=prompts,
        context=tuple(state.context.keys()),
        views=getattr(state, "_views", None),
        sources=state.sources(),
        agents=state.agents(),
        open_context=open_context,
        prompt_params=prompt_params,
        name=name,
        runtime=runtime,
    )


def _used_views(graphs: Iterable[DataflowGraph], program: "Program") -> set[str]:
    """View names instantiated anywhere, closed over their base chains."""
    used: set[str] = set()
    for graph in graphs:
        for node in graph:
            view = node.data.get("view")
            if view is not None:
                used.add(view)
            used.update(node.data.get("views", ()))
    bases = {view.name: view.base for view in program.views}
    frontier = list(used)
    while frontier:
        base = bases.get(frontier.pop())
        if base is not None and base not in used:
            used.add(base)
            frontier.append(base)
    return used


def check_program(
    program: "Program | str",
    *,
    views: Any = None,
    filename: str | None = None,
    suppressions: "Sequence[Suppression] | None" = None,
) -> CheckResult:
    """Check a SPEAR-DL program (source text or parsed AST).

    Never raises for defects in the program itself: lex/parse failures
    come back as SPEAR001, lowering failures as SPEAR002 — both carrying
    the source span — and a broken program short-circuits (there is
    nothing sound to analyze).  Sources and agents are unknowable from DL
    alone, so SPEAR143/SPEAR144 are skipped here.

    Inline ``# spear: ignore[SPEAR1xx]`` comments suppress matching
    findings on their target line; when checking source text they are
    collected automatically, for a pre-parsed AST pass ``suppressions``.
    Suppressions that silence nothing come back as SPEAR199.
    """
    from repro.dl.compiler import compile_program
    from repro.dl.lexer import collect_suppressions
    from repro.dl.parser import parse

    source = program if isinstance(program, str) else None
    result = CheckResult()
    if isinstance(program, str):
        try:
            program = parse(program)
        except DslSyntaxError as error:
            result.extend(
                [
                    make_diagnostic(
                        "SPEAR001",
                        str(error),
                        span=SourceSpan(
                            file=filename,
                            line=getattr(error, "line", 0),
                            column=getattr(error, "column", 0),
                        ),
                    )
                ]
            )
            return result
    try:
        compiled = compile_program(program, views=views, filename=filename)
    except DslCompileError as error:
        result.extend(
            [
                make_diagnostic(
                    "SPEAR002",
                    str(error),
                    span=SourceSpan(
                        file=filename,
                        line=getattr(error, "line", 0),
                        column=getattr(error, "column", 0),
                    ),
                )
            ]
        )
        return result

    graphs: list[DataflowGraph] = []
    for pipeline_name, pipeline in sorted(compiled.pipelines.items()):
        env = AnalysisEnv(views=compiled.views)
        graph = build_dataflow(pipeline, env, name=pipeline_name)
        graphs.append(graph)
        result.extend(_check_graph(graph, env))

    used = _used_views(graphs, program)
    for view_def in program.views:
        if view_def.name not in used:
            result.extend(
                [
                    make_diagnostic(
                        "SPEAR122",
                        f"view {view_def.name!r} is defined but never "
                        "instantiated or extended by a used view",
                        span=SourceSpan(
                            file=filename,
                            line=view_def.line,
                            column=view_def.column,
                        ),
                        view=view_def.name,
                    )
                ]
            )
    result.sort()
    if suppressions is None and isinstance(source, str):
        suppressions = collect_suppressions(source)
    if suppressions:
        result = apply_suppressions(result, suppressions, filename=filename)
    return result
