"""Static cost bounds: tokens, simulated seconds, dollars — before any call.

The paper's cost-aware view selection (§5) needs per-operator cost
summaries the optimizer can compare *statically*; strict mode needs them
to reject a pipeline whose ``deadline_s`` is infeasible before burning a
single token.  This module walks a :class:`~repro.analysis.dataflow.
DataflowGraph` and prices every generation site with the optimizer's own
:class:`~repro.optimizer.cost_model.CostModel` and the observability
layer's :class:`~repro.obs.report.Pricing`:

- the **lower bound** sums only unconditional, reachable nodes — work the
  pipeline cannot avoid, each generation charged its cheapest
  statically-known prompt text;
- the **upper bound** sums every reachable node, each generation charged
  its most expensive known text, with RETRY bodies multiplied by
  ``1 + max_retries`` (nested RETRYs compound).

Prompt texts the walker could not track (dynamic refiners, fan-out past
the text limit, opaque operators) are priced at zero prompt tokens and
the affected bounds are marked ``exact=False`` — the lower bound stays
sound, the upper bound is best-effort.

Three analyzers ride on the bounds:

- SPEAR151 — ``deadline_s`` below the lower-bound latency: statically
  infeasible, no scheduler policy can save it;
- SPEAR152 — a RETRY whose condition reads only signals its body never
  writes: the verdict cannot change between attempts, so every permitted
  attempt runs and only ``max_retries`` bounds the token spend;
- SPEAR153 — a cache-defeating refiner: a conditional/repeated REF or
  MAP whose dependent suffix (the optimizer's
  :func:`~repro.optimizer.incremental.dependent_suffix` taint, mirrored
  statically) covers ≥90% of the pipeline, so every refinement
  invalidates essentially everything downstream of the prefix cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.dataflow import AnalysisEnv, DataflowGraph, OpNode
from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.obs.report import Pricing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.profiles import ModelProfile
    from repro.optimizer.cost_model import CostModel

__all__ = [
    "DEFAULT_OUTPUT_TOKENS",
    "CostBound",
    "OperatorCost",
    "PipelineCostSummary",
    "estimate_costs",
    "check_deadline_feasible",
    "check_unbounded_fanout",
    "check_cache_defeating_refiner",
]

#: assumed decode length when a GEN carries no ``max_tokens`` — mirrors
#: the optimizer's ``repro.optimizer.incremental._DEFAULT_OUTPUT_TOKENS``.
DEFAULT_OUTPUT_TOKENS = 48

#: generation sites — the only nodes that move tokens.
_GEN_KINDS = frozenset({"GEN", "FUSED_GEN"})

#: pure control nodes: excluded from the SPEAR153 step denominator, like
#: the optimizer's flattened-operator view.
_CONTROL_KINDS = frozenset({"CHECK", "SWITCH", "RETRY"})

#: SPEAR153 fires when the dependent suffix covers at least this
#: fraction of the pipeline's (non-control) steps …
_SUFFIX_FRACTION = 0.9
#: … and at least this many steps actually re-run (tiny pipelines where
#: "everything" is two steps are not a caching hazard).
_SUFFIX_MIN_RERUN = 3


@dataclass(frozen=True)
class CostBound:
    """One bound's token/latency/dollar triple."""

    tokens: int = 0
    seconds: float = 0.0
    usd: float = 0.0

    def __add__(self, other: "CostBound") -> "CostBound":
        return CostBound(
            tokens=self.tokens + other.tokens,
            seconds=self.seconds + other.seconds,
            usd=self.usd + other.usd,
        )

    def scaled(self, factor: int) -> "CostBound":
        return CostBound(
            tokens=self.tokens * factor,
            seconds=self.seconds * factor,
            usd=self.usd * factor,
        )


@dataclass(frozen=True)
class OperatorCost:
    """One node's contribution to the pipeline bounds."""

    index: int
    label: str
    kind: str
    lower: CostBound
    upper: CostBound
    #: upper-bound execution count (RETRY attempt multiplier; 0 for
    #: nodes the lower bound excludes is *not* recorded here — this is
    #: the worst case).
    max_runs: int = 1
    #: False when the node's prompt text was not statically known and
    #: its tokens are priced at zero.
    exact: bool = True


@dataclass(frozen=True)
class PipelineCostSummary:
    """Whole-pipeline lower/upper cost bounds with per-node detail."""

    pipeline: str | None
    operators: tuple[OperatorCost, ...] = ()
    lower: CostBound = field(default_factory=CostBound)
    upper: CostBound = field(default_factory=CostBound)
    #: False when any priced node had unknown prompt text.
    exact: bool = True


def _default_model() -> "CostModel":
    from repro.llm.profiles import DEFAULT_PROFILE, get_profile
    from repro.optimizer.cost_model import CostModel

    return CostModel(get_profile(DEFAULT_PROFILE))


def _attempt_multipliers(graph: DataflowGraph) -> dict[int, int]:
    """Worst-case execution count per node index (RETRY bodies compound)."""
    runs: dict[int, int] = {node.index: 1 for node in graph}
    for node in graph:
        if node.kind != "RETRY":
            continue
        body_range = node.data.get("body_range")
        if body_range is None:
            continue
        attempts = 1 + int(node.data.get("max_retries") or 0)
        start, stop = body_range
        for index in range(start, stop):
            runs[index] = runs.get(index, 1) * attempts
    return runs


def _gen_cost(
    node: OpNode, model: "CostModel"
) -> tuple[CostBound, CostBound, bool]:
    """(lower, upper, exact) per single execution of a generation node."""
    output_tokens = getattr(node.operator, "max_tokens", None)
    if output_tokens is None:
        output_tokens = DEFAULT_OUTPUT_TOKENS
    texts = node.data.get("prompt_texts")
    if not texts:
        estimate = model.call("", expected_output_tokens=output_tokens)
        bound = CostBound(
            tokens=estimate.prompt_tokens + estimate.output_tokens,
            seconds=estimate.seconds,
            usd=0.0,
        )
        return bound, bound, False
    estimates = [
        model.call(text, expected_output_tokens=output_tokens)
        for text in texts
    ]
    bounds = [
        CostBound(
            tokens=estimate.prompt_tokens + estimate.output_tokens,
            seconds=estimate.seconds,
            usd=0.0,
        )
        for estimate in estimates
    ]
    lower = min(bounds, key=lambda bound: bound.tokens)
    upper = max(bounds, key=lambda bound: bound.tokens)
    return lower, upper, True


def _priced(bound: CostBound, node: OpNode, pricing: Pricing) -> CostBound:
    output_tokens = getattr(node.operator, "max_tokens", None)
    if output_tokens is None:
        output_tokens = DEFAULT_OUTPUT_TOKENS
    prompt_tokens = max(bound.tokens - output_tokens, 0)
    return CostBound(
        tokens=bound.tokens,
        seconds=bound.seconds,
        usd=pricing.cost(prompt_tokens, 0, min(output_tokens, bound.tokens)),
    )


def estimate_costs(
    graph: DataflowGraph,
    env: AnalysisEnv | None = None,
    *,
    model: "CostModel | None" = None,
    pricing: Pricing | None = None,
) -> PipelineCostSummary:
    """Lower/upper token, latency, and dollar bounds for ``graph``."""
    del env  # reserved: future profile/pricing from the environment
    if model is None:
        model = _default_model()
    if pricing is None:
        pricing = Pricing()
    runs = _attempt_multipliers(graph)
    operators: list[OperatorCost] = []
    total_lower = CostBound()
    total_upper = CostBound()
    exact = True
    for node in graph:
        if node.unreachable or node.kind not in _GEN_KINDS:
            continue
        lower_one, upper_one, node_exact = _gen_cost(node, model)
        lower_one = _priced(lower_one, node, pricing)
        upper_one = _priced(upper_one, node, pricing)
        max_runs = runs.get(node.index, 1)
        # Unavoidable work only: conditional nodes may never run, and a
        # RETRY body is only guaranteed its first attempt.
        lower = CostBound() if node.conditional else lower_one
        upper = upper_one.scaled(max_runs)
        operators.append(
            OperatorCost(
                index=node.index,
                label=node.label,
                kind=node.kind,
                lower=lower,
                upper=upper,
                max_runs=max_runs,
                exact=node_exact,
            )
        )
        total_lower = total_lower + lower
        total_upper = total_upper + upper
        exact = exact and node_exact
    return PipelineCostSummary(
        pipeline=graph.name,
        operators=tuple(operators),
        lower=total_lower,
        upper=total_upper,
        exact=exact,
    )


def _diag(
    code: str,
    message: str,
    graph: DataflowGraph,
    node: OpNode | None = None,
    **data: object,
) -> Diagnostic:
    return make_diagnostic(
        code,
        message,
        operator=node.label if node is not None else None,
        pipeline=graph.name,
        span=node.span if node is not None else None,
        **data,
    )


def check_deadline_feasible(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR151 — ``deadline_s`` below the lower-bound latency."""
    runtime = env.runtime or {}
    deadline = runtime.get("deadline_s")
    if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
        return []
    summary = estimate_costs(graph, env)
    if summary.lower.seconds <= deadline:
        return []
    anchor = next(
        (
            node
            for node in graph
            if node.kind in _GEN_KINDS
            and not node.conditional
            and not node.unreachable
        ),
        None,
    )
    return [
        _diag(
            "SPEAR151",
            f"deadline_s={deadline:g} is statically infeasible: the "
            f"unavoidable generation work alone takes at least "
            f"{summary.lower.seconds:.2f}s "
            f"({summary.lower.tokens} tokens); no scheduler policy can "
            "meet this deadline",
            graph,
            anchor,
            deadline_s=float(deadline),
            lower_seconds=round(summary.lower.seconds, 6),
            lower_tokens=summary.lower.tokens,
        )
    ]


def check_unbounded_fanout(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR152 — RETRY whose verdict can never change between attempts.

    When the retry condition reads only metadata/context slots the body
    never writes, a failing first attempt fails them all: every
    permitted attempt fires and only ``max_retries`` bounds the token
    spend.  Bodies containing opaque operators are skipped (they could
    write anything).
    """
    del env
    findings: list[Diagnostic] = []
    for node in graph:
        if node.kind != "RETRY" or node.unreachable:
            continue
        body_range = node.data.get("body_range")
        if body_range is None:
            continue
        start, stop = body_range
        body = [graph.nodes[index] for index in range(start, stop)]
        if not any(inner.kind in _GEN_KINDS for inner in body):
            continue
        if any(inner.opaque for inner in body):
            continue
        condition_metadata = set(node.metadata_reads)
        condition_context = set(node.context_reads)
        if not condition_metadata and not condition_context:
            continue
        written_metadata = {
            signal for inner in body for signal in inner.metadata_writes
        }
        written_context = {
            slot for inner in body for slot in inner.context_writes
        }
        if condition_metadata & written_metadata:
            continue
        if condition_context & written_context:
            continue
        attempts = 1 + int(node.data.get("max_retries") or 0)
        condition = node.data.get("condition")
        findings.append(
            _diag(
                "SPEAR152",
                f"retry condition {condition!r} reads only signals its "
                f"body never writes, so the verdict cannot change "
                f"between attempts: all {attempts} permitted attempts "
                "will run and only max_retries bounds the token spend",
                graph,
                node,
                condition=condition,
                attempts=attempts,
            )
        )
    return findings


def _dependent_steps(
    graph: DataflowGraph, refiner: OpNode
) -> tuple[list[OpNode], list[OpNode]]:
    """Static mirror of the optimizer's ``dependent_suffix`` taint.

    Returns ``(steps, rerun)``: the pipeline's live non-control steps
    and the subset invalidated when ``refiner`` rewrites its keys.
    Taint runs from the top, exactly like incremental re-execution after
    a refinement: any step touching a tainted prompt key re-runs, and
    re-running steps taint every context slot and prompt key they write.
    """
    tainted_prompts = set(refiner.prompt_writes)
    tainted_context: set[str] = set()
    steps: list[OpNode] = []
    rerun: list[OpNode] = []
    for node in graph:
        if node.unreachable or node.kind in _CONTROL_KINDS:
            continue
        steps.append(node)
        touched = tainted_prompts & (
            set(node.prompt_reads) | set(node.prompt_writes)
        )
        if not touched and not (tainted_context & set(node.context_reads)):
            continue
        rerun.append(node)
        tainted_prompts.update(node.prompt_writes)
        tainted_context.update(node.context_writes)
    return steps, rerun


def check_cache_defeating_refiner(
    graph: DataflowGraph, env: AnalysisEnv
) -> list[Diagnostic]:
    """SPEAR153 — a refiner whose dependent suffix swallows the pipeline.

    Only *refinement sites* — conditional or repeated non-CREATE REFs
    and MAPs, the operators adaptive loops re-run — are considered;
    unconditional top-of-pipeline prompt construction is not a caching
    hazard because it runs exactly once.
    """
    del env
    findings: list[Diagnostic] = []
    for node in graph:
        if node.unreachable or not (node.conditional or node.repeated):
            continue
        if node.kind == "REF":
            if node.data.get("action") == "create":
                continue
        elif node.kind != "MAP":
            continue
        if not node.prompt_writes:
            continue
        steps, rerun = _dependent_steps(graph, node)
        if len(rerun) < _SUFFIX_MIN_RERUN:
            continue
        fraction = len(rerun) / max(len(steps), 1)
        if fraction < _SUFFIX_FRACTION:
            continue
        keys = ", ".join(sorted(node.prompt_writes))
        findings.append(
            _diag(
                "SPEAR153",
                f"refining {keys!r} invalidates {len(rerun)} of "
                f"{len(steps)} pipeline steps ({fraction:.0%}): every "
                "refinement defeats the prefix cache; refine a narrower "
                "key or move the refiner later",
                graph,
                node,
                keys=tuple(sorted(node.prompt_writes)),
                rerun_steps=len(rerun),
                total_steps=len(steps),
                fraction=round(fraction, 4),
            )
        )
    return findings
