"""Word lists used by the synthetic corpus generators.

Kept in one module so tests can assert lexicon properties (e.g. the
positive and negative lexicons are disjoint) and so the generators and the
fallback lexicon classifier in :mod:`repro.llm.tasks` agree on vocabulary.
"""

from __future__ import annotations

__all__ = [
    "POSITIVE_PHRASES",
    "NEGATIVE_PHRASES",
    "SCHOOL_TOPICS",
    "GENERAL_TOPICS",
    "NOISE_HASHTAGS",
    "NOISE_HANDLES",
    "POSITIVE_WORDS",
    "NEGATIVE_WORDS",
]

POSITIVE_PHRASES = (
    "absolutely loving",
    "so happy about",
    "really enjoyed",
    "feeling great after",
    "thrilled with",
    "had an amazing time at",
    "can't stop smiling about",
    "grateful for",
    "super excited for",
    "best day ever thanks to",
)

NEGATIVE_PHRASES = (
    "completely fed up with",
    "so stressed about",
    "really hated",
    "feeling awful after",
    "devastated by",
    "had a terrible time at",
    "can't stop worrying about",
    "exhausted because of",
    "dreading",
    "worst day ever thanks to",
)

SCHOOL_TOPICS = (
    "the math exam",
    "my chemistry homework",
    "the history class",
    "our school project",
    "the physics teacher",
    "finals week at school",
    "the biology midterm",
    "my class presentation",
    "the school schedule",
    "studying for exams",
)

GENERAL_TOPICS = (
    "the new coffee place",
    "this rainy weather",
    "my phone battery",
    "the traffic downtown",
    "the football game",
    "my weekend plans",
    "the concert last night",
    "my new headphones",
    "the airline delay",
    "dinner with friends",
)

NOISE_HASHTAGS = (
    "#fml",
    "#blessed",
    "#mondays",
    "#nofilter",
    "#random",
    "#life",
)

NOISE_HANDLES = (
    "@sam_k",
    "@jenny_loo",
    "@the_real_mx",
    "@carlos99",
    "@pat_outside",
)

#: Single-word lexicons used by the fallback (non-oracle) classifier.
POSITIVE_WORDS = frozenset(
    {
        "loving",
        "happy",
        "enjoyed",
        "great",
        "thrilled",
        "amazing",
        "smiling",
        "grateful",
        "excited",
        "best",
    }
)

NEGATIVE_WORDS = frozenset(
    {
        "fed",
        "stressed",
        "hated",
        "awful",
        "devastated",
        "terrible",
        "worrying",
        "exhausted",
        "dreading",
        "worst",
    }
)
