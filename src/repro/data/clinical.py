"""Synthetic clinical-note corpus for the Enoxaparin QA use case (paper §2).

The paper motivates SPEAR with a pipeline that extracts and reasons over
Enoxaparin mentions in clinical notes (dosage, timing, indication), with
runtime refinement triggered by low confidence and missing context (e.g.
medication orders absent from the retrieved notes).  Real clinical data is
gated, so we generate a seeded synthetic corpus with exactly the structure
that pipeline exercises:

- per-patient notes of three kinds (discharge summary, radiology report,
  nursing note) — the view-dispatch example of §4.2;
- structured ground truth (dosage, timing, indication) per patient;
- optional medication orders and lab results, deliberately *missing* for a
  fraction of patients so the "Missing Order Retrieval" pattern of Table 1
  has something to retrieve;
- difficulty scores that scale the simulated model's error rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = [
    "ClinicalNote",
    "MedOrder",
    "LabResult",
    "Patient",
    "ClinicalCorpus",
    "make_clinical_corpus",
    "NOTE_KINDS",
]

NOTE_KINDS = ("discharge_summary", "radiology_report", "nursing_note")

_DOSAGES = ("30 mg", "40 mg", "60 mg", "80 mg", "1 mg/kg")
_TIMINGS = (
    "within the last 24 hours",
    "within the last 48 hours",
    "within the last 72 hours",
    "more than 72 hours ago",
)
_INDICATIONS = (
    "DVT prophylaxis",
    "PE treatment",
    "atrial fibrillation bridging",
    "post-operative anticoagulation",
)
_LABS = ("D-dimer", "anti-Xa level", "platelet count", "creatinine")


@dataclass(frozen=True)
class ClinicalNote:
    """One note in a patient chart."""

    note_id: str
    patient_id: str
    kind: str  # one of NOTE_KINDS
    text: str
    mentions_enoxaparin: bool


@dataclass(frozen=True)
class MedOrder:
    """A structured medication order."""

    order_id: str
    patient_id: str
    medication: str
    dosage: str
    frequency: str


@dataclass(frozen=True)
class LabResult:
    """A structured lab result."""

    lab_id: str
    patient_id: str
    test: str
    value: str


@dataclass(frozen=True)
class Patient:
    """A patient chart plus QA ground truth."""

    patient_id: str
    notes: tuple[ClinicalNote, ...]
    orders: tuple[MedOrder, ...]
    labs: tuple[LabResult, ...]
    #: ground truth for the QA task; None when the patient never received
    #: Enoxaparin (the pipeline should answer "not administered").
    dosage: str | None
    timing: str | None
    indication: str | None
    difficulty: float = 0.5

    @property
    def on_enoxaparin(self) -> bool:
        """Whether the chart records any Enoxaparin use."""
        return self.dosage is not None

    @property
    def has_orders(self) -> bool:
        """Whether structured orders were captured (missing-context knob)."""
        return bool(self.orders)


@dataclass
class ClinicalCorpus:
    """All patients, with lookup indexes."""

    patients: list[Patient] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.by_id = {patient.patient_id: patient for patient in self.patients}
        self._note_index = {
            note.note_id: note
            for patient in self.patients
            for note in patient.notes
        }

    def __len__(self) -> int:
        return len(self.patients)

    def __iter__(self):
        return iter(self.patients)

    def note(self, note_id: str) -> ClinicalNote:
        """Look up a note by id."""
        return self._note_index[note_id]

    def all_notes(self) -> list[ClinicalNote]:
        """Every note in the corpus."""
        return list(self._note_index.values())

    def find_patient_in(self, text: str) -> Patient | None:
        """Ground a prompt against the corpus via the embedded patient id."""
        for patient_id, patient in self.by_id.items():
            if patient_id in text:
                return patient
        return None


def _note_text(
    rng: random.Random,
    kind: str,
    patient_id: str,
    dosage: str | None,
    timing: str | None,
    indication: str | None,
) -> tuple[str, bool]:
    """Compose note text; returns (text, mentions_enoxaparin)."""
    header = f"[{kind}] Patient {patient_id}."
    if dosage is None:
        fillers = {
            "discharge_summary": (
                "Hospital course uneventful. Discharged on home medications; "
                "no anticoagulants prescribed. Follow-up in two weeks."
            ),
            "radiology_report": (
                "CT chest without contrast: no acute findings. "
                "Impression: unremarkable study."
            ),
            "nursing_note": (
                "Patient resting comfortably. Vitals stable. "
                "No new medications administered this shift."
            ),
        }
        return f"{header} {fillers[kind]}", False

    mentions = True
    if kind == "discharge_summary":
        body = (
            f"Admitted for {indication}. Enoxaparin {dosage} subcutaneously "
            f"daily was started, last administered {timing}. "
            "Continue on discharge; follow-up with anticoagulation clinic."
        )
    elif kind == "radiology_report":
        body = (
            "CT angiography performed for suspected embolism. "
            f"Impression consistent with {indication}. "
            "Clinical team notified; anticoagulation initiated."
        )
        # Radiology reports rarely restate the drug name explicitly.
        mentions = rng.random() < 0.3
        if mentions:
            body += f" Patient receiving enoxaparin {dosage}."
    else:  # nursing_note
        body = (
            f"Administered enoxaparin {dosage} subcutaneously {timing}. "
            "Injection site without hematoma. Patient tolerated well."
        )
    return f"{header} {body}", mentions


def make_clinical_corpus(
    n_patients: int = 50,
    *,
    seed: int = 11,
    enoxaparin_fraction: float = 0.7,
    missing_orders_fraction: float = 0.3,
) -> ClinicalCorpus:
    """Generate a seeded corpus of ``n_patients`` charts."""
    if not 0.0 <= enoxaparin_fraction <= 1.0:
        raise ValueError(
            f"enoxaparin_fraction must be in [0, 1]: {enoxaparin_fraction}"
        )
    rng = random.Random(seed)
    patients: list[Patient] = []
    for index in range(n_patients):
        patient_id = f"p{index:04d}"
        on_drug = rng.random() < enoxaparin_fraction
        dosage = rng.choice(_DOSAGES) if on_drug else None
        timing = rng.choice(_TIMINGS) if on_drug else None
        indication = rng.choice(_INDICATIONS) if on_drug else None

        notes = []
        for note_number, kind in enumerate(NOTE_KINDS):
            text, mentions = _note_text(
                rng, kind, patient_id, dosage, timing, indication
            )
            notes.append(
                ClinicalNote(
                    note_id=f"{patient_id}-n{note_number}",
                    patient_id=patient_id,
                    kind=kind,
                    text=text,
                    mentions_enoxaparin=mentions,
                )
            )

        orders: list[MedOrder] = []
        if on_drug and rng.random() >= missing_orders_fraction:
            orders.append(
                MedOrder(
                    order_id=f"{patient_id}-o0",
                    patient_id=patient_id,
                    medication="enoxaparin",
                    dosage=dosage or "",
                    frequency="daily",
                )
            )

        labs = [
            LabResult(
                lab_id=f"{patient_id}-l{lab_number}",
                patient_id=patient_id,
                test=test,
                value=f"{rng.uniform(0.2, 4.0):.2f}",
            )
            for lab_number, test in enumerate(rng.sample(_LABS, k=2))
        ]

        patients.append(
            Patient(
                patient_id=patient_id,
                notes=tuple(notes),
                orders=tuple(orders),
                labs=tuple(labs),
                dosage=dosage,
                timing=timing,
                indication=indication,
                difficulty=round(rng.random(), 4),
            )
        )
    return ClinicalCorpus(patients)
