"""Synthetic corpus generators (Sentiment140 stand-in, clinical notes)."""

from repro.data.clinical import (
    ClinicalCorpus,
    ClinicalNote,
    LabResult,
    MedOrder,
    Patient,
    make_clinical_corpus,
)
from repro.data.tweets import Tweet, TweetCorpus, make_tweet_corpus

__all__ = [
    "ClinicalCorpus",
    "ClinicalNote",
    "LabResult",
    "MedOrder",
    "Patient",
    "make_clinical_corpus",
    "Tweet",
    "TweetCorpus",
    "make_tweet_corpus",
]
