"""Synthetic Sentiment140-like tweet corpus.

The paper samples 1K tweets (balanced positive/negative) from Sentiment140
for its §7 experiments.  The dataset is not shipped here, so we generate a
seeded synthetic stand-in with the properties the experiments depend on:

- balanced (or parameterized) sentiment labels — the Filter stage's
  selectivity knob for Table 4;
- a school-related topical attribute — the refinement target in Table 3;
- noisy surface text (handles, hashtags, URLs, elongations) that the Map
  ("clean up / summarize") stage meaningfully transforms;
- a per-item difficulty in [0, 1] scaling the simulated model's error rate;
- exact ground truth for F1 computation.

Negative tweets are generated slightly longer than positive ones (rants
run long), which yields the mild selectivity-dependence of fused Map→Filter
latency the paper observes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["Tweet", "TweetCorpus", "make_tweet_corpus"]

from repro.data import vocab


@dataclass(frozen=True)
class Tweet:
    """One labelled synthetic tweet."""

    uid: str
    text: str
    #: the "ideal" cleaned/summarized form the Map stage should produce.
    clean_text: str
    sentiment: str  # "positive" | "negative"
    school_related: bool
    difficulty: float  # in [0, 1]; scales simulated model error

    @property
    def is_negative(self) -> bool:
        """Convenience predicate used by filter stages."""
        return self.sentiment == "negative"


class TweetCorpus:
    """A list of tweets plus the lookup indexes the task engine needs."""

    def __init__(self, tweets: list[Tweet]) -> None:
        self.tweets = list(tweets)
        self.by_uid: dict[str, Tweet] = {tweet.uid: tweet for tweet in tweets}
        #: exact surface-text index — the simulated model "recognizes" a
        #: tweet embedded in a prompt by matching this index.
        self.by_text: dict[str, Tweet] = {tweet.text: tweet for tweet in tweets}
        self.by_clean_text: dict[str, Tweet] = {
            tweet.clean_text: tweet for tweet in tweets
        }

    def __len__(self) -> int:
        return len(self.tweets)

    def __iter__(self):
        return iter(self.tweets)

    def __getitem__(self, index: int) -> Tweet:
        return self.tweets[index]

    def find_in(self, text: str) -> Tweet | None:
        """Locate a corpus tweet whose surface or clean text occurs in ``text``.

        Used by the simulated model to ground a prompt against the corpus.
        Prompts place the item on its own line, so the fast path is an
        exact per-line dictionary lookup (surface text first, then clean
        text for pipeline-intermediate summaries); a linear substring scan
        is the fallback for free-form prompts.
        """
        lines = [line.strip() for line in text.splitlines()]
        for index in (self.by_text, self.by_clean_text):
            for line in lines:
                if line in index:
                    return index[line]
        for index in (self.by_text, self.by_clean_text):
            for candidate, tweet in index.items():
                if candidate and candidate in text:
                    return tweet
        return None

    # -- ground-truth helpers -------------------------------------------------

    def negatives(self) -> list[Tweet]:
        """All negative tweets."""
        return [tweet for tweet in self.tweets if tweet.is_negative]

    def school_negatives(self) -> list[Tweet]:
        """All negative, school-related tweets (Table 3's target set)."""
        return [
            tweet
            for tweet in self.tweets
            if tweet.is_negative and tweet.school_related
        ]

    def selectivity(self, predicate) -> float:
        """Fraction of tweets satisfying ``predicate``."""
        if not self.tweets:
            return 0.0
        return sum(1 for tweet in self.tweets if predicate(tweet)) / len(self.tweets)


def _noisify(rng: random.Random, sentence: str) -> str:
    """Add tweet-style noise: handles, hashtags, URLs, elongations, case."""
    parts = [sentence]
    if rng.random() < 0.5:
        parts.insert(0, rng.choice(vocab.NOISE_HANDLES))
    if rng.random() < 0.6:
        parts.append(rng.choice(vocab.NOISE_HASHTAGS))
    if rng.random() < 0.25:
        parts.append(f"http://t.co/{rng.randrange(16**6):06x}")
    text = " ".join(parts)
    if rng.random() < 0.3:
        text = text.replace("so ", "soooo ", 1)
    if rng.random() < 0.2:
        text = text.upper() if rng.random() < 0.3 else text
    return text


_WHEN_CLAUSES = (
    "this morning",
    "this afternoon",
    "tonight",
    "all week",
    "again today",
    "right now",
    "since yesterday",
    "lately",
)

_RANT_CLAUSES = ("done", "over it", "so tired", "beyond frustrated", "at my limit")


def _make_tweet(rng: random.Random, index: int, negative: bool, school: bool) -> Tweet:
    phrase = rng.choice(
        vocab.NEGATIVE_PHRASES if negative else vocab.POSITIVE_PHRASES
    )
    topic = rng.choice(vocab.SCHOOL_TOPICS if school else vocab.GENERAL_TOPICS)
    # The trailing clause keeps surface texts near-unique at corpus scale,
    # like real tweets (identical tweets would let the prefix cache serve
    # whole items, inflating hit rates).
    sentence = f"{phrase} {topic} {rng.choice(_WHEN_CLAUSES)}"
    if negative:
        # Negative tweets rant on — extra clause makes them longer, which
        # drives the mild selectivity-dependence of fused-call decode cost.
        sentence += f", honestly {rng.choice(_RANT_CLAUSES)}"
    clean = sentence[0].upper() + sentence[1:] + "."
    return Tweet(
        uid=f"t{index:05d}",
        text=_noisify(rng, sentence),
        clean_text=clean,
        sentiment="negative" if negative else "positive",
        school_related=school,
        difficulty=round(rng.random(), 4),
    )


def make_tweet_corpus(
    n: int = 1000,
    *,
    seed: int = 7,
    negative_fraction: float = 0.5,
    school_fraction: float = 0.5,
) -> TweetCorpus:
    """Generate a seeded corpus of ``n`` tweets.

    Args:
        n: corpus size (the paper uses 1000).
        seed: RNG seed; same seed → identical corpus.
        negative_fraction: fraction of tweets with negative sentiment —
            this is the Filter stage's selectivity in Table 4.
        school_fraction: fraction of tweets that are school-related,
            independently of sentiment.
    """
    if not 0.0 <= negative_fraction <= 1.0:
        raise ValueError(f"negative_fraction must be in [0, 1]: {negative_fraction}")
    if not 0.0 <= school_fraction <= 1.0:
        raise ValueError(f"school_fraction must be in [0, 1]: {school_fraction}")
    rng = random.Random(seed)
    n_negative = round(n * negative_fraction)
    n_school = round(n * school_fraction)
    flags = [
        (index < n_negative, index_school < n_school)
        for index, index_school in zip(range(n), _shuffled_range(rng, n))
    ]
    tweets = [
        _make_tweet(rng, index, negative, school)
        for index, (negative, school) in enumerate(flags)
    ]
    rng.shuffle(tweets)
    return TweetCorpus(tweets)


def _shuffled_range(rng: random.Random, n: int) -> list[int]:
    indexes = list(range(n))
    rng.shuffle(indexes)
    return indexes
