"""Evaluation metrics and report formatting."""

from repro.eval.metrics import PRF, accuracy_from_pairs, field_completeness, prf_from_sets
from repro.eval.tables import format_cell, format_table

__all__ = [
    "PRF",
    "accuracy_from_pairs",
    "field_completeness",
    "prf_from_sets",
    "format_cell",
    "format_table",
]
