"""Evaluation metrics: F1, precision/recall, accuracy, completeness.

Implemented from first principles (no sklearn dependency) over predicted
and ground-truth id sets — the natural shape for the paper's select-style
tasks (Table 3 selects school-related negative tweets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["PRF", "prf_from_sets", "accuracy_from_pairs", "field_completeness"]


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 with the underlying confusion counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 0.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 0.0
        return self.true_positives / denominator

    @property
    def f1(self) -> float:
        precision = self.precision
        recall = self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)


def prf_from_sets(predicted: Iterable[str], truth: Iterable[str]) -> PRF:
    """PRF over predicted vs ground-truth id sets."""
    predicted_set = set(predicted)
    truth_set = set(truth)
    return PRF(
        true_positives=len(predicted_set & truth_set),
        false_positives=len(predicted_set - truth_set),
        false_negatives=len(truth_set - predicted_set),
    )


def accuracy_from_pairs(pairs: Iterable[tuple[object, object]]) -> float:
    """Fraction of (predicted, truth) pairs that agree; 0.0 when empty."""
    total = 0
    correct = 0
    for predicted, truth in pairs:
        total += 1
        correct += int(predicted == truth)
    if total == 0:
        return 0.0
    return correct / total


def field_completeness(
    answers: Iterable[dict], required_fields: list[str]
) -> float:
    """Mean fraction of required fields present across QA answers.

    The §2 use case's quality axis: early prompts omit dosage/timing;
    refinement should drive completeness up.
    """
    answers = list(answers)
    if not answers or not required_fields:
        return 0.0
    total = 0.0
    for answer in answers:
        present = sum(1 for field_name in required_fields if field_name in answer)
        total += present / len(required_fields)
    return total / len(answers)
