"""Plain-text table formatting for experiment reports.

Every experiment module prints its results in the same row/column layout
as the paper's tables, via :func:`format_table`.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_cell"]


def format_cell(value: Any) -> str:
    """Render one cell: floats to sensible precision, everything else str."""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """A fixed-width text table with a header rule."""
    rendered_rows = [[format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[index]) for row in rendered_rows))
        if rendered_rows
        else len(str(header))
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
