"""SPEAR: Structured Prompt Execution and Adaptive Refinement.

A full reproduction of "Making Prompts First-Class Citizens for Adaptive
LLM Pipelines" (CIDR 2026): the prompt-as-data model, the (P, C, M)
algebra, structured prompt management (views, histories, meta prompts),
the optimizer (fusion, prefix caching, cost-based refinement planning),
the SPEAR-DL declarative language, and the §7 experiments — on a
deterministic simulated LLM serving substrate.

Quickstart::

    from repro import ExecutionState, GEN, SimulatedLLM

    llm = SimulatedLLM()
    state = ExecutionState(model=llm)
    state.prompts.create(
        "hello", "Summarize the tweet in at most 30 words.\nTweet:\ngreat day"
    )
    state = GEN("answer", prompt="hello").apply(state)
    print(state.C["answer"])
"""

from repro.core import (
    CHECK,
    DELEGATE,
    DIFF,
    EXPAND,
    GEN,
    MAP,
    MERGE,
    REF,
    RET,
    RETRY,
    SWITCH,
    VIEW,
    Condition,
    Context,
    ExecutionState,
    Metadata,
    Operator,
    Pipeline,
    PromptEntry,
    PromptStore,
    RefAction,
    RefinementMode,
    ViewRegistry,
    adaptive_hint,
    assisted_refinement,
    auto_refinement,
    manual_refinement,
    refine_on_low_confidence,
)
from repro.errors import SpearError
from repro.llm import (
    BlockPrefixCache,
    GenerationResult,
    ModelProfile,
    RadixPrefixCache,
    SimulatedLLM,
    StructuredPromptCache,
    Tokenizer,
    get_profile,
)
from repro.obs import (
    MetricsRegistry,
    ObsCollector,
    RunReport,
    build_run_report,
    to_prometheus,
)
from repro.resilience import (
    BreakerPolicy,
    FallbackChain,
    FaultPlan,
    FaultSpec,
    ResilienceRuntime,
    RetryPolicy,
)
from repro.runtime import (
    Executor,
    RunResult,
    RuntimeOptions,
    shadow_run,
    verify_replay,
)

__version__ = "0.1.0"

__all__ = [
    "CHECK",
    "DELEGATE",
    "DIFF",
    "EXPAND",
    "GEN",
    "MAP",
    "MERGE",
    "REF",
    "RET",
    "RETRY",
    "SWITCH",
    "VIEW",
    "Condition",
    "Context",
    "ExecutionState",
    "Metadata",
    "Operator",
    "Pipeline",
    "PromptEntry",
    "PromptStore",
    "RefAction",
    "RefinementMode",
    "ViewRegistry",
    "adaptive_hint",
    "assisted_refinement",
    "auto_refinement",
    "manual_refinement",
    "refine_on_low_confidence",
    "BlockPrefixCache",
    "RadixPrefixCache",
    "GenerationResult",
    "ModelProfile",
    "SimulatedLLM",
    "StructuredPromptCache",
    "Tokenizer",
    "get_profile",
    "SpearError",
    "BreakerPolicy",
    "FallbackChain",
    "FaultPlan",
    "FaultSpec",
    "ResilienceRuntime",
    "RetryPolicy",
    "Executor",
    "RunResult",
    "RuntimeOptions",
    "shadow_run",
    "verify_replay",
    "MetricsRegistry",
    "ObsCollector",
    "RunReport",
    "build_run_report",
    "to_prometheus",
    "__version__",
]
