"""Context packing: fit retrieved fragments into a token budget.

Adaptive pipelines retrieve aggressively (notes, orders, labs), and the
assembled prompt must still fit the model's context window.  The packer
selects fragments by priority under a token budget — greedy by priority,
then by rank for equal priorities — and can optionally truncate the final
fragment to use the remaining space.

This is the standard pragmatic policy of production RAG stacks; it keeps
GEN from ever hitting :class:`~repro.errors.TokenBudgetExceededError` for
pipelines that use it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.tokenizer import Tokenizer

__all__ = ["Fragment", "PackResult", "pack_fragments"]

_TOKENIZER = Tokenizer()


@dataclass(frozen=True)
class Fragment:
    """One candidate piece of context."""

    text: str
    #: higher priority packs first (e.g. orders > notes > labs).
    priority: int = 0
    #: stable identifier for reporting what was kept/dropped.
    name: str = ""


@dataclass(frozen=True)
class PackResult:
    """What the packer kept, dropped, and spent."""

    text: str
    kept: tuple[str, ...]
    dropped: tuple[str, ...]
    truncated: str | None
    tokens_used: int
    budget: int

    @property
    def utilization(self) -> float:
        """Fraction of the budget consumed."""
        if self.budget == 0:
            return 0.0
        return self.tokens_used / self.budget


def pack_fragments(
    fragments: list[Fragment],
    budget_tokens: int,
    *,
    tokenizer: Tokenizer | None = None,
    allow_truncation: bool = True,
    separator: str = "\n",
) -> PackResult:
    """Pack fragments into ``budget_tokens``.

    Fragments are considered in (priority desc, original order) and added
    whole while they fit.  If ``allow_truncation``, the first fragment
    that does not fit is cut to the remaining budget (token-aligned);
    everything after is dropped.
    """
    if budget_tokens < 0:
        raise ValueError(f"budget_tokens must be >= 0: {budget_tokens}")
    tokenizer = tokenizer if tokenizer is not None else _TOKENIZER
    separator_cost = tokenizer.count(separator) or 0

    ranked = sorted(
        enumerate(fragments), key=lambda pair: (-pair[1].priority, pair[0])
    )
    kept: list[tuple[int, str]] = []
    kept_names: list[str] = []
    dropped_names: list[str] = []
    truncated_name: str | None = None
    remaining = budget_tokens

    for rank, (original_index, fragment) in enumerate(ranked):
        cost = tokenizer.count(fragment.text)
        overhead = separator_cost if kept else 0
        if cost + overhead <= remaining:
            kept.append((original_index, fragment.text))
            kept_names.append(fragment.name or f"fragment_{original_index}")
            remaining -= cost + overhead
            continue
        if allow_truncation and truncated_name is None and remaining - overhead > 0:
            pieces = tokenizer.pieces(fragment.text)[: remaining - overhead]
            if pieces:
                kept.append((original_index, " ".join(pieces)))
                truncated_name = fragment.name or f"fragment_{original_index}"
                kept_names.append(truncated_name)
                remaining = 0
                continue
        dropped_names.append(fragment.name or f"fragment_{original_index}")

    # Emit in the fragments' original order so the prompt reads naturally.
    kept.sort(key=lambda pair: pair[0])
    text = separator.join(part for __, part in kept)
    return PackResult(
        text=text,
        kept=tuple(kept_names),
        dropped=tuple(dropped_names),
        truncated=truncated_name,
        tokens_used=tokenizer.count(text),
        budget=budget_tokens,
    )
