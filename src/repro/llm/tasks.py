"""Task behaviours of the simulated LLM.

A real instruction-tuned model infers the requested task from the prompt
and performs it.  The simulated backend does the same, deterministically:
:func:`route_task` classifies the prompt into one of the task kinds below,
and the matching handler produces output text, a confidence signal, and
structured extras.  Correctness is grounded against the bound corpora
(:class:`~repro.data.tweets.TweetCorpus`,
:class:`~repro.data.clinical.ClinicalCorpus`) and perturbed by the
feature-driven noise channel in :mod:`repro.llm.quality` — so better
prompts genuinely produce better outputs, which is the paper's premise.

Task kinds:

- ``summarize``   — clean up / summarize a tweet (the Map stage).
- ``classify``    — keep/drop decision against prompt criteria (Filter).
- ``fused``       — both stages in one prompt (operator fusion, §5/§7).
- ``qa``          — clinical QA over notes in the prompt (§2 use case).
- ``rewrite``     — rewrite/improve a prompt (assisted & agentic modes).
- ``freeform``    — fallback echo for unrecognized prompts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.data.clinical import ClinicalCorpus, Patient
from repro.data.tweets import Tweet, TweetCorpus
from repro.data import vocab
from repro.llm.features import PromptFeatures, extract_features
from repro.llm.profiles import ModelProfile
from repro.llm.quality import confidence_for, error_rate, item_rng, noisy_bool

__all__ = ["TaskOutput", "TaskEngine", "route_task"]

#: Delimiters used by rewrite meta-prompts to carry structured payloads.
PROMPT_BLOCK_START = "<<<PROMPT>>>"
PROMPT_BLOCK_END = "<<<END>>>"

#: Section marker used by fused multi-GEN prompts (paper §5: fusing
#: adjacent GENs that share context into one call).  The engine answers
#: each section independently and re-emits the markers, so the FusedGen
#: operator can split the combined output back into per-label results.
SECTION_MARKER = "### Section"

#: Instruction lines starting with this marker are rendered *after* the
#: item text by prompt composers.  Assisted rewrites emit one — trailing
#: reminders are a common LLM rewrite pattern, and tokens after per-item
#: content can never be served from the prefix cache (paper Table 3's
#: lower assisted hit rate).  The extreme form of the same mistake —
#: putting the varying item *before* the static instructions, which
#: makes the whole prompt uncacheable — is what ``spear check`` flags
#: statically as SPEAR146 (item-first-template).
POST_ITEM_MARKER = "Reminder after reading the tweet:"
_HINT_RE = re.compile(r"refinement hint:\s*(.+)", re.IGNORECASE)
_OBJECTIVE_RE = re.compile(r"objective:\s*(.+)", re.IGNORECASE)

_REWRITE_MARKERS = (
    "improve the prompt",
    "rewrite the prompt",
    "refine the prompt",
    "write a prompt",
    "refine the following prompt",
)


@dataclass(frozen=True)
class TaskOutput:
    """What one simulated generation produced."""

    task: str
    text: str
    confidence: float
    extras: dict[str, Any] = field(default_factory=dict)


def route_task(prompt: str, features: PromptFeatures) -> str:
    """Classify the prompt into a task kind (see module docstring)."""
    lowered = prompt.lower()
    if SECTION_MARKER.lower() in lowered:
        return "sections"
    if any(marker in lowered for marker in _REWRITE_MARKERS):
        return "rewrite"
    if "enoxaparin" in lowered or "medication history" in lowered:
        return "qa"
    wants_summary = any(
        verb in lowered for verb in ("summarize", "summarise", "clean up", "clean the")
    )
    wants_filter = (
        features.has_sentiment_terms
        or "filter" in lowered
        or "select" in lowered
        or "classify" in lowered
    )
    if wants_summary and wants_filter:
        return "fused"
    if wants_summary:
        return "summarize"
    if wants_filter:
        return "classify"
    return "freeform"


def _fused_order(prompt: str) -> str:
    """Infer fusion order from which stage the prompt describes first."""
    lowered = prompt.lower()
    summary_pos = min(
        (lowered.find(verb) for verb in ("summarize", "summarise", "clean") if verb in lowered),
        default=len(lowered),
    )
    filter_pos = min(
        (
            lowered.find(term)
            for term in ("filter", "select", "classify", "negative sentiment")
            if term in lowered
        ),
        default=len(lowered),
    )
    return "map_filter" if summary_pos <= filter_pos else "filter_map"


def _lexicon_sentiment(text: str) -> str:
    """Fallback sentiment from word lexicons (for unrecognized items)."""
    words = set(re.findall(r"[a-z']+", text.lower()))
    negative_hits = len(words & vocab.NEGATIVE_WORDS)
    positive_hits = len(words & vocab.POSITIVE_WORDS)
    return "negative" if negative_hits >= positive_hits else "positive"


def _lexicon_school(text: str) -> bool:
    lowered = text.lower()
    return any(
        term in lowered
        for term in ("school", "exam", "homework", "class", "teacher", "midterm", "studying")
    )


class TaskEngine:
    """Executes routed tasks against bound corpora under a model profile."""

    def __init__(self, profile: ModelProfile) -> None:
        self.profile = profile
        self._tweets: TweetCorpus | None = None
        self._clinical: ClinicalCorpus | None = None

    # -- corpus binding ------------------------------------------------------

    def bind_tweets(self, corpus: TweetCorpus) -> None:
        """Ground tweet tasks against ``corpus``."""
        self._tweets = corpus

    def bind_clinical(self, corpus: ClinicalCorpus) -> None:
        """Ground clinical QA against ``corpus``."""
        self._clinical = corpus

    # -- entry point ------------------------------------------------------------

    def run(self, prompt: str, features: PromptFeatures | None = None) -> TaskOutput:
        """Execute the task requested by ``prompt``."""
        if features is None:
            features = extract_features(prompt)
        task = route_task(prompt, features)
        handler = {
            "sections": self._run_sections,
            "summarize": self._run_summarize,
            "classify": self._run_classify,
            "fused": self._run_fused,
            "qa": self._run_qa,
            "rewrite": self._run_rewrite,
            "freeform": self._run_freeform,
        }[task]
        return handler(prompt, features)

    # -- helpers -----------------------------------------------------------------

    def _locate_tweet(self, prompt: str) -> Tweet | None:
        if self._tweets is None:
            return None
        return self._tweets.find_in(prompt)

    def _strip_item(self, prompt: str, tweet: Tweet | None) -> str:
        """The prompt's instruction portion, with the item text removed.

        Criteria and quality features must come from what the prompt *asks*,
        not from words that happen to appear in the item itself (a tweet
        about school must not flip the prompt into a school filter).
        """
        if tweet is None:
            return prompt
        stripped = prompt.replace(tweet.text, "").replace(tweet.clean_text, "")
        return stripped

    def _locate_patient(self, prompt: str) -> Patient | None:
        if self._clinical is None:
            return None
        return self._clinical.find_patient_in(prompt)

    def _apply_word_limit(self, text: str, features: PromptFeatures) -> str:
        if not features.has_word_limit:
            return text
        words = text.split()
        if len(words) <= 30:
            return text
        return " ".join(words[:30])

    # -- summarize (Map) -----------------------------------------------------------

    def _summary_for(
        self, prompt: str, features: PromptFeatures, tweet: Tweet | None
    ) -> tuple[str, float, bool]:
        """Produce a summary; returns (text, p_error, degraded)."""
        if tweet is None:
            # Rule-based cleanup of whatever text followed the instruction.
            payload = prompt.splitlines()[-1] if prompt.splitlines() else prompt
            cleaned = re.sub(r"https?://\S+|[@#]\w+", "", payload).strip()
            return cleaned or "(empty)", self.profile.base_error, False
        p_error = error_rate(features, self.profile, difficulty=tweet.difficulty)
        degraded = noisy_bool(
            True, p_error, tweet.uid + "#sum", features.fingerprint(), self.profile.name
        ) is False
        summary = tweet.clean_text
        if degraded:
            # A weak summary stays on-topic but hedges; downstream stages
            # can still ground it (the clean text survives as a substring).
            summary = summary + " (unclear)"
        return self._apply_word_limit(summary, features), p_error, degraded

    def _run_summarize(self, prompt: str, features: PromptFeatures) -> TaskOutput:
        tweet = self._locate_tweet(prompt)
        features = extract_features(self._strip_item(prompt, tweet))
        summary, p_error, degraded = self._summary_for(prompt, features, tweet)
        uid = tweet.uid if tweet is not None else "unknown"
        return TaskOutput(
            task="summarize",
            text=summary,
            confidence=confidence_for(
                p_error, uid, features.fingerprint(), self.profile.name
            ),
            extras={"degraded": degraded, "item_uid": uid},
        )

    # -- classify / filter ------------------------------------------------------------

    def _predicate_terms(self, prompt: str, features: PromptFeatures) -> dict[str, bool]:
        """Which criteria the prompt asks the filter to apply."""
        lowered = prompt.lower()
        return {
            "negative": "negative" in lowered,
            "school": any(
                term in features.hint_terms
                for term in ("school", "class", "exam", "homework", "teacher")
            ),
        }

    def _true_decision(self, tweet: Tweet | None, prompt: str, terms: dict[str, bool]) -> bool:
        if tweet is not None:
            decision = True
            if terms["negative"]:
                decision = decision and tweet.is_negative
            if terms["school"]:
                decision = decision and tweet.school_related
            return decision
        # Ungrounded input: fall back to lexicons over the prompt payload.
        decision = True
        if terms["negative"]:
            decision = decision and _lexicon_sentiment(prompt) == "negative"
        if terms["school"]:
            decision = decision and _lexicon_school(prompt)
        return decision

    def _run_classify(self, prompt: str, features: PromptFeatures) -> TaskOutput:
        tweet = self._locate_tweet(prompt)
        instructions = self._strip_item(prompt, tweet)
        features = extract_features(instructions)
        terms = self._predicate_terms(instructions, features)
        correct = self._true_decision(tweet, prompt, terms)
        difficulty = tweet.difficulty if tweet is not None else 0.5
        uid = tweet.uid if tweet is not None else "unknown"
        p_error = error_rate(features, self.profile, difficulty=difficulty)
        decision = noisy_bool(
            correct, p_error, uid + "#cls", features.fingerprint(), self.profile.name
        )
        label = "yes" if decision else "no"
        return TaskOutput(
            task="classify",
            text=f"Label: {label}",
            confidence=confidence_for(
                p_error, uid + "#cls", features.fingerprint(), self.profile.name
            ),
            extras={"decision": decision, "item_uid": uid, "criteria": terms},
        )

    # -- fused map+filter -------------------------------------------------------------

    def _run_fused(self, prompt: str, features: PromptFeatures) -> TaskOutput:
        tweet = self._locate_tweet(prompt)
        instructions = self._strip_item(prompt, tweet)
        order = _fused_order(instructions)
        features = extract_features(instructions)
        terms = self._predicate_terms(instructions, features)
        correct = self._true_decision(tweet, prompt, terms)
        difficulty = tweet.difficulty if tweet is not None else 0.5
        uid = tweet.uid if tweet is not None else "unknown"
        p_error = error_rate(
            features, self.profile, fused_order=order, difficulty=difficulty
        )
        decision = noisy_bool(
            correct, p_error, uid + "#fused", features.fingerprint(), self.profile.name
        )
        label = "yes" if decision else "no"
        if order == "filter_map" and not decision:
            # Filter-first fused prompts skip the summary for dropped items,
            # but still emit the structured scaffold.
            text = f"Label: {label}\nSummary: N/A"
            summary = None
        else:
            summary, __, __ = self._summary_for(prompt, features, tweet)
            text = f"Label: {label}\nSummary: {summary}"
        return TaskOutput(
            task="fused",
            text=text,
            confidence=confidence_for(
                p_error, uid + "#fused", features.fingerprint(), self.profile.name
            ),
            extras={
                "decision": decision,
                "summary": summary,
                "order": order,
                "item_uid": uid,
            },
        )

    # -- clinical QA --------------------------------------------------------------------

    def _run_qa(self, prompt: str, features: PromptFeatures) -> TaskOutput:
        patient = self._locate_patient(prompt)
        if patient is None:
            return TaskOutput(
                task="qa",
                text="No patient chart found in the provided context.",
                confidence=0.2,
                extras={"fields": {}},
            )
        lowered = prompt.lower()
        p_error = error_rate(features, self.profile, difficulty=patient.difficulty)
        fingerprint = features.fingerprint()
        rng = item_rng(patient.patient_id + "#qa", fingerprint, self.profile.name)

        if not patient.on_enoxaparin:
            return TaskOutput(
                task="qa",
                text=(
                    f"Patient {patient.patient_id}: no Enoxaparin use is "
                    "documented in the chart."
                ),
                confidence=confidence_for(
                    p_error, patient.patient_id, fingerprint, self.profile.name
                ),
                extras={"fields": {"administered": False}},
            )

        # A field is reported when the prompt asks for it explicitly;
        # otherwise the model includes it only sometimes — the §2
        # "inconsistent outputs" behaviour that motivates refinement.
        # Crucially, a value is only extractable when its evidence is
        # actually present in the supplied context: a model cannot read
        # what retrieval (or context truncation) dropped.
        fields: dict[str, Any] = {"administered": True}
        parts = [f"Patient {patient.patient_id} received Enoxaparin"]
        for field_name, value, terms in (
            ("dosage", patient.dosage, ("dosage", "dose", "mg")),
            ("timing", patient.timing, ("timing", "48 hours", "last administered", "when")),
            ("indication", patient.indication, ("indication", "why", "reason", "justification")),
        ):
            asked = any(term in lowered for term in terms)
            included = asked or rng.random() < 0.45
            if not included:
                continue
            if value is not None and value.lower() not in lowered:
                fields[field_name] = None
                parts.append(f"{field_name}: (not found in the provided notes)")
                continue
            reported = value
            if noisy_bool(
                True,
                p_error,
                f"{patient.patient_id}#{field_name}",
                fingerprint,
                self.profile.name,
            ) is False:
                reported = "(uncertain)"
            fields[field_name] = reported
            parts.append(f"{field_name}: {reported}")

        confidence = confidence_for(
            p_error, patient.patient_id, fingerprint, self.profile.name
        )
        # Missing structured orders in the supplied context lowers
        # confidence — the trigger for the Missing Order Retrieval pattern.
        if "ORDER:" not in prompt:
            confidence = max(confidence - 0.25, 0.05)
        if features.has_reasoning and "indication" in fields:
            parts.append(
                f"rationale: the indication ({fields['indication']}) supports "
                "anticoagulation per chart review"
            )
        return TaskOutput(
            task="qa",
            text="; ".join(parts) + ".",
            confidence=confidence,
            extras={"fields": fields, "item_uid": patient.patient_id},
        )

    # -- prompt rewriting (assisted / agentic refinement) ----------------------------------

    def _run_rewrite(self, prompt: str, features: PromptFeatures) -> TaskOutput:
        original: str | None = None
        if PROMPT_BLOCK_START in prompt and PROMPT_BLOCK_END in prompt:
            start = prompt.index(PROMPT_BLOCK_START) + len(PROMPT_BLOCK_START)
            end = prompt.index(PROMPT_BLOCK_END)
            original = prompt[start:end].strip()
        hint_match = _HINT_RE.search(prompt)
        objective_match = _OBJECTIVE_RE.search(prompt)
        hint = hint_match.group(1).strip() if hint_match else None
        objective = objective_match.group(1).strip() if objective_match else None

        if original is None:
            rewritten = self._agentic_prompt(objective or prompt)
            mode = "agentic"
        elif hint is not None:
            rewritten = self._assisted_rewrite(original, hint)
            mode = "assisted"
        else:
            rewritten = self._auto_rewrite(original, objective)
            mode = "auto"
        return TaskOutput(
            task="rewrite",
            text=rewritten,
            confidence=0.9,
            extras={"mode": mode, "original": original},
        )

    @staticmethod
    def _agentic_prompt(objective: str) -> str:
        """A from-scratch prompt written for the stated objective.

        Mimics a capable model: elaborated criteria, an example, and an
        output-format clause.  The generated prompt leads with the item
        (``{tweet}`` placeholder first) — it shares no prefix with any
        stored view and, item-first, cannot benefit from prefix caching
        across items either (paper Table 3: 0% hits).
        """
        return (
            "Consider this tweet:\n"
            "{tweet}\n"
            f"Task objective: {objective}\n"
            "Decide whether the tweet satisfies the objective using these criteria:\n"
            "- the expressed sentiment is negative\n"
            "- the topic concerns school, classes, exams, teachers, or homework\n"
            "- ignore sarcasm-free positive mentions\n"
            "Example: 'so stressed about the math exam' -> yes\n"
            "Respond with yes or no only, using at most 5 words.\n"
        )

    @staticmethod
    def _assisted_rewrite(original: str, hint: str) -> str:
        """Rewrite of a stored view given a refinement hint.

        A real model restates part of the scaffold, so the rewrite keeps
        the original text but inserts a restated-objective clause before
        the final section — preserving most (not all) of the cacheable
        prefix, which yields the intermediate cache-hit rate of Table 3.
        """
        lines = original.splitlines()
        cut = max(len(lines) - 2, 0)
        inserted = (
            f"Restated objective: {hint}. Apply the above instructions with "
            "particular attention to this refinement."
        )
        rewritten_lines = lines[:cut] + [inserted] + lines[cut:]
        rewritten_lines.append(f"Additionally, focus on {hint}.")
        rewritten_lines.append(f"{POST_ITEM_MARKER} keep the stated focus in mind.")
        return "\n".join(rewritten_lines)

    @staticmethod
    def _auto_rewrite(original: str, objective: str | None) -> str:
        """Automatic refinement: append objective-derived criteria.

        Pure append keeps the entire original as a cacheable prefix; the
        derived criteria lift accuracy — together this is why Auto wins
        both speed and F1 in Table 3.
        """
        goal = objective or "the stated task"
        return (
            f"{original}\n"
            f"High-level objective: {goal}.\n"
            "Derived criteria:\n"
            "- keep items whose sentiment is clearly negative\n"
            "- keep only items about school, exams, classes, or homework\n"
            "Respond with yes or no only."
        )

    # -- fused multi-GEN sections (paper §5, GEN fusion) --------------------------------------

    def _run_sections(self, prompt: str, features: PromptFeatures) -> TaskOutput:
        """Answer each "### Section k" block independently, in one call.

        This is the behaviour GEN fusion relies on: semantically coupled
        generations (sections over the same context) share one invocation;
        the combined output re-emits the section markers for splitting.
        """
        header, *blocks = prompt.split(SECTION_MARKER)
        outputs: list[TaskOutput] = []
        for block in blocks:
            # Drop the "k:" tag on the marker line; keep the body.
            first_line, __, body = block.partition("\n")
            section_prompt = f"{header}\n{body}".strip()
            outputs.append(self.run(section_prompt))
        combined = "\n".join(
            f"{SECTION_MARKER} {index + 1}\n{output.text}"
            for index, output in enumerate(outputs)
        )
        confidence = min(
            (output.confidence for output in outputs), default=0.5
        )
        return TaskOutput(
            task="sections",
            text=combined,
            confidence=confidence,
            extras={
                "sections": [output.text for output in outputs],
                "section_tasks": [output.task for output in outputs],
                "section_confidences": [output.confidence for output in outputs],
            },
        )

    # -- fallback ---------------------------------------------------------------------------

    def _run_freeform(self, prompt: str, features: PromptFeatures) -> TaskOutput:
        payload = prompt.strip().splitlines()
        tail = payload[-1] if payload else ""
        return TaskOutput(
            task="freeform",
            text=f"Acknowledged: {tail[:80]}",
            confidence=0.5,
            extras={},
        )
