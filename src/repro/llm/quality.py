"""Quality model: prompt features + model profile → error probability.

This module is the calibrated heart of the simulation.  Each structural
prompt feature multiplies the profile's base error rate by a factor < 1
(better prompts → fewer mistakes), fused multi-task prompts multiply it by
the profile's interference penalty (> 1), and the result is floored at the
profile's ``min_error``.  A per-item, per-prompt-fingerprint seeded RNG
turns the probability into deterministic decisions, so two runs of an
experiment — or two strategies sharing a prompt — agree exactly.

The multipliers were calibrated once so the Table 3 / Table 4 / Figure 1
shapes match the paper (see EXPERIMENTS.md); they are plain data and can
be overridden per profile via ``ModelProfile.feature_overrides``.
"""

from __future__ import annotations

import random
import zlib

from repro.llm.features import PromptFeatures
from repro.llm.profiles import ModelProfile

__all__ = [
    "FEATURE_MULTIPLIERS",
    "error_rate",
    "noisy_bool",
    "confidence_for",
    "item_rng",
]

#: Multiplicative effect of each prompt feature on the error rate.
FEATURE_MULTIPLIERS: dict[str, float] = {
    "has_instruction": 0.75,
    "has_view_structure": 0.90,
    "has_focus_hint": 0.95,
    "has_adaptive_hint": 0.92,
    "has_examples": 0.90,
    "has_output_format": 0.95,
    "has_reasoning": 0.92,
    "has_guidance": 0.80,
    "per_criterion": 0.90,  # applied criteria_count times
    "per_hint_term": 0.98,  # applied per matched topical term
}

_MAX_ERROR = 0.49


def error_rate(
    features: PromptFeatures,
    profile: ModelProfile,
    *,
    fused_order: str | None = None,
    difficulty: float = 0.5,
) -> float:
    """Per-item error probability for a prompt with ``features``.

    Args:
        features: extracted structural features of the prompt.
        profile: the simulated backend.
        fused_order: ``"map_filter"`` or ``"filter_map"`` when the prompt
            fuses two pipeline stages (applies the profile's interference
            penalty); None for single-stage prompts.
        difficulty: item difficulty in [0, 1]; 0.5 is neutral.
    """
    multipliers = dict(FEATURE_MULTIPLIERS)
    multipliers.update(profile.feature_overrides)

    rate = profile.base_error
    for flag in (
        "has_instruction",
        "has_view_structure",
        "has_focus_hint",
        "has_adaptive_hint",
        "has_examples",
        "has_output_format",
        "has_reasoning",
        "has_guidance",
    ):
        if getattr(features, flag):
            rate *= multipliers[flag]
    rate *= multipliers["per_criterion"] ** features.criteria_count
    rate *= multipliers["per_hint_term"] ** len(features.hint_terms)

    if fused_order == "map_filter":
        rate *= profile.fusion_penalty_map_filter
    elif fused_order == "filter_map":
        rate *= profile.fusion_penalty_filter_map
    elif fused_order is not None:
        raise ValueError(f"unknown fused_order: {fused_order!r}")

    # Difficulty scales the rate: an easy item (0.0) roughly halves it, a
    # hard item (1.0) roughly doubles it relative to neutral difficulty.
    rate *= 0.5 + difficulty

    return min(max(rate, profile.min_error), _MAX_ERROR)


def item_rng(item_uid: str, fingerprint: int, model_name: str) -> random.Random:
    """Deterministic RNG for one (item, prompt-features, model) triple."""
    seed = zlib.crc32(f"{item_uid}|{fingerprint}|{model_name}".encode("utf-8"))
    return random.Random(seed)


def noisy_bool(
    correct: bool,
    p_error: float,
    item_uid: str,
    fingerprint: int,
    model_name: str,
) -> bool:
    """Return ``correct``, flipped with probability ``p_error``.

    The flip decision is a pure function of (item, prompt features, model),
    so identical prompts always make identical mistakes — the property that
    makes strategy comparisons in the experiments meaningful.
    """
    rng = item_rng(item_uid, fingerprint, model_name)
    if rng.random() < p_error:
        return not correct
    return correct


def confidence_for(
    p_error: float,
    item_uid: str,
    fingerprint: int,
    model_name: str,
) -> float:
    """A calibrated-ish confidence signal in [0.05, 0.99].

    Centered on ``1 - p_error`` with small deterministic jitter, so CHECK
    conditions like ``M["confidence"] < 0.7`` fire more often exactly when
    the prompt is weaker — mirroring how verbalized confidence correlates
    with quality in real systems.
    """
    rng = item_rng(item_uid + "#conf", fingerprint, model_name)
    jitter = rng.uniform(-0.08, 0.08)
    return min(max(1.0 - p_error + jitter, 0.05), 0.99)
