"""Deterministic tokenizer for the simulated LLM backend.

A real reproduction of the paper's latency and cache behaviour needs
token-level accounting: prefix caches operate on token blocks, and the
latency model charges per prefill/decode token.  We implement a simple,
fully deterministic word-piece-ish tokenizer: text is split into word and
punctuation pieces, long words are broken into 4-character chunks (roughly
matching the ~1.3 tokens/word ratio of BPE vocabularies), and each piece
maps to a stable 32-bit id via CRC32 (never Python's randomized ``hash``).
"""

from __future__ import annotations

import re
import zlib

__all__ = ["Tokenizer"]

_PIECE_RE = re.compile(r"[A-Za-z0-9_']+|[^A-Za-z0-9_'\s]")
_CHUNK = 4
_MAX_WORD = 8


class Tokenizer:
    """Deterministic text → token-id encoder with decode support for tests."""

    def __init__(self) -> None:
        self._id_to_piece: dict[int, str] = {}

    @staticmethod
    def pieces(text: str) -> list[str]:
        """Split ``text`` into token pieces (words, word chunks, punctuation)."""
        out: list[str] = []
        for piece in _PIECE_RE.findall(text):
            if len(piece) <= _MAX_WORD:
                out.append(piece)
                continue
            for start in range(0, len(piece), _CHUNK):
                out.append(piece[start : start + _CHUNK])
        return out

    def encode(self, text: str) -> list[int]:
        """Encode ``text`` to a list of stable token ids."""
        ids: list[int] = []
        for piece in self.pieces(text):
            token_id = zlib.crc32(piece.encode("utf-8"))
            self._id_to_piece.setdefault(token_id, piece)
            ids.append(token_id)
        return ids

    def decode(self, ids: list[int]) -> str:
        """Best-effort inverse of :meth:`encode` (pieces joined by spaces).

        Only pieces seen by this tokenizer instance can be decoded; unknown
        ids render as ``<unk>``.  Decoding exists for tests and debugging —
        the runtime never needs it.
        """
        return " ".join(self._id_to_piece.get(token_id, "<unk>") for token_id in ids)

    def count(self, text: str) -> int:
        """Number of tokens in ``text`` (no id materialization)."""
        return len(self.pieces(text))
