"""Radix-tree prefix cache, modelled on SGLang RadixAttention.

:class:`~repro.llm.kv_cache.BlockPrefixCache` reproduces vLLM's
hash-chained scheme: a flat LRU set of chain hashes, one per block, where
a block is reusable only when its entire prefix matched.  That flat view
has a structural flaw under eviction pressure — **orphaned descendants**.
LRU evicts the globally coldest *hash*, which may be a mid-chain parent;
every deeper block of that chain stays resident (it has its own hash
entry) but can never be matched again, because a prefix walk stops at the
first missing block.  The stranded blocks occupy capacity until they age
out on their own, evicting useful entries in the meantime.

:class:`RadixPrefixCache` stores the same block-aligned prefixes as a
radix tree over token blocks instead:

- **token-block nodes** — each node is one ``block_size``-token block;
  a root-to-node path is a cached prefix, and divergent suffixes share
  the common trunk up to their branch point (SGLang's RadixAttention
  structure, with the tree edges labelled by whole blocks);
- **leaf-first LRU eviction** — only childless, unpinned nodes are
  eviction candidates (coldest first, by a deterministic use stamp), so
  subtrees are reclaimed bottom-up and every resident block remains
  reachable from the root at all times: orphaned descendants cannot
  exist by construction;
- **reference-counted pinning** — :meth:`pin` takes the resident trunk
  of a token sequence out of the eviction candidate set until the
  matching :meth:`unpin`; the continuous scheduler pins the trunks of
  admitted-but-unexecuted requests so an earlier step member's insert
  cannot evict a later member's matched prefix mid-step.

The accounting contract (:class:`~repro.llm.kv_cache.CacheStats`, the
``snapshot()`` keys, and the hit/miss-per-walk semantics) is a strict
superset of ``BlockPrefixCache``'s, so the model, the obs gauges, and
Table 3's "Cache Hit (%)" column read identically over either tier.
Given the same insert history and no eviction pressure the two caches
match byte-for-byte call-for-call — the radix tree only pulls ahead when
capacity forces eviction decisions.
"""

from __future__ import annotations

import threading
from typing import Iterator, Sequence

from repro.llm.kv_cache import _DEFAULT_BLOCK, _DEFAULT_CAPACITY, CacheStats

__all__ = ["RadixPrefixCache", "shared_prefix_tokens"]


def shared_prefix_tokens(
    a: Sequence[int], b: Sequence[int], block_size: int
) -> int:
    """Block-aligned shared-prefix length of two token sequences, in tokens.

    This is the scheduler's trunk-overlap measure: the number of leading
    tokens the two sequences share, rounded down to whole cache blocks
    (only complete blocks are ever cached, so only complete blocks can
    be deduplicated).  Pure and deterministic — admission decisions built
    on it depend on tokenized prompts alone.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    limit = min(len(a), len(b))
    blocks = 0
    for start in range(0, limit - block_size + 1, block_size):
        end = start + block_size
        if tuple(a[start:end]) != tuple(b[start:end]):
            break
        blocks += 1
    return blocks * block_size


class _RadixNode:
    """One cached token block; a root-to-node path is a cached prefix."""

    __slots__ = ("block", "parent", "children", "pins", "stamp")

    def __init__(
        self, block: tuple[int, ...] | None, parent: "_RadixNode | None"
    ) -> None:
        self.block = block
        self.parent = parent
        self.children: dict[tuple[int, ...], _RadixNode] = {}
        #: reference count of active pins; > 0 exempts from eviction.
        self.pins = 0
        #: deterministic LRU stamp (monotonic use counter, not wall time).
        self.stamp = 0


class RadixPrefixCache:
    """Radix-tree prefix cache with pinning and leaf-first LRU eviction.

    Drop-in for :class:`~repro.llm.kv_cache.BlockPrefixCache`: same
    constructor signature, same ``match_prefix`` / ``insert`` /
    ``lookup_and_insert`` / ``snapshot`` / ``clear`` contract and stats
    semantics, plus :meth:`pin` / :meth:`unpin` for scheduler trunk
    protection.  Thread-safe under one reentrant lock, like the chain
    cache: lookups, inserts, pins, and snapshots from parallel worker
    lanes are atomic.
    """

    def __init__(
        self,
        block_size: int = _DEFAULT_BLOCK,
        capacity_blocks: int = _DEFAULT_CAPACITY,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if capacity_blocks < 1:
            raise ValueError(
                f"capacity_blocks must be >= 1, got {capacity_blocks}"
            )
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self._root = _RadixNode(None, None)
        self._size = 0
        self._leaves: set[_RadixNode] = set()
        self._pinned_nodes = 0
        self._tick = 0
        self.stats = CacheStats()
        self._lock = threading.RLock()

    # -- internals -----------------------------------------------------------

    def _blocks(self, tokens: Sequence[int]) -> Iterator[tuple[int, ...]]:
        """Every *complete* block of ``tokens``, in order."""
        size = self.block_size
        for start in range(0, len(tokens) - size + 1, size):
            yield tuple(tokens[start : start + size])

    def _touch(self, node: _RadixNode) -> None:
        self._tick += 1
        node.stamp = self._tick

    def _walk(self, tokens: Sequence[int]) -> list[_RadixNode]:
        """The resident prefix path of ``tokens`` (longest cached trunk)."""
        path: list[_RadixNode] = []
        node = self._root
        for block in self._blocks(tokens):
            child = node.children.get(block)
            if child is None:
                break
            path.append(child)
            node = child
        return path

    def _evict_locked(self) -> None:
        """Reclaim coldest unpinned leaves until within capacity.

        Bottom-up by construction: a node is only a candidate once all
        of its descendants are gone, so the resident set is always a
        rooted subtree — no block is ever stranded unreachable.  When
        every leaf is pinned the cache temporarily overflows rather than
        break a pin.
        """
        while self._size > self.capacity_blocks:
            victim: _RadixNode | None = None
            for leaf in self._leaves:
                if leaf.pins:
                    continue
                if victim is None or leaf.stamp < victim.stamp:
                    victim = leaf
            if victim is None:
                break
            parent = victim.parent
            assert parent is not None and victim.block is not None
            del parent.children[victim.block]
            self._leaves.discard(victim)
            if parent is not self._root and not parent.children:
                self._leaves.add(parent)
            self._size -= 1
            self.stats.evictions += 1

    # -- the BlockPrefixCache contract ---------------------------------------

    def match_prefix(self, tokens: Sequence[int]) -> int:
        """Number of leading tokens of ``tokens`` served from cache.

        Walks the tree from the root; stops at the first block with no
        resident node (identical semantics to the chain walk: a block is
        reusable only when its whole prefix matched).  Updates stats and
        LRU recency on the matched path.
        """
        with self._lock:
            matched = 0
            complete = (len(tokens) // self.block_size) if tokens else 0
            path = self._walk(tokens)
            for node in path:
                self._touch(node)
                matched += 1
                self.stats.block_hits += 1
            if matched < complete:
                self.stats.block_misses += 1
            cached = matched * self.block_size
            self.stats.lookups += 1
            self.stats.prompt_tokens += len(tokens)
            self.stats.cached_tokens += cached
            return cached

    def insert(self, tokens: Sequence[int]) -> int:
        """Cache every complete block of ``tokens``; returns blocks added."""
        with self._lock:
            added = 0
            node = self._root
            for block in self._blocks(tokens):
                child = node.children.get(block)
                if child is None:
                    child = _RadixNode(block, node)
                    node.children[block] = child
                    if node is not self._root:
                        self._leaves.discard(node)
                    self._leaves.add(child)
                    self._size += 1
                    added += 1
                self._touch(child)
                node = child
            self._evict_locked()
            return added

    def lookup_and_insert(self, tokens: Sequence[int]) -> int:
        """The per-request path: match the prefix, then cache the prompt."""
        with self._lock:
            cached = self.match_prefix(tokens)
            self.insert(tokens)
            return cached

    # -- pinning -------------------------------------------------------------

    def pin(self, tokens: Sequence[int]) -> tuple[_RadixNode, ...]:
        """Pin the resident trunk of ``tokens`` against eviction.

        Walks the currently cached prefix path and takes a reference on
        every node along it; returns an opaque handle for :meth:`unpin`.
        Pinned nodes (and, transitively, their ancestors — which cannot
        become leaves while a pinned descendant exists) stay resident no
        matter how cold they go.  Pinning a sequence with no resident
        prefix returns an empty handle; unpinning it is a no-op.
        """
        with self._lock:
            path = self._walk(tokens)
            for node in path:
                if node.pins == 0:
                    self._pinned_nodes += 1
                node.pins += 1
            return tuple(path)

    def unpin(self, handle: tuple[_RadixNode, ...]) -> None:
        """Release a :meth:`pin` reference; over-release raises."""
        with self._lock:
            for node in handle:
                if node.pins <= 0:
                    raise ValueError("unpin without a matching pin")
                node.pins -= 1
                if node.pins == 0:
                    self._pinned_nodes -= 1
            self._evict_locked()

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Point-in-time statistics (superset of the chain cache's keys)."""
        with self._lock:
            return {
                "blocks": self._size,
                "capacity_blocks": self.capacity_blocks,
                "block_size": self.block_size,
                "lookups": self.stats.lookups,
                "prompt_tokens": self.stats.prompt_tokens,
                "cached_tokens": self.stats.cached_tokens,
                "block_hits": self.stats.block_hits,
                "block_misses": self.stats.block_misses,
                "evictions": self.stats.evictions,
                "hit_rate": self.stats.hit_rate,
                # radix-only extras
                "nodes": self._size,
                "leaves": len(self._leaves),
                "pinned_blocks": self._pinned_nodes,
            }

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def clear(self) -> None:
        """Drop all cached blocks (pins included) and reset statistics."""
        with self._lock:
            self._root = _RadixNode(None, None)
            self._size = 0
            self._leaves = set()
            self._pinned_nodes = 0
            self._tick = 0
            self.stats = CacheStats()
