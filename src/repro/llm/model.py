"""The simulated LLM backend: the paper's vLLM + model stand-in.

:class:`SimulatedLLM` composes the pieces of this subpackage into the
interface the SPEAR runtime consumes:

- tokenizes the prompt and consults the radix prefix cache (SGLang
  RadixAttention-style; the legacy vLLM hash-chain tier is pluggable);
- routes and executes the task via :class:`~repro.llm.tasks.TaskEngine`;
- charges modelled latency to a virtual clock;
- returns a :class:`GenerationResult` carrying text, token accounting,
  the latency breakdown, and a confidence signal for metadata M.

Everything is deterministic given (profile, bound corpora, prompt).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ModelError, TokenBudgetExceededError
from repro.llm.features import PromptFeatures, extract_features
from repro.llm.kv_cache import BlockPrefixCache
from repro.llm.latency import LatencyBreakdown, estimate_latency
from repro.llm.radix_cache import RadixPrefixCache
from repro.llm.profiles import DEFAULT_PROFILE, ModelProfile, get_profile
from repro.llm.prompt_cache import StructuredPromptCache
from repro.llm.tasks import TaskEngine, TaskOutput
from repro.llm.tokenizer import Tokenizer
from repro.runtime.clock import VirtualClock

__all__ = ["GenerationResult", "SimulatedLLM"]


@dataclass(frozen=True)
class GenerationResult:
    """Everything one generation call produced."""

    text: str
    task: str
    prompt_tokens: int
    cached_tokens: int
    output_tokens: int
    latency: LatencyBreakdown
    confidence: float
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of prompt tokens served from the prefix cache."""
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens


class SimulatedLLM:
    """Deterministic, prompt-sensitive LLM with a vLLM-style prefix cache."""

    def __init__(
        self,
        profile: str | ModelProfile = DEFAULT_PROFILE,
        *,
        clock: VirtualClock | None = None,
        kv_cache: "RadixPrefixCache | BlockPrefixCache | None" = None,
        prompt_cache: StructuredPromptCache | None = None,
        enable_prefix_cache: bool = True,
        fault_plan: Any = None,
    ) -> None:
        self.profile = (
            profile if isinstance(profile, ModelProfile) else get_profile(profile)
        )
        self.clock = clock if clock is not None else VirtualClock()
        #: optional :class:`repro.resilience.FaultPlan` (duck-typed: any
        #: object with ``decide(model, prompt) -> FaultDecision``); None
        #: means every call succeeds, exactly as before.
        self.fault_plan = fault_plan
        self.tokenizer = Tokenizer()
        # Radix-tree prefix index by default (SGLang RadixAttention
        # structure); pass a BlockPrefixCache explicitly for the legacy
        # vLLM hash-chain behaviour (the two are accounting-compatible).
        self.kv_cache = kv_cache if kv_cache is not None else RadixPrefixCache()
        self.prompt_cache = (
            prompt_cache if prompt_cache is not None else StructuredPromptCache()
        )
        self.enable_prefix_cache = enable_prefix_cache
        self.engine = TaskEngine(self.profile)
        # aggregate accounting across all calls; guarded by ``_lock`` so
        # concurrent lanes (parallel batch runner / micro-batcher) never
        # lose an increment or drop a listener notification.
        self._lock = threading.RLock()
        self.calls = 0
        self.total_latency = 0.0
        self.total_prompt_tokens = 0
        self.total_cached_tokens = 0
        self.total_output_tokens = 0
        #: observability hooks: called with every GenerationResult.  A
        #: listener that raises must not break generation; its failure is
        #: recorded in ``listener_errors`` instead.
        self._listeners: list[Callable[[GenerationResult], None]] = []
        self.listener_errors: list[str] = []

    # -- corpus binding (grounds the task engine) ----------------------------

    def bind_tweets(self, corpus: Any) -> None:
        """Ground tweet tasks against a :class:`TweetCorpus`."""
        self.engine.bind_tweets(corpus)

    def bind_clinical(self, corpus: Any) -> None:
        """Ground clinical QA against a :class:`ClinicalCorpus`."""
        self.engine.bind_clinical(corpus)

    @property
    def result_cache_key(self) -> str:
        """Backend identity for operator-result-cache fingerprints.

        Generation is deterministic given (profile, bound corpora,
        prompt), so the key is the profile plus the identities of the
        bound corpora: two models grounded against the same corpus
        objects produce identical outputs and may share cache entries
        (e.g. a fresh executor per refinement iteration); models bound to
        different corpora never alias.
        """
        engine = self.engine
        parts = [self.profile.name]
        for attr in ("_tweets", "_clinical"):
            corpus = getattr(engine, attr, None)
            if corpus is not None:
                parts.append(f"{attr.lstrip('_')}:{id(corpus):x}")
        return "/".join(parts)

    # -- observability hooks ----------------------------------------------

    def add_listener(self, listener: Callable[[GenerationResult], None]) -> None:
        """Call ``listener`` with every future :class:`GenerationResult`."""
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(
        self, listener: Callable[[GenerationResult], None]
    ) -> bool:
        """Detach a listener; returns False when it was not registered."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                return False
            return True

    # -- generation -----------------------------------------------------------
    #
    # ``generate`` composes three backend steps that the GEN micro-batcher
    # (:mod:`repro.llm.batcher`) also drives individually: ``prepare``
    # (tokenize + validate), ``execute_task`` (deterministic task output),
    # and ``record_result`` (counters + listeners).  Keeping them public
    # means batched and unbatched calls share one code path for
    # everything except latency accounting.

    def prepare(self, prompt: str) -> tuple[list[int], PromptFeatures]:
        """Tokenize and validate a prompt; returns (tokens, features).

        Raises :class:`ModelError` for an empty prompt and
        :class:`TokenBudgetExceededError` past the context window.
        """
        if not prompt:
            raise ModelError("cannot generate from an empty prompt")
        features = extract_features(prompt)
        tokens = self.tokenizer.encode(prompt)
        if len(tokens) > self.profile.context_window:
            raise TokenBudgetExceededError(len(tokens), self.profile.context_window)
        return tokens, features

    def execute_task(
        self,
        prompt: str,
        features: PromptFeatures,
        *,
        max_tokens: int | None = None,
    ) -> tuple[str, int, TaskOutput]:
        """Route and run the task; returns (text, output_tokens, output).

        Deterministic given (profile, bound corpora, prompt) and free of
        shared mutable state, so concurrent lanes may execute tasks in
        any order without changing any item's output.
        """
        output: TaskOutput = self.engine.run(prompt, features)
        text = output.text
        output_tokens = self.tokenizer.count(text)
        if max_tokens is not None and output_tokens > max_tokens:
            pieces = self.tokenizer.pieces(text)[:max_tokens]
            text = " ".join(pieces)
            output_tokens = max_tokens
        return text, output_tokens, output

    def record_result(self, result: GenerationResult) -> None:
        """Fold one result into the aggregate counters and notify listeners."""
        with self._lock:
            self.calls += 1
            self.total_latency += result.latency.total
            self.total_prompt_tokens += result.prompt_tokens
            self.total_cached_tokens += result.cached_tokens
            self.total_output_tokens += result.output_tokens
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(result)
            except Exception as error:  # noqa: BLE001 - observers must not break serving
                with self._lock:
                    self.listener_errors.append(
                        f"{type(error).__name__}: {error}"
                    )

    def inject_fault(
        self,
        decision: Any,
        prompt: str,
        tokens: list[int],
        features: PromptFeatures,
        *,
        max_tokens: int | None,
        clock: VirtualClock,
    ) -> None:
        """Charge the fault's modelled cost to ``clock`` and raise it.

        Shared by :meth:`generate` and the micro-batcher so faulted
        calls cost the same simulated time on either path:

        - ``transient`` / ``rate_limit`` fail fast — only the per-call
          overhead is burned;
        - ``timeout`` burns ``timeout_charge_factor`` × the full modelled
          latency (the caller waited past the deadline);
        - ``malformed`` runs the task, truncates the text, charges the
          latency of the tokens actually produced, and carries the
          partial text on the error.
        """
        from repro.errors import (
            MalformedOutputError,
            RateLimitError,
            TransientModelError,
        )
        from repro.errors import TimeoutError as SpearTimeoutError

        spec = decision.spec
        kind = decision.kind
        if kind == "transient":
            clock.advance(self.profile.overhead_s)
            raise TransientModelError(
                "injected transient backend failure",
                injected=True,
                attempt=decision.attempt,
            )
        if kind == "rate_limit":
            clock.advance(self.profile.overhead_s)
            raise RateLimitError(
                "injected rate limit",
                retry_after=spec.retry_after_s,
                injected=True,
                attempt=decision.attempt,
            )
        if kind == "timeout":
            _text, output_tokens, _output = self.execute_task(
                prompt, features, max_tokens=max_tokens
            )
            full = estimate_latency(
                self.profile,
                prompt_tokens=len(tokens),
                cached_tokens=0,
                output_tokens=output_tokens,
            )
            elapsed = full.total * spec.timeout_charge_factor
            clock.advance(elapsed)
            raise SpearTimeoutError(
                "injected generation timeout",
                elapsed=elapsed,
                injected=True,
                attempt=decision.attempt,
            )
        if kind == "malformed":
            text, output_tokens, _output = self.execute_task(
                prompt, features, max_tokens=max_tokens
            )
            keep = max(1, int(output_tokens * spec.truncation_fraction))
            partial = " ".join(self.tokenizer.pieces(text)[:keep])
            latency = estimate_latency(
                self.profile,
                prompt_tokens=len(tokens),
                cached_tokens=0,
                output_tokens=keep,
            )
            clock.advance(latency.total)
            raise MalformedOutputError(
                f"injected truncation after {keep} tokens",
                partial_text=partial,
                injected=True,
                attempt=decision.attempt,
            )
        raise ModelError(f"unknown fault kind: {kind!r}")  # pragma: no cover

    def generate(
        self,
        prompt: str,
        *,
        max_tokens: int | None = None,
        use_cache: bool | None = None,
    ) -> GenerationResult:
        """Run one generation call.

        Args:
            prompt: the fully rendered prompt text.
            max_tokens: optional hard cap on output tokens (output is
                truncated, mirroring a real ``max_tokens`` parameter).
            use_cache: override the instance-level prefix-cache setting
                for this call.
        """
        tokens, features = self.prepare(prompt)

        # Fault decisions precede the kv-cache lookup so a faulted call
        # leaves no cache side effects — its retry sees the same cache
        # state the first attempt saw.
        decision = (
            self.fault_plan.decide(self.profile.name, prompt)
            if self.fault_plan is not None
            else None
        )
        if decision is not None and decision.kind is not None:
            self.inject_fault(
                decision, prompt, tokens, features,
                max_tokens=max_tokens, clock=self.clock,
            )

        caching = self.enable_prefix_cache if use_cache is None else use_cache
        cached = self.kv_cache.lookup_and_insert(tokens) if caching else 0

        text, output_tokens, output = self.execute_task(
            prompt, features, max_tokens=max_tokens
        )

        latency = estimate_latency(
            self.profile,
            prompt_tokens=len(tokens),
            cached_tokens=cached,
            output_tokens=output_tokens,
        )
        extras = dict(output.extras)
        if decision is not None and decision.spike_factor != 1.0:
            factor = decision.spike_factor
            latency = LatencyBreakdown(
                overhead=latency.overhead * factor,
                prefill=latency.prefill * factor,
                cached_prefill=latency.cached_prefill * factor,
                decode=latency.decode * factor,
            )
            extras["latency_spike"] = factor
        self.clock.advance(latency.total)

        result = GenerationResult(
            text=text,
            task=output.task,
            prompt_tokens=len(tokens),
            cached_tokens=cached,
            output_tokens=output_tokens,
            latency=latency,
            confidence=output.confidence,
            extras=extras,
        )
        self.record_result(result)
        return result

    # -- accounting -------------------------------------------------------------

    @property
    def overall_cache_hit_rate(self) -> float:
        """Token-level prefix-cache hit rate across every call so far."""
        if self.total_prompt_tokens == 0:
            return 0.0
        return self.total_cached_tokens / self.total_prompt_tokens

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time accounting for gauges and reports (atomic)."""
        with self._lock:
            return {
                "profile": self.profile.name,
                "calls": self.calls,
                "total_latency": self.total_latency,
                "total_prompt_tokens": self.total_prompt_tokens,
                "total_cached_tokens": self.total_cached_tokens,
                "total_output_tokens": self.total_output_tokens,
                "overall_cache_hit_rate": self.overall_cache_hit_rate,
                "kv_cache": self.kv_cache.snapshot(),
                "prompt_cache": self.prompt_cache.snapshot(),
                "faults": (
                    self.fault_plan.snapshot()
                    if self.fault_plan is not None
                    and hasattr(self.fault_plan, "snapshot")
                    else None
                ),
            }

    def reset_stats(self, *, clear_cache: bool = False) -> None:
        """Zero the aggregate counters (and optionally drop the caches)."""
        with self._lock:
            self.calls = 0
            self.total_latency = 0.0
            self.total_prompt_tokens = 0
            self.total_cached_tokens = 0
            self.total_output_tokens = 0
        if clear_cache:
            self.kv_cache.clear()
            self.prompt_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedLLM({self.profile.name!r}, calls={self.calls}, "
            f"hit_rate={self.overall_cache_hit_rate:.1%})"
        )
