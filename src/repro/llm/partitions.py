"""Namespaced cache partitions for multi-tenant serving.

One serving process hosts many tenants, but KV state must never cross a
tenant boundary: a tenant's prompts are its data, and prefix-cache hits
leak timing (and, in a real system, content) across tenants.
:class:`CachePartitions` gives each namespace its own
:class:`~repro.llm.radix_cache.RadixPrefixCache` and
:class:`~repro.llm.prompt_cache.StructuredPromptCache`, created lazily
and sized uniformly — isolation by construction rather than by key
prefixing, so a lookup physically cannot hit another tenant's entries.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.llm.prompt_cache import StructuredPromptCache
from repro.llm.radix_cache import RadixPrefixCache

__all__ = ["CachePartition", "CachePartitions"]


class CachePartition:
    """One namespace's private cache pair (radix KV + structured prompt)."""

    def __init__(
        self,
        namespace: str,
        *,
        block_size: int,
        capacity_blocks: int,
        prompt_capacity: int,
    ) -> None:
        self.namespace = namespace
        self.kv_cache = RadixPrefixCache(
            block_size=block_size, capacity_blocks=capacity_blocks
        )
        self.prompt_cache = StructuredPromptCache(capacity=prompt_capacity)

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time accounting for this partition."""
        return {
            "namespace": self.namespace,
            "kv_cache": self.kv_cache.snapshot(),
            "prompt_cache": self.prompt_cache.snapshot(),
        }


class CachePartitions:
    """Lazily-created, uniformly-sized cache partitions by namespace.

    The serving layer asks for ``partitions.get(tenant)`` when building a
    tenant's model; two distinct namespaces always receive distinct cache
    objects, so cross-tenant KV sharing is structurally impossible.
    Thread-safe: concurrent first requests for the same namespace resolve
    to one partition.
    """

    def __init__(
        self,
        *,
        block_size: int = 16,
        capacity_blocks: int = 4096,
        prompt_capacity: int = 4096,
    ) -> None:
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.prompt_capacity = prompt_capacity
        self._partitions: dict[str, CachePartition] = {}
        self._lock = threading.Lock()

    def get(self, namespace: str) -> CachePartition:
        """The namespace's partition, created on first use."""
        if not namespace:
            raise ValueError("namespace must be non-empty")
        with self._lock:
            partition = self._partitions.get(namespace)
            if partition is None:
                partition = CachePartition(
                    namespace,
                    block_size=self.block_size,
                    capacity_blocks=self.capacity_blocks,
                    prompt_capacity=self.prompt_capacity,
                )
                self._partitions[namespace] = partition
            return partition

    def namespaces(self) -> list[str]:
        """All namespaces with a live partition, in creation order."""
        with self._lock:
            return list(self._partitions)

    def snapshot(self) -> dict[str, Any]:
        """Per-namespace snapshots plus aggregate hit accounting."""
        with self._lock:
            partitions = list(self._partitions.values())
        per_namespace = {p.namespace: p.snapshot() for p in partitions}
        total_cached = sum(
            s["kv_cache"].get("cached_tokens", 0.0)
            for s in per_namespace.values()
        )
        return {
            "partitions": per_namespace,
            "namespaces": len(per_namespace),
            "total_kv_cached_tokens": total_cached,
        }
