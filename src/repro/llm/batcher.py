"""Continuous GEN micro-batching (paper §6: vLLM-style batched serving).

A real serving stack gets its throughput from running many per-item
pipelines concurrently and batching their generation calls into shared
engine steps.  :class:`GenMicroBatcher` reproduces that mechanism for the
simulated backend: concurrent ``generate`` calls from parallel worker
lanes are coalesced into *micro-batches* that pay one shared overhead,
one compute-bound prefill over the batch's uncached tokens (shared
structured prefixes hit the block prefix cache at the cheap cached rate),
and one overlapped decode of ``max(output_tokens)`` steps — the
first-order model in :func:`repro.llm.latency.estimate_batch_latency`.

Scheduling model
----------------

Lanes register with :meth:`open_lane` and submit calls through the
returned :class:`LaneModel` proxy (a drop-in for
:class:`~repro.llm.model.SimulatedLLM` on an execution state).  A submit
blocks until the batch it joins completes.  The batcher flushes when
every *open* lane has a call waiting — a full barrier — so micro-batch
composition is a pure function of the workload, independent of thread
timing: the batch always contains exactly the next generation call of
each still-active lane.  Lanes that finish their work call
:meth:`close_lane`, shrinking the barrier.  Oversized barriers are split
into chunks of ``max_batch`` (in lane order) modelling bounded per-step
batch capacity; the chunks run as concurrent engine steps (each starts
from its own participants' clocks), like replicas sharing the load.

Determinism: task outputs are computed by the model's deterministic
``execute_task`` path per request (in lane order), so every item's text
is identical to what a sequential run produces; only the *latency*
accounting differs, which is the point.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.llm.latency import estimate_batch_latency
from repro.runtime.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.model import GenerationResult, SimulatedLLM
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "GenMicroBatcher",
    "LaneModel",
    "MICROBATCH_SIZE_BUCKETS",
    "prepare_request",
    "execute_requests",
]

#: histogram buckets for micro-batch sizes (requests per flush).
MICROBATCH_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


class _Request:
    """One pending generation call of one lane.

    The scheduling fields (``arrival``, ``priority_rank``, ``deadline``)
    are only populated by the continuous engine
    (:class:`~repro.runtime.scheduler.GenScheduler`); the barrier
    batcher ignores them.
    """

    __slots__ = (
        "lane_id", "prompt", "max_tokens", "use_cache", "clock",
        "result", "error", "done",
        "arrival", "priority_rank", "priority_name", "deadline",
        "tokens", "features", "decision", "prepared",
    )

    def __init__(
        self,
        lane_id: int,
        prompt: str,
        max_tokens: int | None,
        use_cache: bool | None,
        clock: VirtualClock,
    ) -> None:
        self.lane_id = lane_id
        self.prompt = prompt
        self.max_tokens = max_tokens
        self.use_cache = use_cache
        self.clock = clock
        self.result: "GenerationResult | None" = None
        self.error: BaseException | None = None
        self.done = False
        self.arrival = 0.0
        self.priority_rank = 1
        self.priority_name = "normal"
        self.deadline: float | None = None
        self.tokens: list[int] | None = None
        self.features: Any = None
        self.decision: Any = None
        self.prepared = False


def prepare_request(model: "SimulatedLLM", request: _Request) -> bool:
    """Tokenize one request and apply its seeded fault decision.

    This is the shared front half of an engine step — both the barrier
    batcher and the continuous scheduler route every request through it,
    so batched runs inject exactly the faults a sequential run would
    (``fault_plan.decide`` is keyed by prompt, not by arrival order).
    Returns True when the request survives to execution; on a prepare
    error or an injected fault the request is completed in place (error
    or fault charge delivered to its own lane clock) and False is
    returned.
    """
    try:
        request.tokens, request.features = model.prepare(request.prompt)
    except Exception as error:  # noqa: BLE001 - delivered to the lane
        request.error = error
        request.done = True
        return False
    request.decision = (
        model.fault_plan.decide(model.profile.name, request.prompt)
        if model.fault_plan is not None
        else None
    )
    if request.decision is not None and request.decision.kind is not None:
        try:
            model.inject_fault(
                request.decision, request.prompt, request.tokens,
                request.features, max_tokens=request.max_tokens,
                clock=request.clock,
            )
        except Exception as error:  # noqa: BLE001 - delivered to the lane
            request.error = error
        request.done = True
        return False
    request.prepared = True
    return True


def execute_requests(
    model: "SimulatedLLM", requests: "list[_Request]"
) -> tuple[list[tuple[int, int, int]], list[tuple[str, int, Any]]]:
    """Run the deterministic task engine over prepared requests, in order.

    Performs the per-request prefix-cache lookup and task execution —
    the shared back half of an engine step.  Returns the
    ``(prompt_tokens, cached_tokens, output_tokens)`` triples and the
    ``(text, output_tokens, output)`` results, index-aligned with
    ``requests``.
    """
    triples: list[tuple[int, int, int]] = []
    outputs: list[tuple[str, int, Any]] = []
    for request in requests:
        assert request.tokens is not None
        caching = (
            model.enable_prefix_cache
            if request.use_cache is None
            else request.use_cache
        )
        cached = model.kv_cache.lookup_and_insert(request.tokens) if caching else 0
        text, output_tokens, output = model.execute_task(
            request.prompt, request.features, max_tokens=request.max_tokens
        )
        triples.append((len(request.tokens), cached, output_tokens))
        outputs.append((text, output_tokens, output))
    return triples, outputs


class LaneModel:
    """Per-lane view of the shared model.

    ``generate`` routes through the shared engine (a
    :class:`GenMicroBatcher` or a
    :class:`~repro.runtime.scheduler.GenScheduler` — anything with a
    compatible ``submit``/``model``) and charges the lane's virtual
    clock; every other attribute (caches, profile, tokenizer, counters)
    transparently delegates to the wrapped
    :class:`~repro.llm.model.SimulatedLLM`, so operators and
    observability code see the shared backend.
    """

    def __init__(
        self, batcher: Any, lane_id: int, clock: VirtualClock
    ) -> None:
        self._batcher = batcher
        self.lane_id = lane_id
        self.clock = clock

    def generate(
        self,
        prompt: str,
        *,
        max_tokens: int | None = None,
        use_cache: bool | None = None,
    ) -> "GenerationResult":
        """Submit one call to the micro-batcher; blocks until the batch runs."""
        return self._batcher.submit(
            self.lane_id, prompt, max_tokens=max_tokens, use_cache=use_cache
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._batcher.model, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LaneModel(lane={self.lane_id}, model={self._batcher.model!r})"


class GenMicroBatcher:
    """Coalesces concurrent generation calls into batched engine steps."""

    def __init__(
        self,
        model: "SimulatedLLM",
        *,
        max_batch: int = 64,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.model = model
        self.max_batch = max_batch
        self.metrics = metrics
        self._cond = threading.Condition()
        self._open_lanes: set[int] = set()
        self._lane_clocks: dict[int, VirtualClock] = {}
        self._pending: dict[int, _Request] = {}
        # aggregate accounting (guarded by the condition's lock)
        self.flushes = 0
        self.batched_calls = 0
        self.largest_batch = 0
        self.total_batch_wall = 0.0
        self._size_sum = 0

    # -- lane lifecycle ------------------------------------------------------

    def open_lane(self, lane_id: int, clock: VirtualClock) -> LaneModel:
        """Register a worker lane; returns its model proxy.

        An open lane is part of the flush barrier: the batcher waits for
        its next call (or its close) before running a micro-batch.
        """
        with self._cond:
            if lane_id in self._open_lanes:
                raise ValueError(f"lane {lane_id} is already open")
            self._open_lanes.add(lane_id)
            self._lane_clocks[lane_id] = clock
            return LaneModel(self, lane_id, clock)

    def close_lane(self, lane_id: int) -> None:
        """Remove a lane from the barrier (it will submit no more calls)."""
        with self._cond:
            self._open_lanes.discard(lane_id)
            self._lane_clocks.pop(lane_id, None)
            self._maybe_flush_locked()
            self._cond.notify_all()

    # -- the submit / flush path ---------------------------------------------

    def submit(
        self,
        lane_id: int,
        prompt: str,
        *,
        max_tokens: int | None = None,
        use_cache: bool | None = None,
    ) -> "GenerationResult":
        """Enqueue one call and block until its micro-batch completes."""
        with self._cond:
            if lane_id not in self._open_lanes:
                raise RuntimeError(f"lane {lane_id} is not open")
            if lane_id in self._pending:
                raise RuntimeError(f"lane {lane_id} already has a pending call")
            request = _Request(
                lane_id, prompt, max_tokens, use_cache,
                self._lane_clocks.get(lane_id, self.model.clock),
            )
            self._pending[lane_id] = request
            self._observe_queue_depth_locked()
            self._maybe_flush_locked()
            self._cond.notify_all()
            while not request.done:
                self._cond.wait()
        if request.error is not None:
            raise request.error
        assert request.result is not None
        return request.result

    def _maybe_flush_locked(self) -> None:
        """Flush while every open lane has a pending call (full barrier)."""
        while self._pending and len(self._pending) >= len(self._open_lanes):
            batch = [self._pending[lane] for lane in sorted(self._pending)]
            self._pending.clear()
            self._observe_queue_depth_locked()
            for start in range(0, len(batch), self.max_batch):
                self._run_chunk_locked(batch[start : start + self.max_batch])
            self._cond.notify_all()

    def _run_chunk_locked(self, chunk: list[_Request]) -> None:
        """Execute one micro-batch (all barrier peers are blocked waiting).

        Fault injection happens here per request — this path bypasses
        ``model.generate`` — using the same seeded
        :attr:`~repro.llm.model.SimulatedLLM.fault_plan` decisions, so a
        batched run injects exactly the faults a sequential run would.
        Faulted requests charge their own lane clock and are excluded
        from the micro-batch; latency spikes keep the request in the
        batch and stretch only its lane's clock afterwards.
        """
        model = self.model
        prepared = [request for request in chunk if prepare_request(model, request)]
        if not prepared:
            return

        triples, outputs = execute_requests(model, prepared)

        batch = estimate_batch_latency(model.profile, triples)
        # The batched step starts when its last participant arrives and
        # completes for everyone at once: lanes merge to the same time.
        batch_start = max(request.clock.now for request in prepared)
        batch_end = batch_start + batch.wall

        from repro.llm.latency import LatencyBreakdown
        from repro.llm.model import GenerationResult

        for index, request in enumerate(prepared):
            text, output_tokens, output = outputs[index]
            prompt_tokens, cached, _ = triples[index]
            latency = batch.per_request[index]
            extras = {
                **output.extras,
                "microbatch_size": batch.size,
                "microbatch_wall": batch.wall,
            }
            decision = request.decision
            spiked = decision is not None and decision.spike_factor != 1.0
            if spiked:
                factor = decision.spike_factor
                latency = LatencyBreakdown(
                    overhead=latency.overhead * factor,
                    prefill=latency.prefill * factor,
                    cached_prefill=latency.cached_prefill * factor,
                    decode=latency.decode * factor,
                )
                extras["latency_spike"] = factor
            result = GenerationResult(
                text=text,
                task=output.task,
                prompt_tokens=prompt_tokens,
                cached_tokens=cached,
                output_tokens=output_tokens,
                latency=latency,
                confidence=output.confidence,
                extras=extras,
            )
            request.clock.advance_to(batch_end)
            if spiked:
                # The slow-start request leaves the shared step late: its
                # lane alone pays the stretched remainder.
                request.clock.advance(
                    batch.per_request[index].total
                    * (decision.spike_factor - 1.0)
                )
            model.record_result(result)
            request.result = result
            request.done = True

        self.flushes += 1
        self.batched_calls += len(prepared)
        self.largest_batch = max(self.largest_batch, len(prepared))
        self.total_batch_wall += batch.wall
        self._size_sum += len(prepared)
        self._observe_flush_locked(len(prepared), batch.wall)

    # -- observability -------------------------------------------------------

    def _observe_queue_depth_locked(self) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge(
            "spear_gen_queue_depth",
            "Generation calls waiting for a micro-batch flush.",
            model=self.model.profile.name,
        ).set(float(len(self._pending)))

    def _observe_flush_locked(self, size: int, wall: float) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "spear_microbatch_flushes_total",
            "Micro-batches executed.", model=self.model.profile.name,
        ).inc()
        self.metrics.histogram(
            "spear_microbatch_size",
            "Generation calls coalesced per micro-batch.",
            buckets=MICROBATCH_SIZE_BUCKETS,
            model=self.model.profile.name,
        ).observe(float(size))
        self.metrics.histogram(
            "spear_microbatch_wall_seconds",
            "Simulated wall time per micro-batch engine step.",
            model=self.model.profile.name,
        ).observe(wall)

    def snapshot(self) -> dict[str, float]:
        """Point-in-time batching statistics for gauges and reports."""
        with self._cond:
            return {
                "flushes": self.flushes,
                "batched_calls": self.batched_calls,
                "largest_batch": self.largest_batch,
                "mean_batch_size": (
                    self._size_sum / self.flushes if self.flushes else 0.0
                ),
                "total_batch_wall": self.total_batch_wall,
                "open_lanes": len(self._open_lanes),
                "pending": len(self._pending),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GenMicroBatcher(lanes={len(self._open_lanes)}, "
            f"flushes={self.flushes}, largest={self.largest_batch})"
        )
