"""Simulated model profiles standing in for the paper's three backends.

The paper evaluates Qwen2.5-7B-Instruct and Mistral-7B-Instruct served by
vLLM on an RTX 3090, plus GPT-4o-mini over an API.  We cannot run the
weights, but every experiment only depends on (a) the latency profile of a
call — fixed overhead, per-token prefill cost (cached and uncached), and
per-token decode cost — and (b) how reliably the model follows prompts of
varying quality.  A :class:`ModelProfile` captures exactly those knobs.

The constants are calibrated so that the Table 3 Static-Prompt baseline
lands near the paper's 3.10 s and the relative behaviours (speedups, cache
benefits, fusion penalties) match the published shapes; see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError

__all__ = ["ModelProfile", "get_profile", "PROFILES", "DEFAULT_PROFILE"]


@dataclass(frozen=True)
class ModelProfile:
    """Latency and prompt-following characteristics of one backend."""

    name: str
    #: fixed per-call overhead in seconds (scheduling / API round trip).
    overhead_s: float
    #: prefill seconds per *uncached* prompt token.
    prefill_s_per_token: float
    #: prefill seconds per *cached* prompt token (KV reuse is ~10x cheaper).
    cached_prefill_s_per_token: float
    #: decode seconds per output token.
    decode_s_per_token: float
    #: error rate of a bare, featureless prompt on a unit-difficulty item.
    base_error: float
    #: floor below which no amount of prompt engineering helps.
    min_error: float
    #: multiplicative error penalty when two pipeline stages are fused into
    #: one prompt, by fusion order (task interference; paper §7 finds
    #: Map→Filter fusion costs 4–8% accuracy, Filter→Map 0.3–6%).
    fusion_penalty_map_filter: float = 1.30
    fusion_penalty_filter_map: float = 1.12
    #: context window in tokens; requests beyond it raise.
    context_window: int = 32768
    #: per-feature error multiplier overrides (see repro.llm.quality).
    feature_overrides: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.base_error < 1.0:
            raise ModelError(f"base_error must be in (0, 1): {self.base_error}")
        if not 0.0 <= self.min_error <= self.base_error:
            raise ModelError(
                f"min_error must be in [0, base_error]: {self.min_error}"
            )


#: Registry of the three simulated backends used in §7.
PROFILES: dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (
        ModelProfile(
            name="qwen2.5-7b-instruct",
            overhead_s=0.50,
            prefill_s_per_token=0.0050,
            cached_prefill_s_per_token=0.00015,
            decode_s_per_token=0.050,
            base_error=0.30,
            min_error=0.04,
            fusion_penalty_map_filter=1.32,
            fusion_penalty_filter_map=1.10,
        ),
        ModelProfile(
            name="mistral-7b-instruct",
            overhead_s=0.50,
            prefill_s_per_token=0.0058,
            cached_prefill_s_per_token=0.00017,
            decode_s_per_token=0.056,
            base_error=0.33,
            min_error=0.05,
            fusion_penalty_map_filter=1.62,
            fusion_penalty_filter_map=1.22,
        ),
        ModelProfile(
            name="gpt-4o-mini",
            overhead_s=0.45,
            prefill_s_per_token=0.0020,
            cached_prefill_s_per_token=0.00010,
            decode_s_per_token=0.038,
            base_error=0.24,
            min_error=0.03,
            fusion_penalty_map_filter=1.60,
            fusion_penalty_filter_map=1.02,
            context_window=128000,
        ),
    )
}

DEFAULT_PROFILE = "qwen2.5-7b-instruct"


def get_profile(name: str) -> ModelProfile:
    """Look up a profile by name; raises :class:`ModelError` if unknown."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ModelError(
            f"unknown model profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
