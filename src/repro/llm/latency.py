"""Token-level latency model for simulated generation.

One GEN call costs::

    overhead + prefill · uncached_tokens + cached_prefill · cached_tokens
             + decode · output_tokens

seconds, with the per-token rates taken from the backend's
:class:`~repro.llm.profiles.ModelProfile`.  This is the standard first-order
model of transformer serving cost (prefill is compute-bound per prompt
token, decode is memory-bound per output token, KV-cached prefix tokens are
~10–20× cheaper), and it is all the paper's experiments depend on.

Batched serving (:func:`estimate_batch_latency`): a vLLM-style engine runs
many requests per engine step, so a *micro-batch* of B concurrent calls
does not cost the sum of B call latencies.  First-order model of one
batched step:

- the per-call overhead (scheduling / API round trip) is paid **once**;
- prefill is compute-bound, so uncached prompt tokens still **sum**
  across the batch (cached prefix tokens stay at the cheap cached rate —
  this is where shared structured prefixes across items pay off);
- decode is memory-bound and all sequences step together, so the batch
  decodes for **max** output tokens, not the sum — the throughput win of
  continuous batching.

The batch's wall time charges every participating lane's virtual clock;
each request additionally keeps its own attributed breakdown (its share
of overhead, its own prefill, its own decode) for accounting.

Continuous batching (:func:`estimate_continuous_step`): the barrier model
above still synchronizes every participant to the batched step's end —
the whole batch decodes for ``max(output)`` and everyone leaves together.
A continuous engine (the :class:`~repro.runtime.scheduler.GenScheduler`)
instead prices one admission watermark as two decoupled resources:

- **prefill is a serial pipe** — it is compute-bound, so the engine's
  prefill unit processes admitted requests one after another, in policy
  order, each starting no earlier than its own arrival and no earlier
  than the pipe is free (``prefill_free_at`` carries across steps);
- **decode fully overlaps** — it is memory-bound and all resident
  sequences step together, so each request decodes for its *own*
  ``output_tokens`` after its prefill lands, independent of its peers.

Each request therefore completes at::

    max(arrival, prefill_free_at) + overhead/B + prefill_own + decode_own

which removes both barrier penalties (waiting for the slowest arrival,
and decoding for the longest output).  A step of one request with a free
pipe degenerates exactly to :func:`estimate_latency` — the byte-identity
oracle for scheduler runs.

Intra-step trunk dedup: when the scheduler groups requests that share a
structured-prompt trunk into one step, the trunk's KV is pushed through
the prefill pipe by the first member and is simply *resident* for the
rest — they pay nothing for it, not even the cached re-read rate.  The
``dedup_tokens`` argument of :func:`estimate_continuous_step` prices
exactly that: the shared trunk is charged once per step instead of once
per request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.llm.profiles import ModelProfile

__all__ = [
    "LatencyBreakdown",
    "BatchLatency",
    "StepLatency",
    "estimate_latency",
    "estimate_batch_latency",
    "estimate_continuous_step",
]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-phase latency of one generation call, in seconds."""

    overhead: float
    prefill: float
    cached_prefill: float
    decode: float

    @property
    def total(self) -> float:
        """End-to-end call latency."""
        return self.overhead + self.prefill + self.cached_prefill + self.decode


def _validate_tokens(
    prompt_tokens: int, cached_tokens: int, output_tokens: int
) -> None:
    """Shared token-count validation for every estimator.

    ``cached_tokens`` must not exceed ``prompt_tokens`` (a prefix cannot
    be longer than the prompt) and all counts must be non-negative.
    """
    if cached_tokens > prompt_tokens:
        raise ValueError(
            f"cached_tokens ({cached_tokens}) > prompt_tokens ({prompt_tokens})"
        )
    if min(prompt_tokens, cached_tokens, output_tokens) < 0:
        raise ValueError("token counts must be non-negative")


def estimate_latency(
    profile: ModelProfile,
    *,
    prompt_tokens: int,
    cached_tokens: int,
    output_tokens: int,
) -> LatencyBreakdown:
    """Latency of one call under ``profile``.

    ``cached_tokens`` must not exceed ``prompt_tokens``; the uncached
    remainder pays full prefill cost.
    """
    _validate_tokens(prompt_tokens, cached_tokens, output_tokens)
    uncached = prompt_tokens - cached_tokens
    return LatencyBreakdown(
        overhead=profile.overhead_s,
        prefill=profile.prefill_s_per_token * uncached,
        cached_prefill=profile.cached_prefill_s_per_token * cached_tokens,
        decode=profile.decode_s_per_token * output_tokens,
    )


@dataclass(frozen=True)
class BatchLatency:
    """Latency of one micro-batch of concurrent generation calls."""

    #: attributed per-request breakdowns, in submission order.  Their
    #: totals sum to *more* than ``wall`` whenever decode overlaps.
    per_request: tuple[LatencyBreakdown, ...]
    #: simulated wall time of the whole batched step — what every
    #: participating lane's clock advances by.
    wall: float

    @property
    def size(self) -> int:
        """Number of requests in the micro-batch."""
        return len(self.per_request)

    @property
    def serialized(self) -> float:
        """Sum of attributed request totals plus the amortized overhead
        savings — roughly what running the batch one-by-one would cost."""
        return sum(request.total for request in self.per_request)


def estimate_batch_latency(
    profile: ModelProfile,
    requests: Sequence[tuple[int, int, int]],
) -> BatchLatency:
    """Latency of one micro-batch under ``profile``.

    ``requests`` is a sequence of ``(prompt_tokens, cached_tokens,
    output_tokens)`` triples.  The batch wall time is::

        overhead + prefill · Σ uncached + cached_prefill · Σ cached
                 + decode · max(output)

    while each request's attributed :class:`LatencyBreakdown` carries its
    share of the overhead (``overhead / B``), its own prefill cost, and
    its own full decode cost.  A batch of one degenerates exactly to
    :func:`estimate_latency`.
    """
    if not requests:
        raise ValueError("a micro-batch needs at least one request")
    size = len(requests)
    per_request: list[LatencyBreakdown] = []
    total_uncached = 0
    total_cached = 0
    max_output = 0
    for prompt_tokens, cached_tokens, output_tokens in requests:
        _validate_tokens(prompt_tokens, cached_tokens, output_tokens)
        uncached = prompt_tokens - cached_tokens
        total_uncached += uncached
        total_cached += cached_tokens
        max_output = max(max_output, output_tokens)
        per_request.append(
            LatencyBreakdown(
                overhead=profile.overhead_s / size,
                prefill=profile.prefill_s_per_token * uncached,
                cached_prefill=profile.cached_prefill_s_per_token * cached_tokens,
                decode=profile.decode_s_per_token * output_tokens,
            )
        )
    wall = (
        profile.overhead_s
        + profile.prefill_s_per_token * total_uncached
        + profile.cached_prefill_s_per_token * total_cached
        + profile.decode_s_per_token * max_output
    )
    return BatchLatency(per_request=tuple(per_request), wall=wall)


@dataclass(frozen=True)
class StepLatency:
    """Latency of one continuous-batching engine step.

    Times are *absolute* virtual-clock instants, not durations: the step
    is priced against each request's own arrival and the engine's
    carried-over prefill availability.
    """

    #: attributed per-request breakdowns, in admission (policy) order.
    per_request: tuple[LatencyBreakdown, ...]
    #: absolute instant each request's prefill begins (post queue wait).
    starts: tuple[float, ...]
    #: absolute instant each request completes (prefill + own decode).
    completions: tuple[float, ...]
    #: instant the engine's serial prefill pipe becomes free again;
    #: feed this into the next step's ``prefill_free_at``.
    prefill_free_at: float
    #: engine-busy wall time of the step: last completion minus the
    #: first prefill start.
    wall: float
    #: per-request intra-step trunk tokens charged zero (shared-prefix
    #: dedup), index-aligned with ``per_request``.
    dedup_tokens: tuple[int, ...] = ()

    @property
    def size(self) -> int:
        """Number of requests admitted to the step."""
        return len(self.per_request)

    @property
    def total_dedup_tokens(self) -> int:
        """Trunk tokens the whole step prefilled once instead of B times."""
        return sum(self.dedup_tokens)


def estimate_continuous_step(
    profile: ModelProfile,
    requests: Sequence[tuple[int, int, int]],
    arrivals: Sequence[float],
    *,
    prefill_free_at: float = 0.0,
    dedup_tokens: Sequence[int] | None = None,
) -> StepLatency:
    """Latency of one continuous engine step under ``profile``.

    ``requests`` is a sequence of ``(prompt_tokens, cached_tokens,
    output_tokens)`` triples in admission order; ``arrivals`` gives each
    request's arrival instant on the virtual clock.  The per-call
    overhead is amortized across the step (``overhead / B`` each, paid
    serially in the prefill pipe, so a whole step still pays exactly one
    overhead); prefill occupies the serial pipe in admission order;
    decode overlaps fully, so request ``i`` completes ``decode ·
    output_i`` after its own prefill lands.  A single request with a free
    pipe degenerates exactly to :func:`estimate_latency`.

    ``dedup_tokens`` (optional, index-aligned) prices **intra-step trunk
    sharing**: request ``i``'s leading ``dedup_tokens[i]`` cached tokens
    are a trunk an *earlier member of this same step* already pushed
    through the prefill pipe, so its KV is resident in the step's working
    set and costs nothing at all — not even the cached-prefill re-read
    rate.  Each entry must not exceed that request's ``cached_tokens``;
    the remaining cached tokens still pay the cached rate, and uncached
    tokens full prefill.  Omitting it (or all zeros) reproduces the
    PR 7 pricing exactly.
    """
    if not requests:
        raise ValueError("a continuous step needs at least one request")
    if len(arrivals) != len(requests):
        raise ValueError(
            f"arrivals ({len(arrivals)}) must match requests ({len(requests)})"
        )
    if dedup_tokens is None:
        dedup_tokens = [0] * len(requests)
    elif len(dedup_tokens) != len(requests):
        raise ValueError(
            f"dedup_tokens ({len(dedup_tokens)}) must match "
            f"requests ({len(requests)})"
        )
    size = len(requests)
    overhead_share = profile.overhead_s / size
    pipe = float(prefill_free_at)
    per_request: list[LatencyBreakdown] = []
    starts: list[float] = []
    completions: list[float] = []
    for (prompt_tokens, cached_tokens, output_tokens), arrival, dedup in zip(
        requests, arrivals, dedup_tokens
    ):
        _validate_tokens(prompt_tokens, cached_tokens, output_tokens)
        if dedup < 0 or dedup > cached_tokens:
            raise ValueError(
                f"dedup_tokens ({dedup}) must be within "
                f"[0, cached_tokens ({cached_tokens})]"
            )
        uncached = prompt_tokens - cached_tokens
        breakdown = LatencyBreakdown(
            overhead=overhead_share,
            prefill=profile.prefill_s_per_token * uncached,
            cached_prefill=(
                profile.cached_prefill_s_per_token * (cached_tokens - dedup)
            ),
            decode=profile.decode_s_per_token * output_tokens,
        )
        start = max(float(arrival), pipe)
        pipe = (
            start + breakdown.overhead + breakdown.prefill + breakdown.cached_prefill
        )
        per_request.append(breakdown)
        starts.append(start)
        completions.append(pipe + breakdown.decode)
    return StepLatency(
        per_request=tuple(per_request),
        starts=tuple(starts),
        completions=tuple(completions),
        prefill_free_at=pipe,
        wall=max(completions) - min(starts),
        dedup_tokens=tuple(int(d) for d in dedup_tokens),
    )
