"""Token-level latency model for simulated generation.

One GEN call costs::

    overhead + prefill · uncached_tokens + cached_prefill · cached_tokens
             + decode · output_tokens

seconds, with the per-token rates taken from the backend's
:class:`~repro.llm.profiles.ModelProfile`.  This is the standard first-order
model of transformer serving cost (prefill is compute-bound per prompt
token, decode is memory-bound per output token, KV-cached prefix tokens are
~10–20× cheaper), and it is all the paper's experiments depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.profiles import ModelProfile

__all__ = ["LatencyBreakdown", "estimate_latency"]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-phase latency of one generation call, in seconds."""

    overhead: float
    prefill: float
    cached_prefill: float
    decode: float

    @property
    def total(self) -> float:
        """End-to-end call latency."""
        return self.overhead + self.prefill + self.cached_prefill + self.decode


def estimate_latency(
    profile: ModelProfile,
    *,
    prompt_tokens: int,
    cached_tokens: int,
    output_tokens: int,
) -> LatencyBreakdown:
    """Latency of one call under ``profile``.

    ``cached_tokens`` must not exceed ``prompt_tokens``; the uncached
    remainder pays full prefill cost.
    """
    if cached_tokens > prompt_tokens:
        raise ValueError(
            f"cached_tokens ({cached_tokens}) > prompt_tokens ({prompt_tokens})"
        )
    if min(prompt_tokens, cached_tokens, output_tokens) < 0:
        raise ValueError("token counts must be non-negative")
    uncached = prompt_tokens - cached_tokens
    return LatencyBreakdown(
        overhead=profile.overhead_s,
        prefill=profile.prefill_s_per_token * uncached,
        cached_prefill=profile.cached_prefill_s_per_token * cached_tokens,
        decode=profile.decode_s_per_token * output_tokens,
    )
