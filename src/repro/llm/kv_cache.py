"""Block-level prefix cache, modelled on vLLM automatic prefix caching.

vLLM's scheme (paper ref [16]): the token sequence of a prompt is split
into fixed-size blocks; each block is identified by the hash of *all*
tokens up to and including it (a hash chain), so a block is reusable only
when the entire prefix before it matches.  On a new request, the scheduler
walks the chain and reuses the longest cached prefix; the remaining tokens
pay full prefill cost.

This module reproduces that algorithm exactly (with LRU eviction) and
exposes hit/miss accounting — the "Cache Hit (%)" column of the paper's
Table 3 is ``cached_tokens / prompt_tokens`` over all GEN calls.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["BlockPrefixCache", "CacheStats"]

_DEFAULT_BLOCK = 16
_DEFAULT_CAPACITY = 65536  # blocks


@dataclass
class CacheStats:
    """Aggregate accounting across all lookups."""

    lookups: int = 0
    prompt_tokens: int = 0
    cached_tokens: int = 0
    block_hits: int = 0
    block_misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Token-level hit rate (the paper's Cache Hit %)."""
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens


def _chain_hash(prev: int, block: tuple[int, ...]) -> int:
    payload = prev.to_bytes(8, "little") + b"".join(
        token.to_bytes(8, "little", signed=False) for token in block
    )
    return zlib.crc32(payload)


class BlockPrefixCache:
    """Hash-chained block prefix cache with LRU eviction.

    Thread-safe: concurrent lookups/inserts from parallel worker lanes
    are serialized by one reentrant lock, so LRU order, stats, and the
    combined :meth:`lookup_and_insert` are atomic (no lost hits or
    double-counted evictions under contention) and :meth:`snapshot`
    returns a consistent point-in-time view.
    """

    def __init__(
        self,
        block_size: int = _DEFAULT_BLOCK,
        capacity_blocks: int = _DEFAULT_CAPACITY,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if capacity_blocks < 1:
            raise ValueError(
                f"capacity_blocks must be >= 1, got {capacity_blocks}"
            )
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        # OrderedDict used as an LRU set of chain-hashes.
        self._blocks: OrderedDict[int, None] = OrderedDict()
        self.stats = CacheStats()
        self._lock = threading.RLock()

    def _chain(self, tokens: list[int]) -> list[int]:
        """Chain-hashes for every *complete* block of ``tokens``."""
        hashes: list[int] = []
        prev = 0
        for start in range(0, len(tokens) - self.block_size + 1, self.block_size):
            block = tuple(tokens[start : start + self.block_size])
            prev = _chain_hash(prev, block)
            hashes.append(prev)
        return hashes

    def match_prefix(self, tokens: list[int]) -> int:
        """Number of leading tokens of ``tokens`` served from cache.

        Walks the hash chain; stops at the first uncached block (a block is
        only reusable when its whole prefix matched, which the chain hash
        guarantees).  Updates stats and LRU recency.
        """
        with self._lock:
            cached_blocks = 0
            for chain in self._chain(tokens):
                if chain in self._blocks:
                    self._blocks.move_to_end(chain)
                    cached_blocks += 1
                    self.stats.block_hits += 1
                else:
                    self.stats.block_misses += 1
                    break
            cached = cached_blocks * self.block_size
            self.stats.lookups += 1
            self.stats.prompt_tokens += len(tokens)
            self.stats.cached_tokens += cached
            return cached

    def insert(self, tokens: list[int]) -> int:
        """Cache every complete block of ``tokens``; returns blocks added."""
        with self._lock:
            added = 0
            for chain in self._chain(tokens):
                if chain not in self._blocks:
                    self._blocks[chain] = None
                    added += 1
                else:
                    self._blocks.move_to_end(chain)
            while len(self._blocks) > self.capacity_blocks:
                self._blocks.popitem(last=False)
                self.stats.evictions += 1
            return added

    def lookup_and_insert(self, tokens: list[int]) -> int:
        """The per-request path: match the prefix, then cache the prompt."""
        with self._lock:
            cached = self.match_prefix(tokens)
            self.insert(tokens)
            return cached

    def snapshot(self) -> dict[str, float]:
        """Point-in-time statistics for gauges and reports (atomic)."""
        with self._lock:
            return {
                "blocks": len(self._blocks),
                "capacity_blocks": self.capacity_blocks,
                "block_size": self.block_size,
                "lookups": self.stats.lookups,
                "prompt_tokens": self.stats.prompt_tokens,
                "cached_tokens": self.stats.cached_tokens,
                "block_hits": self.stats.block_hits,
                "block_misses": self.stats.block_misses,
                "evictions": self.stats.evictions,
                "hit_rate": self.stats.hit_rate,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def clear(self) -> None:
        """Drop all cached blocks and reset statistics."""
        with self._lock:
            self._blocks.clear()
            self.stats = CacheStats()
