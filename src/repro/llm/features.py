"""Prompt feature extraction — what the simulated model "responds to".

The paper's premise is that prompt content changes model behaviour: adding
explicit instructions, criteria, examples, hints, or output-format clauses
improves accuracy (§8, "Prompt Refinement").  Our simulated backend makes
that premise operational: a prompt string is parsed into a
:class:`PromptFeatures` record, and :mod:`repro.llm.quality` maps features
to a per-item error probability.  Refinements therefore matter exactly the
way the paper assumes, in a fully deterministic and inspectable way.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, field, fields

__all__ = ["PromptFeatures", "extract_features"]

_INSTRUCTION_VERBS = (
    "classify",
    "summarize",
    "summarise",
    "label",
    "select",
    "filter",
    "answer",
    "extract",
    "identify",
    "clean",
    "rewrite",
    "highlight",
    "decide",
    "determine",
)

_REASONING_MARKERS = (
    "step by step",
    "reason",
    "rationale",
    "explain why",
    "justification",
    "think carefully",
)

_FORMAT_MARKERS = (
    "respond with",
    "output only",
    "answer yes or no",
    "answer with",
    "format:",
    "return exactly",
    "one word",
)

_WORD_LIMIT_RE = re.compile(
    r"(at most|no more than|under|within|fewer than|limit[^.]{0,20})\s+\d+\s+words?",
    re.IGNORECASE,
)

_EXAMPLE_MARKERS = ("example:", "for example", "e.g.", "examples:")

_BULLET_LINE_RE = re.compile(r"^\s*(?:[-*•]|\d+[.)])\s+\S", re.MULTILINE)
_CRITERIA_MARKER_RE = re.compile(r"criteria", re.IGNORECASE)
_GUIDANCE_MARKER_RE = re.compile(r"general guidance", re.IGNORECASE)

_HINT_RE = re.compile(r"focus on|pay attention to|be specific about|emphasi[sz]e", re.IGNORECASE)

_ADAPTIVE_RE = re.compile(r"\bhint:", re.IGNORECASE)


@dataclass(frozen=True)
class PromptFeatures:
    """Structural features of a prompt that affect simulated quality."""

    #: an explicit task verb ("classify", "summarize", ...) is present.
    has_instruction: bool = False
    #: the prompt mentions sentiment polarity terms.
    has_sentiment_terms: bool = False
    #: a "focus on ..." style refinement hint is present.
    has_focus_hint: bool = False
    #: a per-item adaptive hint ("Hint: ...") injected by auto refinement.
    has_adaptive_hint: bool = False
    #: explicit few-shot examples are present.
    has_examples: bool = False
    #: an output-format clause ("respond with ...") is present.
    has_output_format: bool = False
    #: a word-limit clause ("at most 30 words") is present.
    has_word_limit: bool = False
    #: a chain-of-thought / rationale request is present.
    has_reasoning: bool = False
    #: a "General guidance" section of generic do/don't bullets is present.
    has_guidance: bool = False
    #: number of explicit task criteria — bulleted lines following a
    #: "criteria" marker (generic guidance bullets do not count), capped.
    criteria_count: int = 0
    #: the prompt was built from a structured view (sectioned scaffold).
    has_view_structure: bool = False
    #: number of distinct task verbs — >1 signals a fused multi-task prompt.
    task_count: int = 0
    #: topical hint terms found (lowercase), e.g. ("school",).
    hint_terms: tuple[str, ...] = field(default=())
    #: total token-ish length (whitespace pieces), for latency modelling.
    word_count: int = 0

    def fingerprint(self) -> int:
        """Stable hash of the feature vector (seeds the noise channel).

        Two prompts with identical features behave identically on every
        item — this is what makes strategy comparisons reproducible.
        """
        parts = []
        for spec in fields(self):
            parts.append(f"{spec.name}={getattr(self, spec.name)!r}")
        return zlib.crc32(";".join(parts).encode("utf-8"))


#: Topical terms the corpus generators use; extraction looks for these so a
#: refinement like "focus on school-related content" becomes a feature.
TOPIC_TERMS = (
    "school",
    "class",
    "exam",
    "homework",
    "teacher",
    "medication",
    "dosage",
    "timing",
    "indication",
    "enoxaparin",
)


def extract_features(text: str) -> PromptFeatures:
    """Parse ``text`` into a :class:`PromptFeatures` record."""
    lowered = text.lower()

    found_verbs = {verb for verb in _INSTRUCTION_VERBS if verb in lowered}
    # Verbs that describe the same stage collapse together; count distinct
    # stages by grouping synonyms.
    stage_groups = (
        {"summarize", "summarise", "clean", "rewrite"},
        {"classify", "label", "decide", "determine"},
        {"select", "filter"},
        {"answer", "extract", "identify", "highlight"},
    )
    task_count = sum(1 for group in stage_groups if group & found_verbs)

    hint_terms = tuple(sorted(term for term in TOPIC_TERMS if term in lowered))

    criteria_marker = _CRITERIA_MARKER_RE.search(text)
    if criteria_marker is None:
        criteria_count = 0
    else:
        criteria_count = min(
            len(_BULLET_LINE_RE.findall(text[criteria_marker.end():])), 6
        )

    return PromptFeatures(
        has_instruction=bool(found_verbs),
        has_sentiment_terms=(
            "negative" in lowered or "positive" in lowered or "sentiment" in lowered
        ),
        has_focus_hint=bool(_HINT_RE.search(text)),
        has_adaptive_hint=bool(_ADAPTIVE_RE.search(text)),
        has_examples=any(marker in lowered for marker in _EXAMPLE_MARKERS),
        has_output_format=any(marker in lowered for marker in _FORMAT_MARKERS),
        has_word_limit=bool(_WORD_LIMIT_RE.search(text)),
        has_reasoning=any(marker in lowered for marker in _REASONING_MARKERS),
        has_guidance=bool(_GUIDANCE_MARKER_RE.search(text)),
        criteria_count=criteria_count,
        has_view_structure=("### task" in lowered or "## task" in lowered),
        task_count=task_count,
        hint_terms=hint_terms,
        word_count=len(text.split()),
    )
