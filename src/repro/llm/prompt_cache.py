"""Structured prompt cache (paper §5, "Prefix Caching and Reuse").

Beyond token-level KV reuse, SPEAR keeps a *structured* cache of prompt
fragments and their rendered forms, indexed by view name, parameter hash,
and refinement version (after Gim et al.'s Prompt Cache).  Retries,
batched tasks with shared scaffolds, and parameterized view calls hit this
cache instead of re-rendering templates.
"""

from __future__ import annotations

import json
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["StructuredPromptCache", "PromptCacheKey", "param_hash"]


def param_hash(params: Mapping[str, Any]) -> int:
    """Stable hash of a view's parameter binding.

    Parameters are JSON-serialized with sorted keys; unserializable values
    fall back to ``repr`` so arbitrary objects can still participate.
    """
    try:
        payload = json.dumps(params, sort_keys=True, default=repr)
    except (TypeError, ValueError):
        payload = repr(sorted(params.items(), key=lambda item: item[0]))
    return zlib.crc32(payload.encode("utf-8"))


@dataclass(frozen=True)
class PromptCacheKey:
    """Index triple: (view name, parameter hash, refinement version)."""

    view: str
    params: int
    version: int


class StructuredPromptCache:
    """LRU cache of rendered prompt texts keyed by view/params/version.

    Thread-safe: lookups, inserts, and invalidation from concurrent
    worker lanes are serialized by one reentrant lock, so hit/miss
    accounting never races and :meth:`snapshot` is atomic.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[PromptCacheKey, str] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()

    def key(
        self,
        view: str,
        params: Mapping[str, Any],
        version: int = 0,
    ) -> PromptCacheKey:
        """Build the cache key for a view instantiation."""
        return PromptCacheKey(view=view, params=param_hash(params), version=version)

    def get(self, key: PromptCacheKey) -> str | None:
        """Return the cached rendering for ``key`` or None."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: PromptCacheKey, rendered: str) -> None:
        """Cache ``rendered`` under ``key``, evicting LRU entries."""
        with self._lock:
            self._entries[key] = rendered
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate_view(self, view: str) -> int:
        """Drop all entries of one view (e.g. after its definition changed)."""
        with self._lock:
            stale = [key for key in self._entries if key.view == view]
            for key in stale:
                del self._entries[key]
            return len(stale)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def snapshot(self) -> dict[str, float]:
        """Point-in-time statistics for gauges and reports (atomic)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
