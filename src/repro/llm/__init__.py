"""Simulated LLM serving substrate (tokenizer, caches, profiles, model).

Stands in for the paper's vLLM + {Qwen2.5-7B, Mistral-7B, GPT-4o-mini}
stack; see DESIGN.md §2 for the substitution rationale.
"""

from repro.llm.batcher import GenMicroBatcher, LaneModel
from repro.llm.features import PromptFeatures, extract_features
from repro.llm.kv_cache import BlockPrefixCache, CacheStats
from repro.llm.latency import (
    BatchLatency,
    LatencyBreakdown,
    estimate_batch_latency,
    estimate_latency,
)
from repro.llm.model import GenerationResult, SimulatedLLM
from repro.llm.packing import Fragment, PackResult, pack_fragments
from repro.llm.partitions import CachePartition, CachePartitions
from repro.llm.profiles import DEFAULT_PROFILE, PROFILES, ModelProfile, get_profile
from repro.llm.prompt_cache import PromptCacheKey, StructuredPromptCache, param_hash
from repro.llm.quality import error_rate, noisy_bool
from repro.llm.radix_cache import RadixPrefixCache, shared_prefix_tokens
from repro.llm.tasks import TaskEngine, TaskOutput, route_task
from repro.llm.tokenizer import Tokenizer

__all__ = [
    "PromptFeatures",
    "extract_features",
    "BlockPrefixCache",
    "CacheStats",
    "CachePartition",
    "CachePartitions",
    "RadixPrefixCache",
    "shared_prefix_tokens",
    "BatchLatency",
    "LatencyBreakdown",
    "estimate_latency",
    "estimate_batch_latency",
    "GenMicroBatcher",
    "LaneModel",
    "GenerationResult",
    "Fragment",
    "PackResult",
    "pack_fragments",
    "SimulatedLLM",
    "DEFAULT_PROFILE",
    "PROFILES",
    "ModelProfile",
    "get_profile",
    "PromptCacheKey",
    "StructuredPromptCache",
    "param_hash",
    "error_rate",
    "noisy_bool",
    "TaskEngine",
    "TaskOutput",
    "route_task",
    "Tokenizer",
]
