"""The persistent run ledger: observability that survives the process.

Every Executor / ParallelBatchRunner / RefinementLoop run can open a
:class:`RunLedger` (wired through ``RuntimeOptions(ledger_dir=...)``)
that persists an inspectable ``runs/<run_id>/`` directory:

- ``manifest.json`` — run identity: model profile, options summary, the
  pipeline's operator footprint, status (``running`` until finalized —
  a crash leaves it behind as the tombstone), wall-clock bookkeeping;
- ``events.jsonl`` — the lossless tagged event stream (the same format
  as :func:`repro.runtime.tracing.export_events`), streamed as the run
  executes so ``spear top`` can tail an in-progress run;
- ``report.json`` — the :class:`~repro.obs.report.RunReport` built from
  exactly this run's events at finalization;
- ``attribution.json`` — the per-``(prompt_key, version)``
  :class:`~repro.obs.attribution.AttributionReport`;
- ``series.jsonl`` — :class:`~repro.obs.timeseries.SeriesRecorder` rows.

Finalization is crash-safe: every JSON document is written to a temp
file and atomically renamed into place, and the manifest's status flips
``running -> completed`` (or ``failed``) last, so readers never observe
a half-written run as finished.

The read side is :class:`Ledger` (``list`` / ``load`` / ``latest``)
returning :class:`LedgerRun` handles.  Namespacing ledger directories
per tenant is just choosing different roots.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from pathlib import Path
from typing import Any, Iterator

from repro.errors import SpearError
from repro.obs.attribution import AttributionReport, build_attribution
from repro.obs.report import Pricing, RunReport
from repro.obs.timeseries import SeriesRecorder
from repro.runtime.events import Event, EventLog

__all__ = ["RunLedger", "Ledger", "LedgerRun", "ledger_scope"]

#: events are flushed to disk at least this often (event count), so a
#: tailing ``spear top`` sees fresh lines without per-event fsync cost.
_FLUSH_EVERY = 64

#: exact scalar types that need no tagged encoding.  ``type() in`` (not
#: ``isinstance``) so str/int-backed enums — which must be tagged for the
#: lossless round-trip — fall through to the slow path.
_JSON_SCALARS = (str, int, float, bool, type(None))


def _atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    os.replace(tmp, path)


class RunLedger:
    """One ``runs/<run_id>/`` directory being written by a live run."""

    def __init__(self, root: str | Path, run_id: str) -> None:
        self.root = Path(root)
        self.run_id = run_id
        self.path = self.root / run_id
        self.manifest: dict[str, Any] = {}
        self._events_handle: Any = None
        self._series_handle: Any = None
        self._captured: list[Event] = []
        self._recorder: SeriesRecorder | None = None
        self._collector: Any = None
        self._log: EventLog | None = None
        self._written = 0
        self._finalized = False

    # -- creation ------------------------------------------------------------

    @classmethod
    def create(cls, root: str | Path) -> "RunLedger":
        """Allocate the next sequential run id under ``root``."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        taken = [
            int(entry.name)
            for entry in root.iterdir()
            if entry.is_dir() and entry.name.isdigit()
        ]
        next_id = (max(taken) + 1) if taken else 1
        ledger = cls(root, f"{next_id:06d}")
        ledger.path.mkdir(parents=True, exist_ok=False)
        return ledger

    # -- live write side -----------------------------------------------------

    def open(
        self,
        log: EventLog,
        *,
        manifest: dict[str, Any] | None = None,
        registry: Any = None,
        collector: Any = None,
        series_interval: float = 1.0,
    ) -> None:
        """Start persisting: subscribe to ``log``, write the manifest.

        ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
        enables time-series sampling into ``series.jsonl``; without one
        the series file is still created, just empty.  ``collector`` (the
        runner's live :class:`~repro.obs.collector.ObsCollector`, whose
        registry is used when ``registry`` is None) lets finalization
        reuse already-accrued metrics instead of replaying every event.
        """
        from repro.runtime.tracing import _encode_value

        self._encode = _encode_value
        self._collector = collector
        if registry is None and collector is not None:
            registry = collector.registry
        self.manifest = {
            "run_id": self.run_id,
            "status": "running",
            "created_at_unix": round(time.time(), 3),
            **(manifest or {}),
        }
        _atomic_write_json(self.path / "manifest.json", self.manifest)
        self._events_handle = (self.path / "events.jsonl").open(
            "w", encoding="utf-8"
        )
        self._series_handle = (self.path / "series.jsonl").open(
            "w", encoding="utf-8"
        )
        if registry is not None:
            # Driven from _on_event rather than its own subscription: one
            # subscriber dispatch per event instead of two.
            self._recorder = SeriesRecorder(
                registry, interval=series_interval, sink=self._write_series_row
            )
        self._log = log
        log.subscribe(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self._recorder is not None:
            self._recorder.on_event(event)
        self._captured.append(event)
        if (
            self._events_handle is not None
            and len(self._captured) - self._written >= _FLUSH_EVERY
        ):
            self._flush_events()

    def _flush_events(self) -> None:
        """Encode and write every captured-but-unwritten event, batched.

        Encoding is deferred to flush time and batched into one write so
        the per-event subscriber stays cheap; payloads made only of JSON
        scalars (the overwhelming majority) skip the tagged-encoding walk
        entirely — ``json.dumps`` emits the identical bytes for them.
        """
        handle = self._events_handle
        if handle is None or self._written >= len(self._captured):
            return
        batch = self._captured[self._written :]
        self._written = len(self._captured)
        encode = self._encode
        lines = []
        for event in batch:
            record = event.to_dict()
            payload = record["payload"]
            if all(type(v) in _JSON_SCALARS for v in payload.values()):
                lines.append(json.dumps(record))
            else:
                lines.append(json.dumps(encode(record)))
        handle.write("\n".join(lines) + "\n")
        handle.flush()

    def _write_series_row(self, row: dict[str, Any]) -> None:
        handle = self._series_handle
        if handle is not None:
            handle.write(json.dumps(row))
            handle.write("\n")

    def finalize(
        self,
        *,
        status: str = "completed",
        pricing: Pricing | None = None,
        extra_manifest: dict[str, Any] | None = None,
    ) -> None:
        """Detach, build report + attribution, flip the manifest status.

        Idempotent: a second call is a no-op, so a crash-handling caller
        can finalize defensively.
        """
        if self._finalized:
            return
        self._finalized = True
        log = self._log
        if log is not None:
            log.unsubscribe(self._on_event)
        if self._recorder is not None and self._captured:
            self._recorder.sample(self._captured[-1].at, "final")
        self._flush_events()
        for handle in (self._events_handle, self._series_handle):
            if handle is not None:
                handle.flush()
                handle.close()
        self._events_handle = self._series_handle = None

        # Report + attribution must cover exactly this run's events.  When
        # the runner's live collector demonstrably saw the same window
        # (its universal per-kind event counter matches the captured
        # count), its already-accrued metrics are reused; otherwise the
        # captured events are replayed into a fresh collector.
        from repro.obs.report import build_report, build_run_report

        report = None
        collector = self._collector
        if collector is not None:
            seen = collector.registry.sum_counter("spear_events_total")
            if int(seen) == len(self._captured):
                report = build_report(collector, pricing=pricing)
        if report is None:
            replay = EventLog()
            replay.extend(self._captured)
            report = build_run_report(replay, pricing=pricing)
        _atomic_write_json(self.path / "report.json", report.to_dict())
        attribution = build_attribution(self._captured, pricing=pricing)
        _atomic_write_json(self.path / "attribution.json", attribution.to_dict())

        self.manifest["status"] = status
        self.manifest["event_count"] = len(self._captured)
        self.manifest["finished_at_unix"] = round(time.time(), 3)
        if extra_manifest:
            self.manifest.update(extra_manifest)
        _atomic_write_json(self.path / "manifest.json", self.manifest)


@contextlib.contextmanager
def ledger_scope(
    options: Any,
    state: Any,
    *,
    manifest: dict[str, Any] | None = None,
    registry: Any = None,
    collector: Any = None,
) -> Iterator[RunLedger | None]:
    """Open one :class:`RunLedger` around a top-level run — reentrantly.

    The outermost runner that enters this scope for a state owns the run
    directory; nested entries (a RefinementLoop driving Executor.run per
    iteration, an Executor invoked inside a batch) see the already-open
    ledger and change nothing.  With no ``options.ledger_dir`` the scope
    is free.
    """
    ledger_dir = getattr(options, "ledger_dir", None)
    active = getattr(state, "ledger", None)
    if ledger_dir is None or active is not None:
        yield active
        return
    ledger = RunLedger.create(ledger_dir)
    ledger.open(
        state.events,
        manifest=manifest,
        registry=registry,
        collector=collector,
        series_interval=getattr(options, "series_interval", 1.0),
    )
    state.ledger = ledger
    try:
        yield ledger
    except BaseException:
        ledger.finalize(status="failed")
        raise
    else:
        ledger.finalize(status="completed")
    finally:
        state.ledger = None


class LedgerRun:
    """Read-side handle on one persisted ``runs/<run_id>/`` directory."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        manifest_path = self.path / "manifest.json"
        if not manifest_path.exists():
            raise SpearError(f"{self.path}: not a ledger run (no manifest.json)")
        self.manifest: dict[str, Any] = json.loads(
            manifest_path.read_text(encoding="utf-8")
        )

    @property
    def run_id(self) -> str:
        return str(self.manifest.get("run_id", self.path.name))

    @property
    def status(self) -> str:
        """``running`` (in progress *or* crashed), ``completed``, ``failed``."""
        return str(self.manifest.get("status", "unknown"))

    def report(self) -> RunReport:
        """The persisted :class:`RunReport` (finalized runs only)."""
        path = self.path / "report.json"
        if not path.exists():
            raise SpearError(
                f"{self.path}: no report.json (run status: {self.status})"
            )
        return RunReport.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def attribution(self) -> AttributionReport:
        """The persisted :class:`AttributionReport` (finalized runs only)."""
        path = self.path / "attribution.json"
        if not path.exists():
            raise SpearError(
                f"{self.path}: no attribution.json (run status: {self.status})"
            )
        return AttributionReport.from_dict(
            json.loads(path.read_text(encoding="utf-8"))
        )

    def events(self) -> EventLog:
        """Reload the persisted event stream (lossless round-trip)."""
        from repro.runtime.tracing import import_events

        return import_events(self.path / "events.jsonl")

    def series(self) -> list[dict[str, Any]]:
        """The recorded time-series rows, oldest first."""
        path = self.path / "series.jsonl"
        if not path.exists():
            return []
        rows: list[dict[str, Any]] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    rows.append(json.loads(line))
        return rows


class Ledger:
    """Read API over a ledger root: ``list`` / ``load`` / ``latest``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def list(self) -> list[str]:
        """Run ids under the root, oldest first."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / "manifest.json").exists()
        )

    def load(self, run_id: str) -> LedgerRun:
        """Load one run by id."""
        path = self.root / run_id
        if not path.is_dir():
            raise SpearError(
                f"{self.root}: no such run {run_id!r} "
                f"(available: {', '.join(self.list()) or 'none'})"
            )
        return LedgerRun(path)

    def latest(self) -> LedgerRun | None:
        """The most recent run, or None when the root is empty."""
        run_ids = self.list()
        return self.load(run_ids[-1]) if run_ids else None


def describe_pipeline(pipeline: Any) -> dict[str, Any]:
    """Manifest-ready identity of a pipeline: name + operator labels."""
    operators = [
        getattr(op, "label", type(op).__name__)
        for op in getattr(pipeline, "operators", [])
    ]
    return {
        "name": getattr(pipeline, "name", None),
        "operators": operators,
    }


def describe_options(options: Any) -> dict[str, Any]:
    """Manifest-ready summary of the runtime options in effect."""
    model = getattr(options, "model", None)
    profile = getattr(model, "profile", None)
    scheduler = getattr(options, "scheduler", None)
    if scheduler is None or isinstance(scheduler, bool):
        scheduler_desc: Any = scheduler
    else:
        # A SchedulerConfig (or compatible object): record the policy
        # knobs so two ledgered runs are comparable on batch formation.
        scheduler_desc = {
            "max_batch_tokens": getattr(scheduler, "max_batch_tokens", None),
            "watermark_s": getattr(scheduler, "watermark_s", None),
            "max_batch": getattr(scheduler, "max_batch", None),
        }
    priority = getattr(options, "priority", None)
    deadline = getattr(options, "deadline_s", None)
    return {
        "model_profile": getattr(profile, "name", None),
        "strict": bool(getattr(options, "strict", False)),
        "result_cache": getattr(options, "result_cache", None) is not None,
        "resilience": getattr(options, "resilience", None) is not None,
        "collector": getattr(options, "collector", None) is not None,
        "series_interval": float(getattr(options, "series_interval", 1.0)),
        "scheduler": scheduler_desc,
        # Callables (per-item attributes) are summarized, not serialized.
        "priority": (
            "<callable>"
            if callable(priority)
            else getattr(priority, "value", priority)
        ),
        "deadline_s": "<callable>" if callable(deadline) else deadline,
    }

