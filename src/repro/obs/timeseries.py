"""Time-series sampling: metrics as plottable curves, not end-of-run scalars.

A :class:`SeriesRecorder` subscribes to an execution's
:class:`~repro.runtime.events.EventLog` and snapshots every registered
counter and gauge whenever the virtual-clock timeline crosses a watermark
(every ``interval`` simulated seconds), plus a forced sample on the events
that change regime mid-run — REFINE (a prompt version just changed),
BREAKER (a circuit flipped), and BATCH (a batch window closed).  Cache
hit-rate, breaker state, queue depth, and token totals become curves the
future adaptive controller can poll, and ``spear top`` can tail.

Rows are stamped on the *virtual* clock (the event's ``at``), never the
host clock, so two runs with the same seed produce byte-identical series.

Row schema (one JSON object per line in ``series.jsonl``)::

    {"at": 12.0, "trigger": "watermark", "metrics": {"name{k=v}": 3.0, ...}}

``trigger`` is ``"start"`` for the first row, ``"watermark"`` for interval
crossings (stamped at the watermark boundary), or the forcing event kind
(``"refine"`` / ``"breaker"`` / ``"batch"``).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.runtime.events import Event, EventKind, EventLog

__all__ = ["SeriesRecorder", "FORCED_SAMPLE_KINDS"]

#: event kinds that force an immediate sample regardless of the watermark.
FORCED_SAMPLE_KINDS = frozenset(
    {EventKind.REFINE, EventKind.BREAKER, EventKind.BATCH}
)


def _sample_name(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class SeriesRecorder:
    """Samples a registry's counters/gauges along the virtual timeline.

    Args:
        registry: the :class:`~repro.obs.metrics.MetricsRegistry` to
            snapshot (usually the collector's).
        interval: simulated seconds between watermark samples.
        sink: optional callable invoked with each row as it is recorded
            (the ledger passes a JSONL writer); rows also accumulate in
            :attr:`rows` either way.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        interval: float = 1.0,
        sink: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.registry = registry
        self.interval = float(interval)
        self.sink = sink
        self.rows: list[dict[str, Any]] = []
        self._next_watermark: float | None = None
        self._lock = threading.Lock()
        # (display name, instrument) pairs cached against the registry's
        # registration version, so each sample is a plain value sweep
        # rather than a full collect-and-sort of the registry.
        self._instruments: list[tuple[str, Counter | Gauge]] = []
        self._instruments_version = -1

    # -- wiring --------------------------------------------------------------

    def attach(self, log: EventLog) -> None:
        """Subscribe to ``log``; every future event may trigger samples."""
        log.subscribe(self.on_event)

    def detach(self, log: EventLog) -> bool:
        """Unsubscribe from ``log``."""
        return log.unsubscribe(self.on_event)

    # -- sampling ------------------------------------------------------------

    def on_event(self, event: Event) -> None:
        """EventLog subscriber: advance watermarks, force regime samples."""
        with self._lock:
            if self._next_watermark is None:
                self._record(event.at, "start")
                self._next_watermark = event.at + self.interval
            else:
                # Lane-folded events may arrive with earlier timestamps
                # than the merged clock; only forward crossings sample.
                while event.at >= self._next_watermark:
                    self._record(self._next_watermark, "watermark")
                    self._next_watermark += self.interval
            if event.kind in FORCED_SAMPLE_KINDS:
                self._record(event.at, event.kind.value)

    def sample(self, at: float, trigger: str = "manual") -> dict[str, Any]:
        """Record one sample now (e.g. a final sample at finalization)."""
        with self._lock:
            return self._record(at, trigger)

    def _scan_instruments(self) -> list[tuple[str, Counter | Gauge]]:
        version = self.registry.version
        if version != self._instruments_version:
            pairs: list[tuple[str, Counter | Gauge]] = []
            for name, _kind, _help, samples in self.registry.collect():
                for labels, instrument in samples:
                    if isinstance(instrument, (Counter, Gauge)):
                        pairs.append((_sample_name(name, labels), instrument))
            self._instruments = pairs
            self._instruments_version = version
        return self._instruments

    def _record(self, at: float, trigger: str) -> dict[str, Any]:
        metrics: dict[str, float] = {}
        for display_name, instrument in self._scan_instruments():
            metrics[display_name] = round(float(instrument.value), 6)
        row = {"at": round(at, 6), "trigger": trigger, "metrics": metrics}
        self.rows.append(row)
        if self.sink is not None:
            self.sink(row)
        return row
