"""Exporters: Prometheus text exposition and the JSON run report.

``to_prometheus`` renders a :class:`MetricsRegistry` in the Prometheus
text exposition format (version 0.0.4) — ``# HELP`` / ``# TYPE`` headers,
escaped labels, and the ``_bucket``/``_sum``/``_count`` triplet for
histograms — so a scrape endpoint or ``spear stats --format prometheus``
output drops straight into any Prometheus/Grafana stack.

``write_json_report`` persists a :class:`RunReport` next to benchmark or
experiment output.
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import RunReport

__all__ = ["to_prometheus", "write_json_report"]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _escape_help(value: str) -> str:
    # HELP lines escape backslash and newline only; quotes are legal there.
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every family of ``registry`` as exposition text."""
    lines: list[str] = []
    for name, kind, help_text, samples in registry.collect():
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, instrument in samples:
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_format_number(instrument.value)}"
                )
            elif isinstance(instrument, Histogram):
                for bound, cumulative in instrument.cumulative_counts():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_number(bound)
                    lines.append(
                        f"{name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} "
                    f"{_format_number(instrument.sum)}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {instrument.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_json_report(report: RunReport, path: str | Path) -> Path:
    """Write ``report`` as pretty-printed JSON; returns the path."""
    target = Path(path)
    target.write_text(report.to_json() + "\n", encoding="utf-8")
    return target
