"""Metric primitives: counters, gauges, and fixed-bucket histograms.

The registry is the numeric half of the observability layer (the span
tree in :mod:`repro.obs.spans` is the structural half).  It follows the
Prometheus data model — families of samples distinguished by label sets —
because that is what the text exposition exporter and every downstream
dashboard expect:

- :class:`Counter` — monotonically increasing totals (events, tokens);
- :class:`Gauge` — point-in-time values, optionally *pulled* from a
  callback at read time (cache occupancy, hit rates);
- :class:`Histogram` — fixed-bucket latency/size distributions with
  p50/p95/p99 estimation by linear interpolation inside the bucket, the
  same math as PromQL's ``histogram_quantile``.

Everything is plain Python on the virtual-clock timeline: deterministic,
dependency-free, and cheap enough for the hot path.  Instruments and the
registry are thread-safe: concurrent worker lanes (the parallel batch
runner and GEN micro-batcher) update them without losing increments or
observations.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterator, Sequence

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "TOKEN_BUCKETS",
]

#: default buckets for simulated-seconds latencies (upper bounds).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0,
)

#: default buckets for token counts per call.
TOKEN_BUCKETS: tuple[float, ...] = (
    8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
)

#: a label set, normalized to a sorted tuple for hashing.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ObservabilityError(f"counter increments must be >= 0: {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value; may be backed by a pull callback."""

    __slots__ = ("_value", "_fn", "_lock")

    def __init__(self) -> None:
        self._value: float = 0.0
        self._fn: Callable[[], float] | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current value (clears any pull callback)."""
        with self._lock:
            self._value = float(value)
            self._fn = None

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the value from ``fn`` at collection time (pull-style)."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        """The current value (invoking the pull callback when set)."""
        with self._lock:
            fn = self._fn
            value = self._value
        if fn is not None:
            return float(fn())
        return value


class Histogram:
    """Fixed-bucket distribution with quantile estimation.

    ``buckets`` are the finite upper bounds; an implicit +Inf bucket
    catches the overflow.  Quantiles interpolate linearly within the
    winning bucket (overflow quantiles return the observed maximum, which
    is tighter than PromQL's "largest finite bound" convention and
    possible here because we track min/max exactly).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"bucket bounds must be strictly increasing: {bounds}"
            )
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (q in [0, 1]); 0 when empty.

        Degenerate distributions are exact, not interpolated: a
        single-sample histogram (and any all-equal sample set) returns the
        observed value for every ``q``.  Interpolated estimates are clamped
        to the observed ``[min, max]`` envelope, so quantiles are monotone
        in ``q`` and never exceed the true maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1]: {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            if self.min == self.max:
                # One sample, or every sample equal: the quantile is known
                # exactly — interpolating inside the bucket would invent
                # spread that was never observed.
                return self.min
            rank = q * self.count
            cumulative = 0
            for i, bucket_count in enumerate(self.bucket_counts):
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if i == len(self.bounds):
                        return self.max  # overflow bucket: exact max is known
                    lower = self.bounds[i - 1] if i else max(self.min, 0.0)
                    lower = min(lower, self.bounds[i])
                    upper = self.bounds[i]
                    fraction = (rank - previous) / bucket_count
                    value = lower + (upper - lower) * fraction
                    return min(max(value, self.min), self.max)
            return self.max

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        with self._lock:
            pairs: list[tuple[float, int]] = []
            running = 0
            for bound, bucket_count in zip(self.bounds, self.bucket_counts):
                running += bucket_count
                pairs.append((bound, running))
            pairs.append((math.inf, running + self.bucket_counts[-1]))
            return pairs


class MetricsRegistry:
    """Get-or-create store of metric families keyed by name + labels.

    A *family* is one metric name with one type and help string; its
    *children* are the per-label-set instruments.  Requesting the same
    (name, labels) twice returns the same instrument, so call sites stay
    declarative: ``registry.counter("spear_events_total", kind="generate")``.
    """

    def __init__(self) -> None:
        #: name -> (type, help, {label_key: instrument})
        self._families: dict[str, tuple[str, str, dict[LabelKey, object]]] = {}
        # one registry lock guards family and child creation, so two lanes
        # asking for the same (name, labels) always get the same instrument.
        self._lock = threading.RLock()
        #: bumped on every new instrument registration; instruments are
        #: never removed, so an unchanged version means an unchanged
        #: instrument set — periodic samplers key their caches on it.
        self._version = 0

    @property
    def version(self) -> int:
        """Registration version: increases iff a new instrument appeared."""
        return self._version

    def _family(
        self, name: str, kind: str, help_text: str
    ) -> dict[LabelKey, object]:
        family = self._families.get(name)
        if family is None:
            children: dict[LabelKey, object] = {}
            self._families[name] = (kind, help_text, children)
            return children
        existing_kind, existing_help, children = family
        if existing_kind != kind:
            raise ObservabilityError(
                f"metric {name!r} already registered as {existing_kind}, "
                f"not {kind}"
            )
        if help_text and not existing_help:
            self._families[name] = (kind, help_text, children)
        return children

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        """Get or create the counter ``name{labels}``."""
        with self._lock:
            children = self._family(name, "counter", help_text)
            key = _label_key(labels)
            child = children.get(key)
            if child is None:
                child = children[key] = Counter()
                self._version += 1
            return child  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        with self._lock:
            children = self._family(name, "gauge", help_text)
            key = _label_key(labels)
            child = children.get(key)
            if child is None:
                child = children[key] = Gauge()
                self._version += 1
            return child  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        with self._lock:
            children = self._family(name, "histogram", help_text)
            key = _label_key(labels)
            child = children.get(key)
            if child is None:
                child = children[key] = Histogram(buckets)
                self._version += 1
            return child  # type: ignore[return-value]

    # -- read side ----------------------------------------------------------

    def collect(
        self,
    ) -> Iterator[tuple[str, str, str, list[tuple[dict[str, str], object]]]]:
        """Yield (name, type, help, [(labels, instrument), ...]) families,
        names sorted, children sorted by label set."""
        with self._lock:
            families = {
                name: (kind, help_text, dict(children))
                for name, (kind, help_text, children) in self._families.items()
            }
        for name in sorted(families):
            kind, help_text, children = families[name]
            samples = [
                (dict(key), instrument)
                for key, instrument in sorted(children.items())
            ]
            yield name, kind, help_text, samples

    def get(self, name: str, **labels: str) -> object | None:
        """The instrument registered under (name, labels), or None."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family[2].get(_label_key(labels))

    def names(self) -> list[str]:
        """All registered family names, sorted."""
        with self._lock:
            return sorted(self._families)

    def sum_counter(self, name: str) -> float:
        """Total of a counter family across every label set (0 if absent)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            kind, _, children = family
            if kind != "counter":
                raise ObservabilityError(f"metric {name!r} is a {kind}, not a counter")
            instruments = list(children.values())
        return sum(child.value for child in instruments)  # type: ignore[attr-defined]
