"""Span-tree reconstruction from the structured event log.

Every operator application brackets its work with ``OPERATOR_START`` /
``OPERATOR_END`` events (see :meth:`repro.core.algebra.Operator.apply`),
so the flat event log already *is* a trace — this module rebuilds the
nesting.  A :class:`Span` is one operator application with its wall time
on the virtual clock, the generation calls and token counts that happened
inside it (inclusive of children), and its child spans.

The builder is streaming (one ``add`` per event), so the live collector
and the offline ``spear trace`` CLI share the same code path.  Malformed
logs degrade gracefully:

- an END with no matching open START is ignored;
- an END whose operator matches an *outer* open span closes the inner
  spans above it first (marked incomplete);
- spans still open when the log ends are closed at the last timestamp
  seen and marked incomplete (truncated logs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.runtime.events import Event, EventKind, EventLog

__all__ = [
    "Span",
    "SpanBuilder",
    "build_span_tree",
    "iter_spans",
    "top_slowest",
    "render_span_tree",
]


@dataclass
class Span:
    """One operator application reconstructed from START/END events."""

    operator: str
    start: float
    end: float | None = None
    depth: int = 0
    complete: bool = True
    children: list["Span"] = field(default_factory=list)
    #: inclusive accounting: a parent's numbers include its children's.
    gen_calls: int = 0
    prompt_tokens: int = 0
    cached_tokens: int = 0
    output_tokens: int = 0
    gen_latency: float = 0.0
    events: int = 0

    @property
    def wall(self) -> float:
        """Wall time on the virtual clock (0 for an unclosed span)."""
        if self.end is None:
            return 0.0
        return max(self.end - self.start, 0.0)

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of prompt tokens inside this span served from cache."""
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens

    def clone(self) -> "Span":
        """A structural copy of the span and its subtree.

        Every field outside ``children`` is an immutable scalar, so a
        field-by-field copy is equivalent to ``copy.deepcopy`` at a
        fraction of the cost — :meth:`SpanBuilder.snapshot` runs on the
        live path (metrics scrapes, ledger finalization).
        """
        return Span(
            operator=self.operator,
            start=self.start,
            end=self.end,
            depth=self.depth,
            complete=self.complete,
            children=[child.clone() for child in self.children],
            gen_calls=self.gen_calls,
            prompt_tokens=self.prompt_tokens,
            cached_tokens=self.cached_tokens,
            output_tokens=self.output_tokens,
            gen_latency=self.gen_latency,
            events=self.events,
        )

    def to_dict(self) -> dict:
        """Serialize the span (and its subtree) for the JSON report."""
        return {
            "operator": self.operator,
            "start": self.start,
            "end": self.end,
            "wall": self.wall,
            "complete": self.complete,
            "gen_calls": self.gen_calls,
            "prompt_tokens": self.prompt_tokens,
            "cached_tokens": self.cached_tokens,
            "output_tokens": self.output_tokens,
            "gen_latency": self.gen_latency,
            "events": self.events,
            "children": [child.to_dict() for child in self.children],
        }


class SpanBuilder:
    """Streaming reconstruction: feed events, read the finished forest."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._last_at: float = 0.0

    def add(self, event: Event) -> None:
        """Incorporate one event."""
        self._last_at = max(self._last_at, event.at)
        if event.kind is EventKind.OPERATOR_START:
            span = Span(
                operator=event.operator, start=event.at, depth=len(self._stack)
            )
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
            self._stack.append(span)
            return
        if event.kind is EventKind.OPERATOR_END:
            if not any(span.operator == event.operator for span in self._stack):
                return  # unbalanced: END with no open START
            # Close any inner spans the log never ended (interleaving /
            # truncation), then the matching span itself.
            while self._stack:
                span = self._stack.pop()
                span.end = event.at
                if span.operator == event.operator:
                    break
                span.complete = False
            return
        # Semantic event: attribute to every open span (inclusive rollup).
        for span in self._stack:
            span.events += 1
        if event.kind is EventKind.GENERATE:
            prompt = int(event.payload.get("prompt_tokens", 0) or 0)
            cached = int(event.payload.get("cached_tokens", 0) or 0)
            output = int(event.payload.get("output_tokens", 0) or 0)
            latency = float(event.payload.get("latency", 0.0) or 0.0)
            for span in self._stack:
                span.gen_calls += 1
                span.prompt_tokens += prompt
                span.cached_tokens += cached
                span.output_tokens += output
                span.gen_latency += latency

    def finish(self) -> list[Span]:
        """Close still-open spans at the last seen timestamp; return roots.

        Destructive: the builder stops tracking the open spans, so later
        ``add`` calls would start a fresh forest.  For a mid-run view
        that leaves the live stack intact, use :meth:`snapshot`.
        """
        while self._stack:
            span = self._stack.pop()
            span.end = self._last_at
            span.complete = False
        return self.roots

    def snapshot(self) -> list[Span]:
        """A finished *copy* of the forest; the live builder is untouched.

        Open spans are closed at the last seen timestamp and marked
        incomplete in the copy only — safe to call mid-run (a metrics
        scrape or live report) without breaking reconstruction of the
        events that follow.
        """
        roots = [span.clone() for span in self.roots]
        for span in iter_spans(roots):
            if span.end is None:
                span.end = self._last_at
                span.complete = False
        return roots


def build_span_tree(log: EventLog) -> list[Span]:
    """Reconstruct the span forest of a whole (possibly truncated) log."""
    builder = SpanBuilder()
    for event in log:
        builder.add(event)
    return builder.finish()


def iter_spans(roots: list[Span]) -> Iterator[Span]:
    """Depth-first iteration over a span forest."""
    stack = list(reversed(roots))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))


def top_slowest(roots: list[Span], k: int = 5) -> list[Span]:
    """The ``k`` spans with the largest wall time, slowest first."""
    return sorted(iter_spans(roots), key=lambda span: -span.wall)[:k]


def render_span_tree(roots: list[Span]) -> str:
    """Render a span forest as an indented, annotated text tree."""
    lines: list[str] = []
    for span in iter_spans(roots):
        indent = "  " * span.depth
        marker = "" if span.complete else "  [incomplete]"
        tokens = ""
        if span.gen_calls:
            tokens = (
                f"  gen={span.gen_calls}"
                f" tokens={span.prompt_tokens}p/{span.cached_tokens}c/"
                f"{span.output_tokens}o"
            )
        lines.append(
            f"{span.start:8.2f}s  {indent}{span.operator}"
            f"  ({span.wall:.2f}s){tokens}{marker}"
        )
    return "\n".join(lines)
