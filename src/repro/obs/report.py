"""The run report: one JSON-serializable summary of a whole execution.

A :class:`RunReport` is built *from* a collector's registry and span
forest — never recomputed from scratch — so the report a benchmark writes
to disk is numerically identical to the in-process metrics by
construction.  It rolls up:

- per-operator-kind invocation counts and wall-time quantiles;
- per-prompt generation counts, latency quantiles, token totals, cache
  hit ratios, and estimated dollar cost;
- run totals (events, calls, tokens, simulated seconds, cost);
- the top-k slowest spans;
- cache statistics from the model layer, when a model was attached.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.obs.collector import ObsCollector
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.spans import top_slowest
from repro.runtime.events import EventLog

__all__ = ["Pricing", "RunReport", "build_report", "build_run_report"]


@dataclass(frozen=True)
class Pricing:
    """USD per 1M tokens, by token class.

    Defaults are an order-of-magnitude stand-in for small hosted models
    (the simulation has no real billing); pass your own for real costing.
    Cached prompt tokens are billed at a discount, as on every major API.
    """

    prompt_usd_per_1m: float = 0.60
    cached_usd_per_1m: float = 0.06
    output_usd_per_1m: float = 2.40

    def cost(self, prompt: float, cached: float, output: float) -> float:
        """Dollar cost of one token triple (cached ⊆ prompt)."""
        uncached = max(prompt - cached, 0.0)
        return (
            uncached * self.prompt_usd_per_1m
            + cached * self.cached_usd_per_1m
            + output * self.output_usd_per_1m
        ) / 1_000_000


def _hist_summary(hist: Histogram | None) -> dict[str, float]:
    if hist is None or hist.count == 0:
        return {"count": 0, "total": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "count": hist.count,
        "total": round(hist.sum, 6),
        "mean": round(hist.mean, 6),
        "p50": round(hist.quantile(0.50), 6),
        "p95": round(hist.quantile(0.95), 6),
        "p99": round(hist.quantile(0.99), 6),
    }


@dataclass
class RunReport:
    """Aggregated view of one run; ``to_dict``/``to_json`` for export."""

    operators: dict[str, dict[str, Any]] = field(default_factory=dict)
    generation: dict[str, dict[str, Any]] = field(default_factory=dict)
    model: dict[str, dict[str, Any]] = field(default_factory=dict)
    batches: dict[str, dict[str, Any]] = field(default_factory=dict)
    scheduler: dict[str, Any] = field(default_factory=dict)
    prefix_cache: dict[str, Any] = field(default_factory=dict)
    totals: dict[str, Any] = field(default_factory=dict)
    cache: dict[str, Any] = field(default_factory=dict)
    result_cache: dict[str, Any] = field(default_factory=dict)
    resilience: dict[str, Any] = field(default_factory=dict)
    slowest_spans: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, stable key order, JSON-ready."""
        return {
            "operators": self.operators,
            "generation": self.generation,
            "model": self.model,
            "batches": self.batches,
            "scheduler": self.scheduler,
            "prefix_cache": self.prefix_cache,
            "totals": self.totals,
            "cache": self.cache,
            "result_cache": self.result_cache,
            "resilience": self.resilience,
            "slowest_spans": self.slowest_spans,
        }

    def to_json(self, *, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output (ledger reload).

        Unknown keys are ignored so newer ledgers still load under older
        readers; a reloaded report renders byte-identical ``spear stats``
        text to the in-process original.
        """
        return cls(
            operators=dict(data.get("operators", {})),
            generation=dict(data.get("generation", {})),
            model=dict(data.get("model", {})),
            batches=dict(data.get("batches", {})),
            scheduler=dict(data.get("scheduler", {})),
            prefix_cache=dict(data.get("prefix_cache", {})),
            totals=dict(data.get("totals", {})),
            cache=dict(data.get("cache", {})),
            result_cache=dict(data.get("result_cache", {})),
            resilience=dict(data.get("resilience", {})),
            slowest_spans=list(data.get("slowest_spans", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Rebuild a report from a :meth:`to_json` document."""
        return cls.from_dict(json.loads(text))


def _family_children(registry, name: str) -> list[tuple[dict[str, str], Any]]:
    for family_name, _, _, samples in registry.collect():
        if family_name == name:
            return samples
    return []


def _counter_by_label(registry, name: str, label: str) -> dict[str, float]:
    return {
        labels.get(label, "?"): child.value
        for labels, child in _family_children(registry, name)
        if isinstance(child, Counter)
    }


def build_report(
    collector: ObsCollector,
    *,
    top_k: int = 5,
    pricing: Pricing | None = None,
) -> RunReport:
    """Roll a collector's registry + spans up into a :class:`RunReport`."""
    pricing = pricing if pricing is not None else Pricing()
    registry = collector.registry
    report = RunReport()

    # -- per-operator-kind rollups -----------------------------------------
    invocations = _counter_by_label(
        registry, "spear_operator_invocations_total", "operator"
    )
    errors = _counter_by_label(registry, "spear_operator_errors_total", "operator")
    wall_hists = {
        labels.get("operator", "?"): child
        for labels, child in _family_children(registry, "spear_operator_wall_seconds")
        if isinstance(child, Histogram)
    }
    for op in sorted(set(invocations) | set(wall_hists)):
        report.operators[op] = {
            "invocations": int(invocations.get(op, 0)),
            "errors": int(errors.get(op, 0)),
            "wall_seconds": _hist_summary(wall_hists.get(op)),
        }

    # -- per-prompt generation rollups -------------------------------------
    calls = _counter_by_label(registry, "spear_gen_calls_total", "prompt")
    prompt_tokens = _counter_by_label(registry, "spear_prompt_tokens_total", "prompt")
    cached_tokens = _counter_by_label(registry, "spear_cached_tokens_total", "prompt")
    output_tokens = _counter_by_label(registry, "spear_output_tokens_total", "prompt")
    latency_hists = {
        labels.get("prompt", "?"): child
        for labels, child in _family_children(registry, "spear_gen_latency_seconds")
        if isinstance(child, Histogram)
    }
    for prompt in sorted(set(calls) | set(latency_hists)):
        p_tok = prompt_tokens.get(prompt, 0.0)
        c_tok = cached_tokens.get(prompt, 0.0)
        o_tok = output_tokens.get(prompt, 0.0)
        report.generation[prompt] = {
            "calls": int(calls.get(prompt, 0)),
            "latency_seconds": _hist_summary(latency_hists.get(prompt)),
            "prompt_tokens": int(p_tok),
            "cached_tokens": int(c_tok),
            "output_tokens": int(o_tok),
            "cache_hit_ratio": round(c_tok / p_tok, 4) if p_tok else 0.0,
            "cost_usd": round(pricing.cost(p_tok, c_tok, o_tok), 6),
        }

    # -- model layer (listener counters + pull gauges) ---------------------
    model_calls = _counter_by_label(registry, "spear_model_gen_calls_total", "model")
    model_prompt = _counter_by_label(registry, "spear_model_prompt_tokens_total", "model")
    model_cached = _counter_by_label(registry, "spear_model_cached_tokens_total", "model")
    model_output = _counter_by_label(registry, "spear_model_output_tokens_total", "model")
    model_latency = {
        labels.get("model", "?"): child
        for labels, child in _family_children(
            registry, "spear_model_gen_latency_seconds"
        )
        if isinstance(child, Histogram)
    }
    for name in sorted(set(model_calls) | set(model_latency)):
        p_tok = model_prompt.get(name, 0.0)
        c_tok = model_cached.get(name, 0.0)
        o_tok = model_output.get(name, 0.0)
        report.model[name] = {
            "calls": int(model_calls.get(name, 0)),
            "latency_seconds": _hist_summary(model_latency.get(name)),
            "prompt_tokens": int(p_tok),
            "cached_tokens": int(c_tok),
            "output_tokens": int(o_tok),
            "cache_hit_ratio": round(c_tok / p_tok, 4) if p_tok else 0.0,
            "cost_usd": round(pricing.cost(p_tok, c_tok, o_tok), 6),
        }

    # -- batch runs (sequential / parallel runners) ------------------------
    batch_runs = _counter_by_label(registry, "spear_batch_runs_total", "mode")
    batch_items = _counter_by_label(registry, "spear_batch_items_total", "mode")
    batch_failures = _counter_by_label(
        registry, "spear_batch_failures_total", "mode"
    )
    batch_elapsed = {
        labels.get("mode", "?"): child
        for labels, child in _family_children(
            registry, "spear_batch_elapsed_seconds"
        )
        if isinstance(child, Histogram)
    }
    batch_throughput = {
        labels.get("mode", "?"): child
        for labels, child in _family_children(registry, "spear_batch_throughput")
        if isinstance(child, Gauge)
    }
    batch_workers = {
        labels.get("mode", "?"): child
        for labels, child in _family_children(registry, "spear_batch_workers")
        if isinstance(child, Gauge)
    }
    for mode in sorted(set(batch_runs) | set(batch_elapsed)):
        throughput = batch_throughput.get(mode)
        workers = batch_workers.get(mode)
        report.batches[mode] = {
            "runs": int(batch_runs.get(mode, 0)),
            "items": int(batch_items.get(mode, 0)),
            "failures": int(batch_failures.get(mode, 0)),
            "elapsed_seconds": _hist_summary(batch_elapsed.get(mode)),
            "throughput": round(throughput.value, 4) if throughput else 0.0,
            "workers": int(workers.value) if workers else 1,
        }

    # -- continuous-batching scheduler ---------------------------------------
    sched_steps = registry.sum_counter("spear_sched_steps_total")
    if sched_steps:
        step_size = next(
            (
                child
                for _labels, child in _family_children(
                    registry, "spear_sched_step_size"
                )
                if isinstance(child, Histogram)
            ),
            None,
        )
        step_tokens = next(
            (
                child
                for _labels, child in _family_children(
                    registry, "spear_sched_step_tokens"
                )
                if isinstance(child, Histogram)
            ),
            None,
        )
        queue_depth = next(
            (
                child.value
                for _labels, child in _family_children(
                    registry, "spear_sched_queue_depth"
                )
                if isinstance(child, Gauge)
            ),
            0.0,
        )
        waits = {
            labels.get("class", "?"): child
            for labels, child in _family_children(
                registry, "spear_sched_wait_seconds"
            )
            if isinstance(child, Histogram)
        }
        report.scheduler = {
            "steps": int(sched_steps),
            "preemptions": int(
                registry.sum_counter("spear_sched_preemptions_total")
            ),
            "forced": int(registry.sum_counter("spear_sched_forced_total")),
            "queue_depth": round(queue_depth, 6),
            "step_size": _hist_summary(step_size),
            "step_tokens": _hist_summary(step_tokens),
            "wait_seconds": {
                name: _hist_summary(hist) for name, hist in sorted(waits.items())
            },
        }

    # -- prefix cache (radix tier + intra-step trunk dedup) ------------------
    dedup_total = registry.sum_counter("spear_prefix_dedup_tokens_total")
    step_dedup = next(
        (
            child
            for _labels, child in _family_children(
                registry, "spear_prefix_step_dedup_tokens"
            )
            if isinstance(child, Histogram)
        ),
        None,
    )
    groups_hist = next(
        (
            child
            for _labels, child in _family_children(
                registry, "spear_prefix_groups_per_step"
            )
            if isinstance(child, Histogram)
        ),
        None,
    )
    radix_gauges: dict[str, dict[str, float]] = {}
    for gauge_name in (
        "spear_prefix_cache_nodes",
        "spear_prefix_cache_leaves",
        "spear_prefix_cache_pinned_blocks",
    ):
        for labels, child in _family_children(registry, gauge_name):
            if isinstance(child, Gauge):
                bucket = radix_gauges.setdefault(labels.get("model", "?"), {})
                bucket[
                    gauge_name.removeprefix("spear_prefix_cache_")
                ] = round(child.value, 6)
    if dedup_total or step_dedup is not None or radix_gauges:
        report.prefix_cache = {
            "dedup_tokens_total": int(dedup_total),
            "step_dedup_tokens": _hist_summary(step_dedup),
            "groups_per_step": _hist_summary(groups_hist),
            "radix": radix_gauges,
        }

    # -- cache gauges -------------------------------------------------------
    for gauge_name in (
        "spear_kv_cache_blocks",
        "spear_kv_cache_hit_rate",
        "spear_kv_cache_evictions_total",
        "spear_prompt_cache_entries",
        "spear_prompt_cache_hit_rate",
    ):
        for labels, child in _family_children(registry, gauge_name):
            if isinstance(child, Gauge):
                bucket = report.cache.setdefault(labels.get("model", "?"), {})
                bucket[gauge_name.removeprefix("spear_")] = round(child.value, 6)

    # -- operator result cache ---------------------------------------------
    rc_hits = _counter_by_label(
        registry, "spear_result_cache_hits_total", "operator"
    )
    rc_saved = _counter_by_label(
        registry, "spear_result_cache_saved_seconds_total", "operator"
    )
    if rc_hits or rc_saved:
        report.result_cache["by_operator"] = {
            op: {
                "hits": int(rc_hits.get(op, 0)),
                "saved_seconds": round(rc_saved.get(op, 0.0), 6),
            }
            for op in sorted(set(rc_hits) | set(rc_saved))
        }
    for gauge_name in (
        "spear_result_cache_entries",
        "spear_result_cache_hit_rate",
        "spear_result_cache_invalidations_total",
        "spear_result_cache_evictions_total",
    ):
        for _labels, child in _family_children(registry, gauge_name):
            if isinstance(child, Gauge):
                report.result_cache[
                    gauge_name.removeprefix("spear_result_cache_")
                ] = round(child.value, 6)

    # -- resilience (faults / retries / breakers / degraded serving) --------
    faults = _counter_by_label(registry, "spear_faults_injected_total", "kind")
    failures = _counter_by_label(registry, "spear_model_failures_total", "model")
    retries = _counter_by_label(registry, "spear_retries_total", "model")
    degraded = _counter_by_label(registry, "spear_degraded_runs_total", "target")
    backoff = {
        labels.get("model", "?"): child
        for labels, child in _family_children(
            registry, "spear_retry_backoff_seconds"
        )
        if isinstance(child, Histogram)
    }
    breaker_state = {
        labels.get("model", "?"): child.value
        for labels, child in _family_children(registry, "spear_breaker_state")
        if isinstance(child, Gauge)
    }
    breaker_transitions = _counter_by_label(
        registry, "spear_breaker_transitions_total", "model"
    )
    if faults or failures or retries or degraded or breaker_state:
        state_names = {0.0: "closed", 1.0: "half_open", 2.0: "open"}
        report.resilience = {
            "faults_injected": {
                kind: int(count) for kind, count in sorted(faults.items())
            },
            "faults_injected_total": int(sum(faults.values())),
            "failures_by_model": {
                name: int(count) for name, count in sorted(failures.items())
            },
            "retries_by_model": {
                name: int(count) for name, count in sorted(retries.items())
            },
            "retries_total": int(sum(retries.values())),
            "backoff_seconds": {
                name: _hist_summary(hist)
                for name, hist in sorted(backoff.items())
            },
            "breakers": {
                name: {
                    "state": state_names.get(value, "?"),
                    "transitions": int(breaker_transitions.get(name, 0)),
                }
                for name, value in sorted(breaker_state.items())
            },
            "degraded_runs": {
                target: int(count) for target, count in sorted(degraded.items())
            },
            "degraded_runs_total": int(sum(degraded.values())),
        }

    # -- totals -------------------------------------------------------------
    total_prompt = registry.sum_counter("spear_prompt_tokens_total")
    total_cached = registry.sum_counter("spear_cached_tokens_total")
    total_output = registry.sum_counter("spear_output_tokens_total")
    report.totals = {
        "events": int(registry.sum_counter("spear_events_total")),
        "operator_invocations": int(
            registry.sum_counter("spear_operator_invocations_total")
        ),
        "gen_calls": int(registry.sum_counter("spear_gen_calls_total")),
        "prompt_tokens": int(total_prompt),
        "cached_tokens": int(total_cached),
        "output_tokens": int(total_output),
        "cache_hit_ratio": (
            round(total_cached / total_prompt, 4) if total_prompt else 0.0
        ),
        "cost_usd": round(
            pricing.cost(total_prompt, total_cached, total_output), 6
        ),
        "model_gen_calls": int(
            registry.sum_counter("spear_model_gen_calls_total")
        ),
        "errors": int(registry.sum_counter("spear_operator_errors_total")),
        "result_cache_hits": int(
            registry.sum_counter("spear_result_cache_hits_total")
        ),
        "result_cache_saved_seconds": round(
            registry.sum_counter("spear_result_cache_saved_seconds_total"), 6
        ),
    }

    # -- slowest spans ------------------------------------------------------
    # A snapshot, not finish(): reports may be generated mid-run (live
    # scrape), and closing the live span stack would orphan every event
    # that follows.
    roots = collector.spans.snapshot()
    for span in top_slowest(roots, top_k):
        report.slowest_spans.append(
            {
                "operator": span.operator,
                "start": round(span.start, 4),
                "wall": round(span.wall, 4),
                "gen_calls": span.gen_calls,
                "prompt_tokens": span.prompt_tokens,
                "cached_tokens": span.cached_tokens,
                "output_tokens": span.output_tokens,
                "complete": span.complete,
            }
        )
    return report


def build_run_report(
    log: EventLog,
    *,
    top_k: int = 5,
    pricing: Pricing | None = None,
    model: Any = None,
) -> RunReport:
    """Offline path: replay a (possibly imported) event log into a report.

    Pass ``model`` to also fold in model-layer cache statistics, as the
    live :class:`ObsCollector` would.
    """
    collector = ObsCollector()
    if model is not None:
        collector.attach_model(model)
    collector.replay(log)
    return build_report(collector, top_k=top_k, pricing=pricing)
