"""The live collector: event stream in, metrics + spans out.

:class:`ObsCollector` is the glue of the observability layer.  It hangs
off :meth:`EventLog.subscribe` — so metrics accrue during execution with
zero changes to operator code — and optionally off the model layer's
generation listener and cache snapshots for the numbers that never reach
the event log (cache occupancy, eviction counts, model totals).

The same collector replays exported JSONL logs offline (``spear stats`` /
``spear trace``), so live serving and post-hoc analysis agree by
construction.

Metric catalog (see docs/observability.md for semantics):

=============================================  =========  ==============
name                                           type       labels
=============================================  =========  ==============
spear_events_total                             counter    kind
spear_operator_invocations_total               counter    operator
spear_operator_errors_total                    counter    operator
spear_operator_wall_seconds                    histogram  operator
spear_gen_calls_total                          counter    prompt
spear_gen_latency_seconds                      histogram  prompt
spear_prompt_tokens_total                      counter    prompt
spear_cached_tokens_total                      counter    prompt
spear_output_tokens_total                      counter    prompt
spear_plans_total                              counter    —
spear_plan_refiners_chosen_total               counter    —
spear_plan_refiners_skipped_total              counter    —
spear_shadow_phases_total                      counter    phase
spear_batch_runs_total                         counter    mode
spear_batch_items_total                        counter    mode
spear_batch_failures_total                     counter    mode
spear_batch_elapsed_seconds                    histogram  mode
spear_batch_throughput                         gauge      mode
spear_batch_workers                            gauge      mode
spear_gen_queue_depth                          gauge      model
spear_microbatch_flushes_total                 counter    model
spear_microbatch_size                          histogram  model
spear_microbatch_wall_seconds                  histogram  model
spear_sched_queue_depth                        gauge      model
spear_sched_steps_total                        counter    —
spear_sched_step_size                          histogram  —
spear_sched_step_tokens                        histogram  —
spear_sched_preemptions_total                  counter    —
spear_sched_forced_total                       counter    —
spear_sched_wait_seconds                       histogram  class
spear_prefix_dedup_tokens_total                counter    —
spear_prefix_step_dedup_tokens                 histogram  —
spear_prefix_groups_per_step                   histogram  —
spear_prefix_last_step_dedup_tokens            gauge      —
spear_prefix_cache_nodes                       gauge      model
spear_prefix_cache_leaves                      gauge      model
spear_prefix_cache_pinned_blocks               gauge      model
spear_lane_elapsed_seconds                     histogram  —
spear_model_gen_calls_total                    counter    model
spear_model_gen_latency_seconds                histogram  model
spear_model_prompt_tokens_total                counter    model
spear_model_cached_tokens_total                counter    model
spear_model_output_tokens_total                counter    model
spear_model_calls                              gauge      model
spear_model_latency_seconds_total              gauge      model
spear_kv_cache_blocks                          gauge      model
spear_kv_cache_hit_rate                        gauge      model
spear_kv_cache_evictions_total                 gauge      model
spear_prompt_cache_entries                     gauge      model
spear_prompt_cache_hit_rate                    gauge      model
spear_result_cache_hits_total                  counter    operator
spear_result_cache_saved_seconds_total         counter    operator
spear_result_cache_entries                     gauge      —
spear_result_cache_hit_rate                    gauge      —
spear_result_cache_invalidations_total         gauge      —
spear_result_cache_evictions_total             gauge      —
spear_faults_injected_total                    counter    kind
spear_model_failures_total                     counter    model
spear_retries_total                            counter    model
spear_retry_attempts                           histogram  model
spear_retry_backoff_seconds                    histogram  model
spear_breaker_state                            gauge      model
spear_breaker_transitions_total                counter    model
spear_degraded_runs_total                      counter    target
spear_serve_requests_total                     counter    tenant, status
spear_serve_latency_seconds                    histogram  tenant
spear_serve_queue_wait_seconds                 histogram  tenant
spear_serve_shed_total                         counter    tenant
spear_serve_queue_depth                        gauge      tenant
=============================================  =========  ==============

Operator labels are *kinds* (``GEN``, ``CHECK``, …) rather than full
labels like ``GEN["answer"]`` — full labels live on spans; metric
cardinality stays bounded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.spans import Span, SpanBuilder
from repro.runtime.events import Event, EventKind, EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.model import GenerationResult

__all__ = ["ObsCollector", "operator_kind"]

#: numeric encoding of breaker states for the ``spear_breaker_state`` gauge.
_BREAKER_STATE_VALUES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


def operator_kind(label: str) -> str:
    """Collapse an operator label to its kind: ``GEN["answer"]`` → ``GEN``."""
    bracket = label.find("[")
    return label[:bracket] if bracket > 0 else label


class ObsCollector:
    """Subscribes to event logs / models and accrues metrics and spans."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = SpanBuilder()
        self._open_starts: dict[str, list[float]] = {}
        self._subscribed: set[int] = set()
        self._attached_models: set[int] = set()
        self._attached_result_caches: set[int] = set()

    # -- wiring -------------------------------------------------------------

    def subscribe_to(self, log: EventLog) -> None:
        """Attach to ``log`` so every future event updates the metrics."""
        if id(log) in self._subscribed:
            return
        self._subscribed.add(id(log))
        log.subscribe(self.on_event)

    def unsubscribe_from(self, log: EventLog) -> None:
        """Detach from ``log``."""
        if log.unsubscribe(self.on_event):
            self._subscribed.discard(id(log))

    def replay(self, log: EventLog) -> None:
        """Feed an already-recorded log through the collector (offline path)."""
        for event in log:
            self.on_event(event)

    def attach_model(self, model: Any, name: str | None = None) -> None:
        """Instrument a :class:`SimulatedLLM`-shaped model.

        Registers pull gauges over the model's aggregate accounting and
        its kv/prompt cache snapshots; if the model supports generation
        listeners, per-call latency/token histograms accrue there too
        (useful for direct ``model.generate`` callers that bypass GEN).

        Idempotent per model instance: attaching the same model again is
        a no-op, so two executors sharing one collector + model do not
        double-count ``spear_model_*`` metrics.
        """
        if id(model) in self._attached_models:
            return
        self._attached_models.add(id(model))
        label = name or getattr(
            getattr(model, "profile", None), "name", type(model).__name__
        )
        gauges = self.registry
        gauges.gauge(
            "spear_model_calls", "Generation calls served by the model.",
            model=label,
        ).set_function(lambda: float(model.calls))
        gauges.gauge(
            "spear_model_latency_seconds_total",
            "Total simulated generation latency.", model=label,
        ).set_function(lambda: float(model.total_latency))
        kv = getattr(model, "kv_cache", None)
        if kv is not None:
            gauges.gauge(
                "spear_kv_cache_blocks", "Blocks resident in the prefix cache.",
                model=label,
            ).set_function(lambda: float(len(kv)))
            gauges.gauge(
                "spear_kv_cache_hit_rate",
                "Token-level prefix-cache hit rate.", model=label,
            ).set_function(lambda: kv.stats.hit_rate)
            gauges.gauge(
                "spear_kv_cache_evictions_total",
                "Blocks evicted from the prefix cache.", model=label,
            ).set_function(lambda: float(kv.stats.evictions))
            if hasattr(kv, "pin"):
                # Radix-tree tier only: structural gauges over the tree.
                gauges.gauge(
                    "spear_prefix_cache_nodes",
                    "Token-block nodes resident in the radix prefix tree.",
                    model=label,
                ).set_function(lambda: float(kv.snapshot()["nodes"]))
                gauges.gauge(
                    "spear_prefix_cache_leaves",
                    "Leaf nodes of the radix prefix tree "
                    "(the eviction frontier).",
                    model=label,
                ).set_function(lambda: float(kv.snapshot()["leaves"]))
                gauges.gauge(
                    "spear_prefix_cache_pinned_blocks",
                    "Radix nodes pinned against eviction by the scheduler.",
                    model=label,
                ).set_function(lambda: float(kv.snapshot()["pinned_blocks"]))
        prompt_cache = getattr(model, "prompt_cache", None)
        if prompt_cache is not None:
            gauges.gauge(
                "spear_prompt_cache_entries",
                "Entries in the structured prompt cache.", model=label,
            ).set_function(lambda: float(len(prompt_cache)))
            gauges.gauge(
                "spear_prompt_cache_hit_rate",
                "Structured prompt cache hit rate.", model=label,
            ).set_function(lambda: prompt_cache.hit_rate)
        if hasattr(model, "add_listener"):
            model.add_listener(
                lambda result: self.on_generation(result, model=label)
            )

    def attach_result_cache(self, cache: Any) -> None:
        """Register pull gauges over an operator-level result cache.

        Complements the event-driven ``spear_result_cache_hits_total``
        counter (from CACHE_HIT events) with the cache's own aggregate
        accounting: occupancy, lifetime hit rate, invalidation and
        eviction counts.  Idempotent per cache instance.
        """
        if id(cache) in self._attached_result_caches:
            return
        self._attached_result_caches.add(id(cache))
        gauges = self.registry
        gauges.gauge(
            "spear_result_cache_entries",
            "Entries resident in the operator result cache.",
        ).set_function(lambda: cache.snapshot()["entries"])
        gauges.gauge(
            "spear_result_cache_hit_rate",
            "Lifetime hit rate of the operator result cache.",
        ).set_function(lambda: cache.snapshot()["hit_rate"])
        gauges.gauge(
            "spear_result_cache_invalidations_total",
            "Entries invalidated by prompt refinements.",
        ).set_function(lambda: cache.snapshot()["invalidations"])
        gauges.gauge(
            "spear_result_cache_evictions_total",
            "Entries evicted by the result cache's LRU policy.",
        ).set_function(lambda: cache.snapshot()["evictions"])

    # -- event handling -----------------------------------------------------

    def on_event(self, event: Event) -> None:
        """The :meth:`EventLog.subscribe` callback."""
        self.spans.add(event)
        self.registry.counter(
            "spear_events_total", "Events observed, by kind.",
            kind=event.kind.value,
        ).inc()
        kind = event.kind
        if kind is EventKind.OPERATOR_START:
            op = operator_kind(event.operator)
            self.registry.counter(
                "spear_operator_invocations_total",
                "Operator applications started.", operator=op,
            ).inc()
            self._open_starts.setdefault(event.operator, []).append(event.at)
        elif kind is EventKind.OPERATOR_END:
            starts = self._open_starts.get(event.operator)
            if starts:
                wall = max(event.at - starts.pop(), 0.0)
                self.registry.histogram(
                    "spear_operator_wall_seconds",
                    "Wall time per operator application (virtual clock).",
                    buckets=LATENCY_BUCKETS,
                    operator=operator_kind(event.operator),
                ).observe(wall)
        elif kind is EventKind.GENERATE:
            prompt = str(event.payload.get("prompt_key", "?"))
            self.registry.counter(
                "spear_gen_calls_total", "GEN operator calls.", prompt=prompt
            ).inc()
            self.registry.histogram(
                "spear_gen_latency_seconds",
                "Simulated latency per generation call.",
                buckets=LATENCY_BUCKETS,
                prompt=prompt,
            ).observe(float(event.payload.get("latency", 0.0) or 0.0))
            for signal, metric in (
                ("prompt_tokens", "spear_prompt_tokens_total"),
                ("cached_tokens", "spear_cached_tokens_total"),
                ("output_tokens", "spear_output_tokens_total"),
            ):
                value = event.payload.get(signal)
                if value is not None:
                    self.registry.counter(
                        metric, f"Sum of {signal} across GEN calls.",
                        prompt=prompt,
                    ).inc(float(value))
        elif kind is EventKind.CACHE_HIT:
            op = operator_kind(event.operator)
            self.registry.counter(
                "spear_result_cache_hits_total",
                "Operator applications served from the result cache.",
                operator=op,
            ).inc()
            self.registry.counter(
                "spear_result_cache_saved_seconds_total",
                "Simulated seconds saved by result-cache hits.",
                operator=op,
            ).inc(float(event.payload.get("saved_seconds", 0.0) or 0.0))
        elif kind is EventKind.ERROR:
            self.registry.counter(
                "spear_operator_errors_total", "Operator errors.",
                operator=operator_kind(event.operator),
            ).inc()
        elif kind is EventKind.FAULT:
            model = str(event.payload.get("model", "?"))
            self.registry.counter(
                "spear_model_failures_total",
                "Generation attempts that failed, by model.", model=model,
            ).inc()
            if event.payload.get("injected"):
                self.registry.counter(
                    "spear_faults_injected_total",
                    "Injected faults observed, by fault kind.",
                    kind=str(event.payload.get("kind", "?")),
                ).inc()
        elif kind is EventKind.RETRY:
            model = str(event.payload.get("model", "?"))
            self.registry.counter(
                "spear_retries_total",
                "Retries performed by resilience policies.", model=model,
            ).inc()
            self.registry.histogram(
                "spear_retry_attempts",
                "Retry ordinal per retried call (1 = first retry).",
                buckets=(1.0, 2.0, 3.0, 5.0, 8.0),
                model=model,
            ).observe(float(event.payload.get("attempt", 1) or 1))
            self.registry.histogram(
                "spear_retry_backoff_seconds",
                "Backoff delay charged before each retry.",
                buckets=LATENCY_BUCKETS,
                model=model,
            ).observe(float(event.payload.get("delay", 0.0) or 0.0))
        elif kind is EventKind.BREAKER:
            model = str(event.payload.get("model", "?"))
            state_name = str(event.payload.get("state", "?"))
            self.registry.gauge(
                "spear_breaker_state",
                "Circuit-breaker state (0 closed, 1 half-open, 2 open).",
                model=model,
            ).set(_BREAKER_STATE_VALUES.get(state_name, -1.0))
            if event.payload.get("action") in ("tripped", "closed"):
                self.registry.counter(
                    "spear_breaker_transitions_total",
                    "Circuit-breaker state transitions.", model=model,
                ).inc()
        elif kind is EventKind.FALLBACK:
            self.registry.counter(
                "spear_degraded_runs_total",
                "Generations served by a degraded fallback target.",
                target=str(event.payload.get("target", "?")),
            ).inc()
        elif kind is EventKind.PLAN:
            self.registry.counter(
                "spear_plans_total", "Refinement plans produced."
            ).inc()
            self.registry.counter(
                "spear_plan_refiners_chosen_total",
                "Refiners chosen across all plans.",
            ).inc(len(event.payload.get("chosen", ()) or ()))
            self.registry.counter(
                "spear_plan_refiners_skipped_total",
                "Refiners skipped across all plans.",
            ).inc(len(event.payload.get("skipped", ()) or ()))
        elif kind is EventKind.SHADOW:
            self.registry.counter(
                "spear_shadow_phases_total", "Shadow execution phase markers.",
                phase=str(event.payload.get("phase", "?")),
            ).inc()
        elif kind is EventKind.BATCH:
            mode = str(event.payload.get("mode", "?"))
            self.registry.counter(
                "spear_batch_runs_total", "Batch runs completed, by mode.",
                mode=mode,
            ).inc()
            self.registry.counter(
                "spear_batch_items_total", "Items processed by batch runs.",
                mode=mode,
            ).inc(float(event.payload.get("items", 0) or 0))
            self.registry.counter(
                "spear_batch_failures_total",
                "Item failures collected by batch runs.", mode=mode,
            ).inc(float(event.payload.get("failures", 0) or 0))
            self.registry.histogram(
                "spear_batch_elapsed_seconds",
                "Simulated elapsed time per batch run.",
                buckets=LATENCY_BUCKETS,
                mode=mode,
            ).observe(float(event.payload.get("elapsed", 0.0) or 0.0))
            self.registry.gauge(
                "spear_batch_throughput",
                "Items per simulated second of the last batch run.",
                mode=mode,
            ).set(float(event.payload.get("throughput", 0.0) or 0.0))
            self.registry.gauge(
                "spear_batch_workers",
                "Lanes used by the last batch run.", mode=mode,
            ).set(float(event.payload.get("workers", 1) or 1))
        elif kind is EventKind.SCHED:
            # One event per continuous-batching engine step (folded into
            # the base log after the run); this is the sole source of the
            # spear_sched_* counters/histograms — the engine itself only
            # sets gauges, so sharing one registry never double-counts.
            payload = event.payload
            self.registry.counter(
                "spear_sched_steps_total",
                "Continuous-batching engine steps executed.",
            ).inc()
            self.registry.histogram(
                "spear_sched_step_size",
                "Generation calls admitted per engine step.",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            ).observe(float(payload.get("size", 0) or 0))
            self.registry.histogram(
                "spear_sched_step_tokens",
                "Prompt tokens admitted per engine step.",
                buckets=(64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0),
            ).observe(float(payload.get("tokens", 0) or 0))
            self.registry.counter(
                "spear_sched_preemptions_total",
                "Admissions that jumped ahead of an older, "
                "lower-priority queued call.",
            ).inc(float(payload.get("preemptions", 0) or 0))
            self.registry.counter(
                "spear_sched_forced_total",
                "Admissions forced by the timeout watermark.",
            ).inc(float(payload.get("forced", 0) or 0))
            dedup = float(payload.get("dedup_tokens", 0) or 0)
            self.registry.counter(
                "spear_prefix_dedup_tokens_total",
                "Trunk tokens prefilled once per step instead of once "
                "per request (intra-step prefix dedup).",
            ).inc(dedup)
            self.registry.histogram(
                "spear_prefix_step_dedup_tokens",
                "Deduplicated trunk tokens per engine step.",
                buckets=(0.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0),
            ).observe(dedup)
            self.registry.gauge(
                "spear_prefix_last_step_dedup_tokens",
                "Deduplicated trunk tokens of the most recent engine step.",
            ).set(dedup)
            if payload.get("prefix_groups") is not None:
                self.registry.histogram(
                    "spear_prefix_groups_per_step",
                    "Distinct shared-trunk groups per engine step.",
                    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
                ).observe(float(payload.get("prefix_groups", 0) or 0))
            waits = payload.get("waits", ()) or ()
            classes = payload.get("classes", ()) or ()
            for wait, priority in zip(waits, classes):
                self.registry.histogram(
                    "spear_sched_wait_seconds",
                    "Queue wait per admitted call, by priority class.",
                    buckets=LATENCY_BUCKETS,
                    **{"class": str(priority)},
                ).observe(float(wait))
        elif kind is EventKind.SERVE:
            # One event per serving-layer request outcome, recorded on
            # the server's own event log (never on tenant session logs,
            # which must stay byte-identical to standalone runs).
            payload = event.payload
            tenant = str(payload.get("tenant", "?"))
            status = str(payload.get("status", "?"))
            self.registry.counter(
                "spear_serve_requests_total",
                "Serving requests completed, by tenant and outcome.",
                tenant=tenant, status=status,
            ).inc()
            if status == "shed":
                self.registry.counter(
                    "spear_serve_shed_total",
                    "Requests shed by admission control, by tenant.",
                    tenant=tenant,
                ).inc()
            else:
                self.registry.histogram(
                    "spear_serve_latency_seconds",
                    "Simulated execution time per served request.",
                    buckets=LATENCY_BUCKETS,
                    tenant=tenant,
                ).observe(float(payload.get("elapsed", 0.0) or 0.0))
                self.registry.histogram(
                    "spear_serve_queue_wait_seconds",
                    "Wall-clock admission-to-start wait per request.",
                    buckets=LATENCY_BUCKETS,
                    tenant=tenant,
                ).observe(float(payload.get("queue_wait", 0.0) or 0.0))
            if payload.get("queue_depth") is not None:
                self.registry.gauge(
                    "spear_serve_queue_depth",
                    "Tenant queue depth after this request's admission "
                    "decision.",
                    tenant=tenant,
                ).set(float(payload.get("queue_depth", 0) or 0))

    def on_generation(self, result: "GenerationResult", model: str = "?") -> None:
        """Model-layer listener: every ``generate`` call, however reached.

        These land in a separate ``spear_model_*`` metric family from the
        event-derived ``spear_gen_*`` metrics — a GEN operator call shows
        up in both layers (that is the point: the two layers cross-check
        each other), and callers that bypass the operator layer entirely
        (benchmarks, batch harnesses) still show up here.
        """
        self.registry.counter(
            "spear_model_gen_calls_total",
            "Generation calls observed at the model layer.", model=model,
        ).inc()
        self.registry.histogram(
            "spear_model_gen_latency_seconds",
            "Simulated latency per model-layer generation call.",
            buckets=LATENCY_BUCKETS,
            model=model,
        ).observe(result.latency.total)
        for value, metric in (
            (result.prompt_tokens, "spear_model_prompt_tokens_total"),
            (result.cached_tokens, "spear_model_cached_tokens_total"),
            (result.output_tokens, "spear_model_output_tokens_total"),
        ):
            self.registry.counter(
                metric, "Model-layer token totals.", model=model
            ).inc(float(value))

    # -- read side ----------------------------------------------------------

    def span_roots(self) -> list[Span]:
        """The span forest seen so far (open spans left untouched)."""
        return self.spans.roots
