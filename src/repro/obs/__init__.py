"""repro.obs — unified metrics and span tracing for SPEAR pipelines.

The observability layer turns the structured event log (paper §6) into
production-grade introspection:

- :class:`MetricsRegistry` — counters / gauges / fixed-bucket histograms;
- :class:`ObsCollector` — an :meth:`EventLog.subscribe` subscriber that
  accrues metrics and spans live, with optional model-layer attachment;
- :mod:`~repro.obs.spans` — span-tree reconstruction from
  OPERATOR_START/END pairs;
- :class:`RunReport` + exporters — JSON run reports and Prometheus text
  exposition, surfaced on the CLI as ``spear stats`` / ``spear trace``;
- :class:`RunLedger` / :class:`Ledger` — the persistent cross-run store
  (``runs/<run_id>/``), with :class:`SeriesRecorder` time series and
  per-prompt-version :class:`AttributionReport` cost attribution,
  surfaced as ``spear runs`` / ``spear diff`` / ``spear top``.
"""

from repro.obs.attribution import (
    UNATTRIBUTED,
    AttributionReport,
    build_attribution,
)
from repro.obs.collector import ObsCollector, operator_kind
from repro.obs.exporters import to_prometheus, write_json_report
from repro.obs.ledger import Ledger, LedgerRun, RunLedger, ledger_scope
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    TOKEN_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import Pricing, RunReport, build_report, build_run_report
from repro.obs.spans import (
    Span,
    SpanBuilder,
    build_span_tree,
    iter_spans,
    render_span_tree,
    top_slowest,
)
from repro.obs.timeseries import FORCED_SAMPLE_KINDS, SeriesRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "TOKEN_BUCKETS",
    "ObsCollector",
    "operator_kind",
    "Span",
    "SpanBuilder",
    "build_span_tree",
    "iter_spans",
    "top_slowest",
    "render_span_tree",
    "Pricing",
    "RunReport",
    "build_report",
    "build_run_report",
    "to_prometheus",
    "write_json_report",
    "AttributionReport",
    "build_attribution",
    "UNATTRIBUTED",
    "Ledger",
    "LedgerRun",
    "RunLedger",
    "ledger_scope",
    "SeriesRecorder",
    "FORCED_SAMPLE_KINDS",
]
