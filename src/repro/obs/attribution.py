"""Prompt-lineage cost attribution: who paid for what, per prompt version.

Prompts are the first-class citizens of the paper; this module makes the
*bill* first-class too.  :func:`build_attribution` folds an event log into
an :class:`AttributionReport` that charges every generation's wall-time,
tokens, simulated dollars, retries, and cache savings to exactly one
``(prompt_key, version)`` bucket, then rolls the buckets up along the
refinement lineage (``key@v1 -> key@v2 -> ...`` as recorded by REFINE
events) so ``spear stats`` can answer "what did refining ``summarize@v3``
actually buy?" with a measured before/after utility line per refiner —
Table-3 style, but observed rather than planned.

Charging rules (token conservation is an invariant, not an aspiration):

- every GENERATE event charges its full token triple, latency, and cost
  to the ``(prompt_key, prompt_version)`` it carries — one bucket, once;
- RETRY / FAULT events (which fire inside the enclosing GEN span, before
  its GENERATE event exists) are buffered against the innermost open
  operator frame and resolved to that frame's prompt bucket when its
  GENERATE arrives; frames that close without generating flush to the
  ``"(unattributed)"`` bucket, so nothing is silently dropped;
- CACHE_HIT events credit ``saved_seconds`` split evenly across the
  footprint's prompt dependencies (each dependency also counts the hit).

All timestamps and aggregates derive from the virtual clock, so two runs
with the same seed produce byte-identical attribution reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.report import Pricing
from repro.runtime.events import Event, EventKind, EventLog

__all__ = [
    "AttributionReport",
    "build_attribution",
    "UNATTRIBUTED",
]

#: bucket receiving charges that cannot be tied to a prompt version
#: (retries in a GEN that never completed, model calls outside GEN).
UNATTRIBUTED = "(unattributed)"


def _bucket_key(prompt_key: str, version: int | None) -> str:
    if version is None:
        return prompt_key
    return f"{prompt_key}@v{version}"


def _empty_bucket() -> dict[str, Any]:
    return {
        "calls": 0,
        "wall_seconds": 0.0,
        "prompt_tokens": 0,
        "cached_tokens": 0,
        "output_tokens": 0,
        "cost_usd": 0.0,
        "retries": 0,
        "faults": 0,
        "backoff_seconds": 0.0,
        "cache_hits": 0,
        "cache_saved_seconds": 0.0,
        "confidence_sum": 0.0,
    }


@dataclass
class AttributionReport:
    """Per-(prompt_key, version) charges plus the lineage rollup.

    ``prompts`` maps ``"key@vN"`` (or :data:`UNATTRIBUTED`) to a charge
    bucket; ``lineage`` maps each prompt key to its observed version
    chain and per-key totals; ``refinements`` holds one before/after
    utility row per REFINE edge whose parent and child versions both
    generated at least once; ``totals`` repeats the conservation sums.
    """

    prompts: dict[str, dict[str, Any]] = field(default_factory=dict)
    lineage: dict[str, dict[str, Any]] = field(default_factory=dict)
    refinements: list[dict[str, Any]] = field(default_factory=list)
    totals: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, stable key order, JSON-ready."""
        return {
            "prompts": self.prompts,
            "lineage": self.lineage,
            "refinements": self.refinements,
            "totals": self.totals,
        }

    def to_json(self, *, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AttributionReport":
        """Rebuild from :meth:`to_dict` output (ledger reload)."""
        return cls(
            prompts=dict(data.get("prompts", {})),
            lineage=dict(data.get("lineage", {})),
            refinements=list(data.get("refinements", [])),
            totals=dict(data.get("totals", {})),
        )


def _finalize_bucket(bucket: dict[str, Any]) -> dict[str, Any]:
    calls = bucket["calls"]
    confidence_sum = bucket.pop("confidence_sum")
    out = {
        "calls": calls,
        "wall_seconds": round(bucket["wall_seconds"], 6),
        "prompt_tokens": bucket["prompt_tokens"],
        "cached_tokens": bucket["cached_tokens"],
        "output_tokens": bucket["output_tokens"],
        "cost_usd": round(bucket["cost_usd"], 6),
        "retries": bucket["retries"],
        "faults": bucket["faults"],
        "backoff_seconds": round(bucket["backoff_seconds"], 6),
        "cache_hits": bucket["cache_hits"],
        "cache_saved_seconds": round(bucket["cache_saved_seconds"], 6),
        "mean_latency": round(bucket["wall_seconds"] / calls, 6) if calls else 0.0,
        "mean_confidence": round(confidence_sum / calls, 6) if calls else 0.0,
    }
    return out


def build_attribution(
    log: "EventLog | Iterable[Event]",
    *,
    pricing: Pricing | None = None,
) -> AttributionReport:
    """Fold ``log`` (any iterable of events) into an :class:`AttributionReport`.

    Works on live logs and on :func:`repro.runtime.tracing.import_events`
    round-trips alike; the ledger calls this at finalization.
    """
    pricing = pricing if pricing is not None else Pricing()
    buckets: dict[str, dict[str, Any]] = {}
    #: per prompt key, the versions that generated, oldest first.
    versions_seen: dict[str, list[int]] = {}
    #: REFINE edges in log order: (key, new_version, action, mode, condition).
    refine_edges: list[tuple[str, int | None, str, str, Any]] = []
    #: operator frame stack; each frame buffers retry/fault charges that
    #: resolve when the frame's GENERATE event arrives.
    frames: list[dict[str, Any]] = []

    def bucket(name: str) -> dict[str, Any]:
        found = buckets.get(name)
        if found is None:
            found = buckets[name] = _empty_bucket()
        return found

    def charge_pending(target: dict[str, Any], pending: dict[str, float]) -> None:
        target["retries"] += int(pending.get("retries", 0))
        target["faults"] += int(pending.get("faults", 0))
        target["backoff_seconds"] += pending.get("backoff_seconds", 0.0)

    for event in log:
        kind = event.kind
        if kind is EventKind.OPERATOR_START:
            frames.append({"operator": event.operator, "pending": {}})
        elif kind is EventKind.OPERATOR_END:
            # Unwind to the matching frame (unbalanced logs unwind one).
            while frames:
                frame = frames.pop()
                pending = frame["pending"]
                if pending:
                    charge_pending(bucket(UNATTRIBUTED), pending)
                if frame["operator"] == event.operator:
                    break
        elif kind is EventKind.RETRY:
            pending = frames[-1]["pending"] if frames else None
            entry = pending if pending is not None else bucket(UNATTRIBUTED)
            entry["retries"] = entry.get("retries", 0) + 1
            delay = event.payload.get("delay")
            if isinstance(delay, (int, float)):
                entry["backoff_seconds"] = (
                    entry.get("backoff_seconds", 0.0) + float(delay)
                )
        elif kind is EventKind.FAULT:
            pending = frames[-1]["pending"] if frames else None
            entry = pending if pending is not None else bucket(UNATTRIBUTED)
            entry["faults"] = entry.get("faults", 0) + 1
        elif kind is EventKind.GENERATE:
            payload = event.payload
            prompt_key = str(payload.get("prompt_key", UNATTRIBUTED))
            version = payload.get("prompt_version")
            version = int(version) if version is not None else None
            name = _bucket_key(prompt_key, version)
            target = bucket(name)
            target["calls"] += 1
            latency = payload.get("latency")
            if isinstance(latency, (int, float)):
                target["wall_seconds"] += float(latency)
            p_tok = int(payload.get("prompt_tokens") or 0)
            c_tok = int(payload.get("cached_tokens") or 0)
            o_tok = int(payload.get("output_tokens") or 0)
            target["prompt_tokens"] += p_tok
            target["cached_tokens"] += c_tok
            target["output_tokens"] += o_tok
            target["cost_usd"] += pricing.cost(p_tok, c_tok, o_tok)
            confidence = payload.get("confidence")
            if isinstance(confidence, (int, float)):
                target["confidence_sum"] += float(confidence)
            if version is not None:
                chain = versions_seen.setdefault(prompt_key, [])
                if version not in chain:
                    chain.append(version)
            # Resolve the enclosing frame's buffered retries/faults.
            if frames and frames[-1]["pending"]:
                charge_pending(target, frames[-1]["pending"])
                frames[-1]["pending"] = {}
        elif kind is EventKind.CACHE_HIT:
            payload = event.payload
            deps = payload.get("prompt_versions")
            if not deps:
                deps = [[key, None] for key in payload.get("prompt_keys", [])]
            saved = float(payload.get("saved_seconds") or 0.0)
            names = [
                _bucket_key(str(dep[0]), dep[1] if dep[1] is None else int(dep[1]))
                for dep in deps
            ] or [UNATTRIBUTED]
            share = saved / len(names)
            for name in names:
                target = bucket(name)
                target["cache_hits"] += 1
                target["cache_saved_seconds"] += share
        elif kind is EventKind.REFINE:
            payload = event.payload
            refine_edges.append(
                (
                    str(payload.get("key", "?")),
                    (
                        int(payload["version"])
                        if payload.get("version") is not None
                        else None
                    ),
                    str(payload.get("action", "?")),
                    str(payload.get("mode", "?")),
                    payload.get("condition"),
                )
            )

    # Anything still buffered when the log ends (truncated run) must not
    # vanish: conserve it in the unattributed bucket.
    for frame in frames:
        if frame["pending"]:
            charge_pending(bucket(UNATTRIBUTED), frame["pending"])

    report = AttributionReport()
    for name in sorted(buckets):
        report.prompts[name] = _finalize_bucket(buckets[name])

    # -- lineage rollup ----------------------------------------------------
    for prompt_key in sorted(versions_seen):
        chain = sorted(versions_seen[prompt_key])
        rollup = _empty_bucket()
        rollup.pop("confidence_sum")
        for version in chain:
            charged = report.prompts[_bucket_key(prompt_key, version)]
            for field_name in rollup:
                if field_name in charged:
                    rollup[field_name] += charged[field_name]
        report.lineage[prompt_key] = {
            "versions": chain,
            "edges": [
                {
                    "to_version": new_version,
                    "action": action,
                    "mode": mode,
                    "condition": condition,
                }
                for key, new_version, action, mode, condition in refine_edges
                if key == prompt_key
            ],
            "totals": {
                name: round(value, 6) if isinstance(value, float) else value
                for name, value in rollup.items()
            },
        }

    # -- before/after utility per refinement edge --------------------------
    for key, new_version, action, mode, condition in refine_edges:
        if new_version is None:
            continue
        before = report.prompts.get(_bucket_key(key, new_version - 1))
        after = report.prompts.get(_bucket_key(key, new_version))
        if not before or not after or not before["calls"] or not after["calls"]:
            continue
        report.refinements.append(
            {
                "key": key,
                "from_version": new_version - 1,
                "to_version": new_version,
                "action": action,
                "mode": mode,
                "condition": condition,
                "before": {
                    "calls": before["calls"],
                    "mean_latency": before["mean_latency"],
                    "mean_confidence": before["mean_confidence"],
                    "cost_usd": before["cost_usd"],
                },
                "after": {
                    "calls": after["calls"],
                    "mean_latency": after["mean_latency"],
                    "mean_confidence": after["mean_confidence"],
                    "cost_usd": after["cost_usd"],
                },
                "delta": {
                    "mean_latency": round(
                        after["mean_latency"] - before["mean_latency"], 6
                    ),
                    "mean_confidence": round(
                        after["mean_confidence"] - before["mean_confidence"], 6
                    ),
                },
            }
        )

    # -- conservation totals ------------------------------------------------
    report.totals = {
        "attributed_calls": sum(b["calls"] for b in report.prompts.values()),
        "prompt_tokens": sum(b["prompt_tokens"] for b in report.prompts.values()),
        "cached_tokens": sum(b["cached_tokens"] for b in report.prompts.values()),
        "output_tokens": sum(b["output_tokens"] for b in report.prompts.values()),
        "cost_usd": round(
            sum(b["cost_usd"] for b in report.prompts.values()), 6
        ),
        "retries": sum(b["retries"] for b in report.prompts.values()),
        "faults": sum(b["faults"] for b in report.prompts.values()),
        "cache_hits": sum(b["cache_hits"] for b in report.prompts.values()),
        "cache_saved_seconds": round(
            sum(b["cache_saved_seconds"] for b in report.prompts.values()), 6
        ),
    }
    return report
