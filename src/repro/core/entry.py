"""Structured prompt entries: the values stored in the prompt store P.

In SPEAR a prompt is not an opaque string.  Each entry in P is a structured
object carrying the prompt text (possibly a template over the context C),
provenance metadata in the form of a ``ref_log``, tags for dispatch, and an
implicit version counter advanced by every refinement (paper §3.1, §4.3).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator, Mapping

from repro.errors import UnknownVersionError

__all__ = [
    "RefAction",
    "RefinementMode",
    "RefLogRecord",
    "PromptVersion",
    "PromptEntry",
    "render_template",
    "template_placeholders",
]

_PLACEHOLDER_RE = re.compile(r"\{([A-Za-z_][A-Za-z0-9_.]*)\}")


class RefAction(str, Enum):
    """The action type recorded for each refinement step (paper §3.3, §4.3)."""

    CREATE = "CREATE"
    APPEND = "APPEND"
    PREPEND = "PREPEND"
    UPDATE = "UPDATE"
    REPLACE = "REPLACE"
    MERGE = "MERGE"
    ROLLBACK = "ROLLBACK"
    CLONE = "CLONE"


class RefinementMode(str, Enum):
    """Who (or what) selected and executed the refinement (paper §4.1)."""

    MANUAL = "MANUAL"
    ASSISTED = "ASSISTED"
    AUTO = "AUTO"


@dataclass(frozen=True)
class RefLogRecord:
    """One step in a prompt's provenance log.

    Attributes:
        action: what kind of edit was applied.
        function: name of the refinement function ``f`` that produced it.
        mode: refinement mode (manual / assisted / auto), if applicable.
        condition: textual form of the triggering condition, if any
            (e.g. ``M["confidence"] < 0.7``).
        version: the entry version this step produced.
        signals: runtime signals captured at refinement time (confidence,
            latency, token counts) — the raw material for cost-based
            refinement planning (paper §5).
        timestamp: wall-clock seconds; informational only.
    """

    action: RefAction
    function: str
    version: int
    mode: RefinementMode | None = None
    condition: str | None = None
    signals: Mapping[str, float] = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dict (the paper's JSON-ish ref_log form)."""
        record: dict[str, Any] = {
            "action": self.action.value,
            "f": self.function,
            "version": self.version,
        }
        if self.mode is not None:
            record["mode"] = self.mode.value
        if self.condition is not None:
            record["condition"] = self.condition
        if self.signals:
            record["signals"] = dict(self.signals)
        return record


@dataclass(frozen=True)
class PromptVersion:
    """An immutable snapshot of a prompt's text at one version."""

    version: int
    text: str


def template_placeholders(text: str) -> list[str]:
    """Return the ordered, de-duplicated placeholder names in ``text``.

    Placeholders use ``{name}`` syntax; dotted names (``{note.text}``) are
    allowed and resolved against nested mappings at render time.
    """
    seen: dict[str, None] = {}
    for match in _PLACEHOLDER_RE.finditer(text):
        seen.setdefault(match.group(1))
    return list(seen)


def _resolve_dotted(values: Mapping[str, Any], name: str) -> Any:
    current: Any = values
    for part in name.split("."):
        if isinstance(current, Mapping) and part in current:
            current = current[part]
        else:
            raise KeyError(name)
    return current


def render_template(text: str, values: Mapping[str, Any]) -> str:
    """Interpolate ``{name}`` placeholders in ``text`` from ``values``.

    Unknown placeholders are left intact so that partially-bound templates
    remain valid templates (views may bind parameters in several steps).
    """

    def _substitute(match: re.Match[str]) -> str:
        name = match.group(1)
        try:
            return str(_resolve_dotted(values, name))
        except KeyError:
            return match.group(0)

    return _PLACEHOLDER_RE.sub(_substitute, text)


class PromptEntry:
    """A structured prompt value: text + tags + parameters + provenance.

    Entries are mutable (refinement edits them in place) but every text
    change snapshots the previous version, so rollback and DIFF always have
    full history to work with.
    """

    def __init__(
        self,
        text: str,
        *,
        tags: set[str] | None = None,
        params: Mapping[str, Any] | None = None,
        view: str | None = None,
        created_by: str = "f_literal",
        mode: RefinementMode | None = None,
    ) -> None:
        self._versions: list[PromptVersion] = [PromptVersion(0, text)]
        self.tags: set[str] = set(tags or ())
        self.params: dict[str, Any] = dict(params or {})
        #: name of the view this entry was derived from, if any.
        self.view = view
        self.ref_log: list[RefLogRecord] = [
            RefLogRecord(
                action=RefAction.CREATE,
                function=created_by,
                version=0,
                mode=mode,
            )
        ]

    # -- text / version access ------------------------------------------

    @property
    def text(self) -> str:
        """The current prompt text."""
        return self._versions[-1].text

    @property
    def version(self) -> int:
        """The current version number (0-based, advanced per edit)."""
        return self._versions[-1].version

    @property
    def versions(self) -> tuple[PromptVersion, ...]:
        """All snapshots, oldest first."""
        return tuple(self._versions)

    def text_at(self, version: int) -> str:
        """Return the text the entry had at ``version``."""
        for snapshot in self._versions:
            if snapshot.version == version:
                return snapshot.text
        raise UnknownVersionError("<entry>", version)

    def placeholders(self) -> list[str]:
        """Unbound ``{placeholder}`` names in the current text."""
        return template_placeholders(self.text)

    def render(self, values: Mapping[str, Any]) -> str:
        """Render the current text against ``values`` (see render_template)."""
        merged: dict[str, Any] = dict(self.params)
        merged.update(values)
        return render_template(self.text, merged)

    # -- refinement ------------------------------------------------------

    def record(
        self,
        action: RefAction,
        new_text: str,
        *,
        function: str,
        mode: RefinementMode | None = None,
        condition: str | None = None,
        signals: Mapping[str, float] | None = None,
    ) -> RefLogRecord:
        """Apply an edit: snapshot the new text and append to the ref_log.

        Returns the log record created.  This is the single mutation point
        for prompt text — REF, MERGE and rollback all funnel through it.
        """
        next_version = self.version + 1
        self._versions.append(PromptVersion(next_version, new_text))
        record = RefLogRecord(
            action=action,
            function=function,
            version=next_version,
            mode=mode,
            condition=condition,
            signals=dict(signals or {}),
        )
        self.ref_log.append(record)
        return record

    def rollback(self, version: int) -> RefLogRecord:
        """Restore the text of an earlier ``version`` (as a new version).

        Rollback is itself a logged refinement, so history is never lost.
        """
        text = self.text_at(version)
        return self.record(
            RefAction.ROLLBACK,
            text,
            function=f"f_rollback_to_v{version}",
        )

    def clone(self) -> "PromptEntry":
        """Deep-copy this entry, recording the clone in the copy's log."""
        copy = PromptEntry(
            self.text,
            tags=set(self.tags),
            params=dict(self.params),
            view=self.view,
            created_by="f_clone",
        )
        copy._versions = list(self._versions)
        copy.ref_log = list(self.ref_log)
        copy.ref_log.append(
            RefLogRecord(
                action=RefAction.CLONE,
                function="f_clone",
                version=self.version,
            )
        )
        return copy

    # -- introspection ----------------------------------------------------

    def history(self) -> Iterator[dict[str, Any]]:
        """Yield the ref_log as plain dicts (paper §4.3's representation)."""
        for record in self.ref_log:
            yield record.to_dict()

    def to_dict(self) -> dict[str, Any]:
        """Serialize the entry in the paper's ``{"text": ..., "ref_log": [...]}`` form."""
        return {
            "text": self.text,
            "version": self.version,
            "view": self.view,
            "tags": sorted(self.tags),
            "params": dict(self.params),
            "ref_log": [record.to_dict() for record in self.ref_log],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.text if len(self.text) <= 40 else self.text[:37] + "..."
        return (
            f"PromptEntry(v{self.version}, refs={len(self.ref_log)}, "
            f"text={preview!r})"
        )
