"""Operator base class: the prompt algebra's composition machinery.

Paper §3.3: "this algebra is *closed under composition* in that each of
its operators consumes and produces the triple (P, C, M)".  Concretely,
every :class:`Operator` implements ``apply(state) → state``; ``a >> b``
builds a :class:`~repro.core.pipeline.Pipeline`, which is itself an
operator — closure under composition.

``apply`` wraps the subclass hook ``_run`` with structured event emission
(operator_start / operator_end / error), so every pipeline execution is
fully traceable through the event log (paper §6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.state import ExecutionState
from repro.errors import SpearError
from repro.runtime.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.footprint import Footprint
    from repro.core.pipeline import Pipeline

__all__ = ["Operator", "Condition", "FunctionOperator"]


class Operator:
    """Base class for all prompt-algebra operators."""

    #: subclasses set a printable label, e.g. ``GEN["answer_0"]``.
    label: str = "OP"

    def _run(self, state: ExecutionState) -> ExecutionState:
        raise NotImplementedError

    def footprint(self, state: ExecutionState) -> "Footprint | None":
        """The declared input set of this application, or None.

        Returning a :class:`~repro.core.footprint.Footprint` opts this
        application into the operator-level result cache; ``None`` (the
        default) marks it uncacheable.  Only operators whose effect on
        ``(C, M)`` is a pure function of the declared inputs may opt in.
        """
        return None

    def apply(self, state: ExecutionState) -> ExecutionState:
        """Apply this operator to ``state``, with event tracing.

        When the state carries a result cache and this application
        declares a footprint, a cache hit replays the memoized ``(C, M)``
        delta, charges :attr:`~repro.runtime.result_cache.ResultCache.hit_cost`
        to the virtual clock, and emits a synthetic ``CACHE_HIT`` event in
        place of the operator's own event stream; a miss executes live
        under a mutation recorder and inserts the delta afterwards.
        """
        cache = getattr(state, "result_cache", None)
        footprint = self.footprint(state) if cache is not None else None
        state.events.emit(
            EventKind.OPERATOR_START, self.label, at=state.clock.now
        )
        if footprint is not None:
            cached = cache.lookup(footprint)
            if cached is not None:
                cached.replay(state)
                state.clock.advance(cache.hit_cost)
                state.events.emit(
                    EventKind.CACHE_HIT,
                    self.label,
                    at=state.clock.now,
                    fingerprint=footprint.digest,
                    saved_seconds=max(cached.elapsed - cache.hit_cost, 0.0),
                    prompt_keys=list(footprint.prompt_keys),
                    prompt_versions=[
                        [dep[0], dep[1]] for dep in footprint.prompt_deps
                    ],
                )
                state.events.emit(
                    EventKind.OPERATOR_END, self.label, at=state.clock.now
                )
                return state
        recording = cache.recorder(state) if footprint is not None else None
        started = state.clock.now
        try:
            result = self._run(state)
        except SpearError as error:
            state.events.emit(
                EventKind.ERROR,
                self.label,
                at=state.clock.now,
                error=type(error).__name__,
                message=str(error),
            )
            raise
        finally:
            if recording is not None:
                recording.restore()
        if recording is not None and result is state:
            cache.insert(
                footprint,
                recording.delta(footprint, elapsed=state.clock.now - started),
            )
        state.events.emit(EventKind.OPERATOR_END, self.label, at=state.clock.now)
        return result

    def __call__(self, state: ExecutionState) -> ExecutionState:
        return self.apply(state)

    def __rshift__(self, other: "Operator") -> "Pipeline":
        from repro.core.pipeline import Pipeline

        return Pipeline([self]) >> other

    def __repr__(self) -> str:
        return self.label


class FunctionOperator(Operator):
    """Lift an arbitrary ``state → state`` function into the algebra.

    Escape hatch for glue steps (e.g. recording ground truth into C) that
    still want event tracing and ``>>`` composition.
    """

    def __init__(self, fn: Callable[[ExecutionState], ExecutionState | None], label: str | None = None) -> None:
        self._fn = fn
        self.label = label or f"FN[{getattr(fn, '__name__', 'lambda')}]"

    def _run(self, state: ExecutionState) -> ExecutionState:
        result = self._fn(state)
        return result if result is not None else state


class Condition:
    """A named predicate over (C, M), printable for ref_log provenance.

    CHECK records *why* a refinement fired; a bare lambda cannot describe
    itself, so conditions carry a textual form.  Helpers build the common
    shapes from the paper: ``Condition.metadata_below("confidence", 0.7)``
    renders as ``M["confidence"] < 0.7``.
    """

    def __init__(self, fn: Callable[[ExecutionState], bool], text: str) -> None:
        self._fn = fn
        self.text = text

    def __call__(self, state: ExecutionState) -> bool:
        return bool(self._fn(state))

    def __invert__(self) -> "Condition":
        return Condition(lambda state: not self._fn(state), f"not ({self.text})")

    def __and__(self, other: "Condition") -> "Condition":
        return Condition(
            lambda state: self._fn(state) and other(state),
            f"({self.text}) and ({other.text})",
        )

    def __or__(self, other: "Condition") -> "Condition":
        return Condition(
            lambda state: self._fn(state) or other(state),
            f"({self.text}) or ({other.text})",
        )

    def __repr__(self) -> str:
        return f"Condition({self.text})"

    # -- constructors for the paper's common shapes -------------------------

    @staticmethod
    def metadata_below(signal: str, threshold: float) -> "Condition":
        """``M[signal] < threshold`` (missing signal counts as 0)."""
        return Condition(
            lambda state: float(state.metadata.get(signal, 0.0)) < threshold,
            f'M["{signal}"] < {threshold}',
        )

    @staticmethod
    def metadata_above(signal: str, threshold: float) -> "Condition":
        """``M[signal] > threshold`` (missing signal counts as 0)."""
        return Condition(
            lambda state: float(state.metadata.get(signal, 0.0)) > threshold,
            f'M["{signal}"] > {threshold}',
        )

    @staticmethod
    def missing_context(key: str) -> "Condition":
        """``key not in C`` — the Missing Order Retrieval trigger."""
        return Condition(
            lambda state: key not in state.context,
            f'"{key}" not in C',
        )

    @staticmethod
    def context_contains(key: str) -> "Condition":
        """``key in C``."""
        return Condition(
            lambda state: key in state.context,
            f'"{key}" in C',
        )

    @staticmethod
    def of(fn: Callable[[ExecutionState], bool], text: str | None = None) -> "Condition":
        """Wrap an arbitrary predicate (with an optional description)."""
        if isinstance(fn, Condition):
            return fn
        return Condition(fn, text or getattr(fn, "__name__", "custom"))


def as_condition(cond: Any) -> Condition:
    """Coerce a Condition, callable, or bool into a Condition."""
    if isinstance(cond, Condition):
        return cond
    if callable(cond):
        return Condition.of(cond)
    return Condition(lambda state: bool(cond), repr(bool(cond)))
