"""The six core operators of the SPEAR prompt algebra (paper §3.3).

- ``RET[source]``            — retrieve data into C.
- ``GEN[label]``             — invoke the LLM, store result in C[label].
- ``REF[action, f]``         — construct or refine an entry in P.
- ``CHECK[cond, f]``         — conditionally apply a transformation.
- ``MERGE[P_1, P_2]``        — reconcile prompt fragments from branches.
- ``DELEGATE[agent, payload]`` — offload a subtask to an external agent.

Each consumes and produces the ``(P, C, M)`` triple (threaded as an
:class:`~repro.core.state.ExecutionState`), so arbitrary compositions stay
inside the algebra.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.algebra import Condition, Operator, as_condition
from repro.core.entry import PromptEntry, RefAction, RefinementMode, template_placeholders
from repro.core.footprint import ABSENT, Footprint, stable_digest
from repro.core.state import ExecutionState
from repro.errors import OperatorError, RefinementError
from repro.runtime.events import EventKind


def _context_reads_for_template(
    state: ExecutionState,
    text: str,
    *,
    shadowed: frozenset[str] = frozenset(),
) -> tuple[tuple[str, str], ...]:
    """Fingerprint the context slots a template interpolates.

    Dotted placeholders resolve from their root key; roots bound by the
    operator's literal ``extra`` values are part of the operator identity
    instead.  A missing slot fingerprints as :data:`ABSENT` — absence is
    an input too, because an unbound placeholder renders literally.
    """
    reads: dict[str, str] = {}
    for name in template_placeholders(text):
        root = name.split(".", 1)[0]
        if root in shadowed or root in reads:
            continue
        if root in state.context:
            reads[root] = stable_digest(state.context[root])
        else:
            reads[root] = ABSENT
    return tuple(reads.items())


def _model_cache_key(model: Any) -> str:
    """Identity of the model backend for result-cache fingerprints."""
    key = getattr(model, "result_cache_key", None)
    return key if key is not None else f"id:{id(model):x}"

__all__ = ["RET", "GEN", "REF", "CHECK", "MERGE", "DELEGATE"]

#: A refinement function: (state, current_text) → new_text.  Plain strings
#: are accepted where the edit is a literal (APPEND/PREPEND/CREATE/REPLACE).
RefineFn = Callable[[ExecutionState, str], str]


class RET(Operator):
    """Retrieve raw input or supporting data into C.

    Supports the paper's two retrieval forms:

    - *structured retrieval*: ``RET["order_lookup", query={...}]`` — the
      registered source receives the structured query;
    - *prompt-based retrieval*: ``RET["med_context", prompt="retrieve_meds"]``
      — the named prompt in P is rendered against C and passed as the
      query, so REF can refine retrieval intent at runtime just like
      generation prompts (§3.3).
    """

    def __init__(
        self,
        source: str,
        *,
        query: Any = None,
        prompt: str | None = None,
        into: str | None = None,
    ) -> None:
        if query is not None and prompt is not None:
            raise OperatorError("RET takes either query= or prompt=, not both")
        self.source = source
        self.query = query
        self.prompt_key = prompt
        self.into = into or source
        self.label = f'RET["{source}"]'

    def footprint(self, state: ExecutionState) -> Footprint | None:
        """Cacheable only for sources registered with ``pure=True``."""
        if not state.is_pure_source(self.source):
            return None
        identity = stable_digest(
            {
                "op": "RET",
                "source": self.source,
                "query": self.query,
                "prompt": self.prompt_key,
                "into": self.into,
            }
        )
        prompt_deps: tuple[tuple[str, int, str, str], ...] = ()
        context_reads: tuple[tuple[str, str], ...] = ()
        if self.prompt_key is not None:
            if self.prompt_key not in state.prompts:
                return None
            entry = state.prompts[self.prompt_key]
            prompt_deps = (
                (
                    self.prompt_key,
                    entry.version,
                    stable_digest(entry.text),
                    stable_digest(entry.params),
                ),
            )
            context_reads = _context_reads_for_template(state, entry.text)
        return Footprint(
            operator=self.label,
            identity=identity,
            model_key=None,
            prompt_deps=prompt_deps,
            context_reads=context_reads,
            context_writes=(self.into,),
        )

    def _run(self, state: ExecutionState) -> ExecutionState:
        source_fn = state.source(self.source)
        query = self.query
        if self.prompt_key is not None:
            query = state.render_prompt(self.prompt_key)
        result = source_fn(state, query)
        state.context.put(self.into, result, producer=self.label)
        state.events.emit(
            EventKind.RETRIEVE,
            self.label,
            at=state.clock.now,
            source=self.source,
            into=self.into,
            prompt_based=self.prompt_key is not None,
        )
        return state


class GEN(Operator):
    """Invoke the LLM on a named prompt; store the output in C[label].

    The prompt entry P[prompt] is rendered against the current context C
    (template placeholders interpolate context values), generation runs on
    ``state.model``, and the structured result lands in:

    - ``C[label]`` — the output text;
    - ``C[label + "__result"]`` — the full GenerationResult;
    - ``M`` — confidence, latency, token and cache signals.

    The outcome confidence is also attached to the prompt's most recent
    ref_log record, which is what cost-based refinement planning mines.
    """

    def __init__(
        self,
        label_key: str,
        *,
        prompt: str,
        extra: dict[str, Any] | None = None,
        max_tokens: int | None = None,
    ) -> None:
        self.label_key = label_key
        self.prompt_key = prompt
        self.extra = dict(extra or {})
        self.max_tokens = max_tokens
        self.label = f'GEN["{label_key}"]'

    def footprint(self, state: ExecutionState) -> Footprint | None:
        """GEN's inputs: its params, the prompt at its version, the context
        slots the template interpolates, and the model backend.

        Opts out (returns None) when the model keeps a warm prefix cache:
        then latency/cached-token signals depend on kv-cache state that is
        not part of the declared inputs, and replay could diverge from a
        live re-execution.  Disable ``enable_prefix_cache`` to combine the
        tiers deterministically in simulation.
        """
        model = state.model
        if model is None or self.prompt_key not in state.prompts:
            return None
        if getattr(model, "enable_prefix_cache", False):
            return None
        if getattr(model, "fault_plan", None) is not None:
            # Fault decisions are attempt-indexed: re-running the same call
            # can fail differently, so GEN under injection is not pure.
            return None
        entry = state.prompts[self.prompt_key]
        identity = stable_digest(
            {
                "op": "GEN",
                "label": self.label_key,
                "prompt": self.prompt_key,
                "extra": self.extra,
                "max_tokens": self.max_tokens,
            }
        )
        return Footprint(
            operator=self.label,
            identity=identity,
            model_key=_model_cache_key(model),
            prompt_deps=(
                (
                    self.prompt_key,
                    entry.version,
                    stable_digest(entry.text),
                    stable_digest(entry.params),
                ),
            ),
            context_reads=_context_reads_for_template(
                state, entry.text, shadowed=frozenset(self.extra)
            ),
            context_writes=(self.label_key, f"{self.label_key}__result"),
        )

    def _run(self, state: ExecutionState) -> ExecutionState:
        if state.model is None:
            raise OperatorError("GEN requires a model on the execution state")
        rendered = state.render_prompt(self.prompt_key, extra=self.extra)
        if state.resilience is not None:
            result = state.resilience.generate(
                state, rendered, max_tokens=self.max_tokens
            )
        else:
            result = state.model.generate(rendered, max_tokens=self.max_tokens)

        state.context.put(self.label_key, result.text, producer=self.label)
        state.context.put(
            f"{self.label_key}__result", result, producer=self.label
        )
        state.metadata.update(
            {
                "confidence": result.confidence,
                "latency": result.latency.total,
                "prompt_tokens": result.prompt_tokens,
                "cached_tokens": result.cached_tokens,
                "output_tokens": result.output_tokens,
                "cache_hit_rate": result.cache_hit_rate,
                "last_gen": self.label_key,
                "last_prompt_key": self.prompt_key,
            }
        )
        state.metadata.increment("gen_calls")

        # Attach the outcome to the prompt's latest refinement record so
        # the planner can learn which refiners help (paper §5).
        entry = state.prompts[self.prompt_key]
        entry.ref_log[-1].signals.setdefault(
            "outcome_confidence", result.confidence
        )

        state.events.emit(
            EventKind.GENERATE,
            self.label,
            at=state.clock.now,
            prompt_key=self.prompt_key,
            prompt_version=entry.version,
            task=result.task,
            confidence=result.confidence,
            latency=result.latency.total,
            prompt_tokens=result.prompt_tokens,
            cached_tokens=result.cached_tokens,
            output_tokens=result.output_tokens,
        )
        return state


class REF(Operator):
    """Construct or refine an entry in P via a transformation function f.

    ``action`` selects the edit semantics; ``f`` is either a literal string
    or a callable ``(state, current_text) → new_text``.  The refinement is
    recorded in the entry's ref_log together with its mode, triggering
    condition, and the runtime signals current at refinement time.
    """

    def __init__(
        self,
        action: RefAction | str,
        f: RefineFn | str,
        *,
        key: str,
        mode: RefinementMode | str | None = None,
        condition: str | None = None,
        function_name: str | None = None,
    ) -> None:
        self.action = RefAction(action)
        self.f = f
        self.key = key
        self.mode = RefinementMode(mode) if mode is not None else None
        self.condition = condition
        if function_name is not None:
            self.function_name = function_name
        elif isinstance(f, str):
            self.function_name = "f_literal"
        else:
            self.function_name = getattr(f, "__name__", "f_anonymous")
        self.label = f"REF[{self.action.value}, {self.function_name}]"

    def _literal(self, state: ExecutionState, current: str) -> str:
        if isinstance(self.f, str):
            return self.f
        try:
            return self.f(state, current)
        except Exception as error:  # noqa: BLE001 - refiners are user code
            raise RefinementError(
                f"refinement function {self.function_name!r} failed: {error}"
            ) from error

    def _run(self, state: ExecutionState) -> ExecutionState:
        exists = self.key in state.prompts
        current = state.prompts[self.key].text if exists else ""
        produced = self._literal(state, current)

        if self.action is RefAction.CREATE:
            new_text = produced
        elif self.action is RefAction.APPEND:
            new_text = f"{current}\n{produced}" if current else produced
        elif self.action is RefAction.PREPEND:
            new_text = f"{produced}\n{current}" if current else produced
        elif self.action in (RefAction.UPDATE, RefAction.REPLACE):
            new_text = produced
        else:
            raise RefinementError(
                f"REF does not support action {self.action.value}; "
                "use MERGE / rollback helpers instead"
            )

        signals = {
            "confidence": float(state.metadata.get("confidence", 0.0)),
            "latency": float(state.metadata.get("latency", 0.0)),
        }
        if not exists:
            state.prompts.create(
                self.key,
                new_text,
                function=self.function_name,
                mode=self.mode,
            )
        else:
            state.prompts[self.key].record(
                self.action,
                new_text,
                function=self.function_name,
                mode=self.mode,
                condition=self.condition,
                signals=signals,
            )
        state.metadata.increment("refinements")
        state.events.emit(
            EventKind.REFINE,
            self.label,
            at=state.clock.now,
            key=self.key,
            action=self.action.value,
            mode=self.mode.value if self.mode else None,
            condition=self.condition,
            version=state.prompts[self.key].version,
        )
        return state


class CHECK(Operator):
    """Conditionally apply an operator when cond(C, M) holds.

    ``CHECK[cond, f]`` from the paper: ``then`` is typically a REF (refine
    on low confidence) or RET (fetch missing context); an optional
    ``orelse`` runs when the condition is false.  The textual form of the
    condition is propagated into any REF it triggers, so ref_logs record
    *why* a refinement happened.
    """

    def __init__(
        self,
        cond: Condition | Callable[[ExecutionState], bool],
        then: Operator | None = None,
        orelse: Operator | None = None,
    ) -> None:
        self.cond = as_condition(cond)
        self.then = then
        self.orelse = orelse
        self.label = f"CHECK[{self.cond.text}]"
        # Propagate the condition text into triggered REFs for provenance.
        if isinstance(then, REF) and then.condition is None:
            then.condition = self.cond.text

    def _run(self, state: ExecutionState) -> ExecutionState:
        outcome = self.cond(state)
        state.events.emit(
            EventKind.CHECK,
            self.label,
            at=state.clock.now,
            condition=self.cond.text,
            outcome=outcome,
        )
        state.metadata.increment("checks")
        if outcome and self.then is not None:
            return self.then.apply(state)
        if not outcome and self.orelse is not None:
            return self.orelse.apply(state)
        return state


class MERGE(Operator):
    """Reconcile prompt fragments from divergent branches (paper §3.3).

    Strategies:

    - ``"concat"`` — combine both texts (deduplicating shared lines);
    - ``"prefer_first"`` / ``"prefer_second"`` — pick one side;
    - ``"best_confidence"`` — pick the side whose latest ref_log outcome
      confidence is higher (runtime-metadata-driven selection);
    - any callable ``(state, text_1, text_2) → text``.
    """

    _STRATEGIES = ("concat", "prefer_first", "prefer_second", "best_confidence")

    def __init__(
        self,
        key_1: str,
        key_2: str,
        *,
        into: str | None = None,
        strategy: str | Callable[[ExecutionState, str, str], str] = "concat",
    ) -> None:
        if isinstance(strategy, str) and strategy not in self._STRATEGIES:
            raise OperatorError(
                f"unknown MERGE strategy {strategy!r}; "
                f"expected one of {self._STRATEGIES} or a callable"
            )
        self.key_1 = key_1
        self.key_2 = key_2
        self.into = into or key_1
        self.strategy = strategy
        self.label = f"MERGE[{key_1}, {key_2}]"

    @staticmethod
    def _outcome_confidence(entry: PromptEntry) -> float:
        for record in reversed(entry.ref_log):
            value = record.signals.get("outcome_confidence")
            if value is not None:
                return float(value)
        return 0.0

    def _merge_texts(self, state: ExecutionState, text_1: str, text_2: str) -> str:
        if callable(self.strategy):
            return self.strategy(state, text_1, text_2)
        if self.strategy == "prefer_first":
            return text_1
        if self.strategy == "prefer_second":
            return text_2
        if self.strategy == "best_confidence":
            conf_1 = self._outcome_confidence(state.prompts[self.key_1])
            conf_2 = self._outcome_confidence(state.prompts[self.key_2])
            return text_1 if conf_1 >= conf_2 else text_2
        # concat: second text's novel lines appended to the first.
        lines_1 = text_1.splitlines()
        seen = set(lines_1)
        novel = [line for line in text_2.splitlines() if line not in seen]
        return "\n".join(lines_1 + novel)

    def _run(self, state: ExecutionState) -> ExecutionState:
        text_1 = state.prompts[self.key_1].text
        text_2 = state.prompts[self.key_2].text
        merged = self._merge_texts(state, text_1, text_2)
        strategy_name = (
            self.strategy if isinstance(self.strategy, str)
            else getattr(self.strategy, "__name__", "custom")
        )
        if self.into in state.prompts:
            state.prompts[self.into].record(
                RefAction.MERGE,
                merged,
                function=f"f_merge_{strategy_name}",
            )
        else:
            state.prompts.create(
                self.into, merged, function=f"f_merge_{strategy_name}"
            )
        state.events.emit(
            EventKind.MERGE,
            self.label,
            at=state.clock.now,
            into=self.into,
            strategy=strategy_name,
        )
        return state


class DELEGATE(Operator):
    """Offload a subtask to a registered external agent (paper §3.3).

    The payload is a context key (its value is handed to the agent) or a
    callable over the state.  The agent's result is written to
    ``C[into]``; agents may also write additional keys themselves.
    """

    def __init__(
        self,
        agent: str,
        payload: str | Callable[[ExecutionState], Any],
        *,
        into: str,
    ) -> None:
        self.agent_name = agent
        self.payload = payload
        self.into = into
        self.label = f'DELEGATE["{agent}"]'

    def _run(self, state: ExecutionState) -> ExecutionState:
        agent = state.agent(self.agent_name)
        if callable(self.payload):
            payload = self.payload(state)
        else:
            payload = state.context[self.payload]
        result = agent.handle(state, payload)
        state.context.put(self.into, result, producer=self.label)
        state.metadata.increment("delegations")
        state.events.emit(
            EventKind.DELEGATE,
            self.label,
            at=state.clock.now,
            agent=self.agent_name,
            into=self.into,
        )
        return state
