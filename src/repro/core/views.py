"""Prompt views: named, parameterized, composable prompt templates.

Paper §4.2: "a view is a reusable named prompt that encapsulates
structured prompt construction ... much like views in a database system."
Views here support:

- **parameters** with optional defaults, validated at expansion;
- **composition**: a view may extend a base view (its expanded text is
  available as the ``{base}`` placeholder, or is prepended by default);
- **dispatch**: pick a view at runtime from predicates over the state
  (e.g. discharge vs radiology vs nursing notes);
- **caching**: expansions are memoized in a
  :class:`~repro.llm.prompt_cache.StructuredPromptCache`, keyed by
  (view, parameter hash, definition version).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.entry import PromptEntry, render_template, template_placeholders
from repro.errors import UnknownViewError, ViewError, ViewParameterError
from repro.llm.prompt_cache import StructuredPromptCache

__all__ = ["View", "ViewRegistry"]


@dataclass(frozen=True)
class View:
    """A named prompt template definition."""

    name: str
    template: str
    #: parameter names the template requires (beyond context placeholders).
    params: tuple[str, ...] = ()
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: name of a base view this one extends (composability).
    base: str | None = None
    tags: frozenset[str] = frozenset()
    description: str = ""
    #: definition version; registries bump this when a view is redefined.
    version: int = 0

    def required_params(self) -> set[str]:
        """Parameters without defaults — must be supplied at expansion."""
        return {name for name in self.params if name not in self.defaults}


class ViewRegistry:
    """Holds view definitions and expands them into prompt text/entries."""

    def __init__(self, cache: StructuredPromptCache | None = None) -> None:
        self._views: dict[str, View] = {}
        self.cache = cache if cache is not None else StructuredPromptCache()

    # -- definition ----------------------------------------------------------

    def define(
        self,
        name: str,
        template: str,
        *,
        params: tuple[str, ...] | list[str] = (),
        defaults: Mapping[str, Any] | None = None,
        base: str | None = None,
        tags: set[str] | frozenset[str] = frozenset(),
        description: str = "",
    ) -> View:
        """Register (or redefine) a view.

        Redefinition bumps the version, which invalidates cached
        expansions of the old definition (their cache keys embed the
        version).
        """
        if base is not None and base not in self._views:
            raise UnknownViewError(base)
        previous = self._views.get(name)
        version = previous.version + 1 if previous is not None else 0
        view = View(
            name=name,
            template=template,
            params=tuple(params),
            defaults=dict(defaults or {}),
            base=base,
            tags=frozenset(tags),
            description=description,
            version=version,
        )
        self._views[name] = view
        return view

    def get(self, name: str) -> View:
        """Look up a view definition."""
        try:
            return self._views[name]
        except KeyError:
            raise UnknownViewError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._views

    def names(self) -> list[str]:
        """All registered view names, sorted."""
        return sorted(self._views)

    def with_tag(self, tag: str) -> list[str]:
        """Names of views carrying ``tag``."""
        return sorted(
            name for name, view in self._views.items() if tag in view.tags
        )

    # -- expansion --------------------------------------------------------------

    def _chain(self, name: str, seen: tuple[str, ...] = ()) -> list[View]:
        """The base chain of ``name``, root first; detects cycles."""
        if name in seen:
            cycle = " -> ".join(seen + (name,))
            raise ViewError(f"cyclic view composition: {cycle}")
        view = self.get(name)
        if view.base is None:
            return [view]
        return self._chain(view.base, seen + (name,)) + [view]

    def _resolve(
        self, name: str, bound: Mapping[str, Any]
    ) -> list[View]:
        """The validated base chain: cycles and missing params raise here."""
        chain = self._chain(name)
        missing: set[str] = set()
        for view in chain:
            missing |= {
                param
                for param in view.required_params()
                if param not in bound
            }
        if missing:
            raise ViewParameterError(
                f"view {name!r} missing required parameters: {sorted(missing)}"
            )
        return chain

    @staticmethod
    def _render_chain(chain: list[View], bound: Mapping[str, Any]) -> str:
        text = ""
        for view in chain:
            values = dict(view.defaults)
            values.update(bound)
            values["base"] = text
            rendered = render_template(view.template, values)
            if text and "{base}" not in view.template:
                rendered = f"{text}\n{rendered}"
            text = rendered
        return text

    def expand(self, name: str, params: Mapping[str, Any] | None = None) -> str:
        """Expand a view to prompt text, resolving the base chain.

        Parameters flow to every view in the chain.  A derived view's
        template may place its base explicitly with ``{base}``; otherwise
        the base text is prepended.  Missing required parameters raise
        :class:`ViewParameterError`.
        """
        bound = dict(params or {})
        chain = self._resolve(name, bound)

        cache_key = self.cache.key(
            name, bound, version=sum(view.version for view in chain)
        )
        cached = self.cache.get(cache_key)
        if cached is not None:
            return cached

        text = self._render_chain(chain, bound)
        self.cache.put(cache_key, text)
        return text

    def preview(self, name: str, params: Mapping[str, Any] | None = None) -> str:
        """Expand a view *without* touching the memo cache.

        Same text and same validation errors as :meth:`expand`, but pure:
        the static checker uses this so analyzing a pipeline never warms
        (or pollutes) the cache an execution would then hit.
        """
        bound = dict(params or {})
        return self._render_chain(self._resolve(name, bound), bound)

    def instantiate(
        self,
        name: str,
        params: Mapping[str, Any] | None = None,
    ) -> PromptEntry:
        """Expand a view into a fresh :class:`PromptEntry`.

        The entry records its originating view and carries the view's tags,
        enabling ``P.from_view(...)`` lookups and view-guided optimization.
        """
        view = self.get(name)
        text = self.expand(name, params)
        return PromptEntry(
            text,
            tags=set(view.tags),
            params=dict(params or {}),
            view=name,
            created_by=f"f_view_{name}",
        )

    # -- dispatch -----------------------------------------------------------------

    def dispatch(
        self,
        cases: list[tuple[Callable[[Any], bool], str]],
        subject: Any,
        default: str | None = None,
    ) -> str:
        """Pick a view name by the first matching predicate over ``subject``.

        Implements the §4.2 pattern of routing discharge / radiology /
        nursing notes to different views.  Raises :class:`ViewError` when
        nothing matches and no default is given.
        """
        for predicate, view_name in cases:
            if predicate(subject):
                self.get(view_name)  # validate it exists
                return view_name
        if default is not None:
            self.get(default)
            return default
        raise ViewError("no dispatch case matched and no default view given")

    def placeholders(self, name: str) -> list[str]:
        """Placeholder names remaining in a view's raw template."""
        return template_placeholders(self.get(name).template)
