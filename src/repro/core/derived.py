"""Derived operators: reusable patterns over the core algebra (paper Table 2).

Each derived operator is implemented purely in terms of the core six —
they encapsulate common prompt patterns, not new semantics:

- ``EXPAND[key, addition]``  — append content to a prompt (REF).
- ``RETRY[op, cond]``        — refine + re-run while a condition holds
  (GEN + CHECK + REF).
- ``MAP[keys, f]``           — apply a transformation to many prompts (REF).
- ``SWITCH[cond -> action]`` — conditional dispatch (CHECK).
- ``VIEW[name](args)``       — instantiate a named view into P (REF).
- ``DIFF[P_1, P_2]``         — structural/semantic difference of prompts (REF-adjacent introspection).
"""

from __future__ import annotations

import difflib
import hashlib
from typing import Any, Callable, Mapping

from repro.core.algebra import Condition, Operator, as_condition
from repro.core.entry import RefAction, RefinementMode
from repro.core.operators import REF
from repro.core.state import ExecutionState
from repro.errors import OperatorError, SpearError
from repro.resilience.faults import unit_draw
from repro.runtime.events import EventKind

__all__ = ["EXPAND", "RETRY", "MAP", "SWITCH", "VIEW", "DIFF", "prompt_diff"]


def EXPAND(key: str, addition: str, *, mode: RefinementMode | str | None = None) -> REF:  # noqa: N802
    """Append new content to an existing prompt.

    E.g. ``EXPAND["qa_prompt", "Include PE risk factors."]`` — sugar for
    ``REF[APPEND, literal]``.
    """
    return REF(
        RefAction.APPEND,
        addition,
        key=key,
        mode=RefinementMode(mode) if mode is not None else None,
        function_name="f_expand",
    )


class RETRY(Operator):  # noqa: N801 - paper operator name
    """Retry an operator after refinement while a condition is met.

    ``RETRY[GEN["answer"], M["conf"] < 0.7]``: run ``op`` once; while the
    condition holds and retries remain, apply ``refine`` (if any) and run
    ``op`` again.  The retry count lands in ``M["retries"]``.

    A :class:`~repro.resilience.policies.RetryPolicy` can be passed as
    ``policy=`` instead of a bare ``max_retries``: the retry budget then
    comes from ``policy.max_attempts``, and *errors* raised by ``op`` that
    the policy marks retryable (transient model faults, rate limits,
    timeouts) are caught and retried too, with the policy's exponential
    backoff charged to the virtual clock.  Exhausting the budget re-raises
    the last error.
    """

    def __init__(
        self,
        op: Operator,
        condition: Condition | Callable[[ExecutionState], bool],
        *,
        refine: Operator | None = None,
        max_retries: int | None = None,
        policy: Any = None,
    ) -> None:
        if max_retries is not None and policy is not None:
            raise OperatorError("pass either max_retries or policy, not both")
        if policy is not None:
            max_retries = policy.max_attempts - 1
        elif max_retries is None:
            max_retries = 2
        if max_retries < 0:
            raise OperatorError(f"max_retries must be >= 0: {max_retries}")
        self.op = op
        self.condition = as_condition(condition)
        self.refine = refine
        self.max_retries = max_retries
        self.policy = policy
        self.label = f"RETRY[{op.label}, {self.condition.text}]"

    def _apply_once(
        self, state: ExecutionState, attempt: int
    ) -> ExecutionState | None:
        """Apply ``op``; under a policy, absorb one retryable error.

        Returns the new state, or raises when the error is terminal (not
        retryable, or the budget after ``attempt`` is spent).
        """
        if self.policy is None:
            return self.op.apply(state)
        try:
            return self.op.apply(state)
        except SpearError as error:
            if not (
                self.policy.retryable(error) and attempt < self.max_retries
            ):
                raise
            digest = hashlib.sha256(
                self.label.encode("utf-8")
            ).hexdigest()[:24]
            delay = self.policy.delay_for(
                attempt,
                draw=unit_draw("retry-op", self.label, digest, attempt),
                retry_after=getattr(error, "retry_after", None),
            )
            state.events.emit(
                EventKind.RETRY,
                self.label,
                at=state.clock.now,
                attempt=attempt + 1,
                delay=delay,
                error=type(error).__name__,
            )
            state.clock.advance(delay)
            return None  # signal: retry the attempt

    def _run(self, state: ExecutionState) -> ExecutionState:
        attempts = 0
        result = self._apply_once(state, attempts)
        while result is None:  # error-retry path (policy only)
            attempts += 1
            state.metadata.increment("retries")
            result = self._apply_once(state, attempts)
        state = result
        while attempts < self.max_retries and self.condition(state):
            attempts += 1
            state.metadata.increment("retries")
            if self.refine is not None:
                state = self.refine.apply(state)
            result = self._apply_once(state, attempts)
            while result is None:
                attempts += 1
                state.metadata.increment("retries")
                result = self._apply_once(state, attempts)
            state = result
        return state


class MAP(Operator):  # noqa: N801 - paper operator name
    """Apply transformation ``f`` to a list of prompt fragments.

    E.g. ``MAP[["intro_note", "followup_note"], f_normalize]`` — one REF
    per key, all recorded in each entry's ref_log.
    """

    def __init__(
        self,
        keys: list[str],
        f: Callable[[ExecutionState, str], str],
        *,
        action: RefAction | str = RefAction.UPDATE,
        mode: RefinementMode | str | None = None,
    ) -> None:
        self.keys = list(keys)
        self.f = f
        self.action = RefAction(action)
        self.mode = RefinementMode(mode) if mode is not None else None
        self.function_name = getattr(f, "__name__", "f_map")
        self.label = f"MAP[{self.keys}, {self.function_name}]"

    def _run(self, state: ExecutionState) -> ExecutionState:
        for key in self.keys:
            ref = REF(
                self.action,
                self.f,
                key=key,
                mode=self.mode,
                function_name=self.function_name,
            )
            state = ref.apply(state)
        return state


class SWITCH(Operator):  # noqa: N801 - paper operator name
    """Conditionally dispatch to prompt refiners or views.

    ``SWITCH[[(cond, op), ...], default=op]`` applies the first operator
    whose condition holds (CHECK composition).
    """

    def __init__(
        self,
        cases: list[tuple[Condition | Callable[[ExecutionState], bool], Operator]],
        *,
        default: Operator | None = None,
    ) -> None:
        self.cases = [(as_condition(cond), op) for cond, op in cases]
        self.default = default
        labels = ", ".join(cond.text for cond, __ in self.cases)
        self.label = f"SWITCH[{labels}]"

    def _run(self, state: ExecutionState) -> ExecutionState:
        for cond, op in self.cases:
            if cond(state):
                state.events.emit(
                    EventKind.CHECK,
                    self.label,
                    at=state.clock.now,
                    condition=cond.text,
                    outcome=True,
                )
                return op.apply(state)
        if self.default is not None:
            return self.default.apply(state)
        return state


class VIEW(Operator):  # noqa: N801 - paper operator name
    """Instantiate a named view into P (paper Table 2's ``VIEW[name](args)``).

    ``VIEW("discharge_summary", key="qa_prompt", params={...})`` expands
    the view (through the structured prompt cache) and creates/replaces
    ``P[key]`` with the result, recording the view provenance.
    """

    def __init__(
        self,
        name: str,
        *,
        key: str | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> None:
        self.view_name = name
        self.key = key or name
        self.params = dict(params or {})
        self.label = f'VIEW["{name}"]'

    def _run(self, state: ExecutionState) -> ExecutionState:
        entry = state.views.instantiate(self.view_name, self.params)
        if self.key in state.prompts:
            state.prompts[self.key].record(
                RefAction.REPLACE,
                entry.text,
                function=f"f_view_{self.view_name}",
            )
            state.prompts[self.key].view = self.view_name
        else:
            state.prompts[self.key] = entry
        state.events.emit(
            EventKind.VIEW_EXPAND,
            self.label,
            at=state.clock.now,
            view=self.view_name,
            key=self.key,
            params=dict(self.params),
        )
        return state


def prompt_diff(text_1: str, text_2: str) -> dict[str, Any]:
    """Structural difference between two prompt texts.

    Returns the unified diff plus summary statistics (added/removed lines,
    similarity ratio, shared-prefix length in characters — the quantity
    prefix caching cares about).
    """
    lines_1 = text_1.splitlines()
    lines_2 = text_2.splitlines()
    diff_lines = list(
        difflib.unified_diff(lines_1, lines_2, lineterm="", n=1)
    )
    added = sum(
        1 for line in diff_lines if line.startswith("+") and not line.startswith("+++")
    )
    removed = sum(
        1 for line in diff_lines if line.startswith("-") and not line.startswith("---")
    )
    matcher = difflib.SequenceMatcher(a=text_1, b=text_2)
    shared_prefix = 0
    for char_1, char_2 in zip(text_1, text_2):
        if char_1 != char_2:
            break
        shared_prefix += 1
    return {
        "diff": diff_lines,
        "added_lines": added,
        "removed_lines": removed,
        "similarity": round(matcher.ratio(), 4),
        "shared_prefix_chars": shared_prefix,
    }


class DIFF(Operator):  # noqa: N801 - paper operator name
    """Compute the structural difference between two prompt versions.

    ``DIFF["summary_1", "summary_2"]`` writes the diff record into
    ``C[into]`` (default ``"diff"``).  Either key may address a historical
    version with ``key@version`` syntax (e.g. ``"qa_prompt@0"``).
    """

    def __init__(self, key_1: str, key_2: str, *, into: str = "diff") -> None:
        self.key_1 = key_1
        self.key_2 = key_2
        self.into = into
        self.label = f"DIFF[{key_1}, {key_2}]"

    @staticmethod
    def _resolve(state: ExecutionState, spec: str) -> str:
        if "@" in spec:
            key, __, version_text = spec.partition("@")
            return state.prompts[key].text_at(int(version_text))
        return state.prompts[spec].text

    def _run(self, state: ExecutionState) -> ExecutionState:
        record = prompt_diff(
            self._resolve(state, self.key_1),
            self._resolve(state, self.key_2),
        )
        state.context.put(self.into, record, producer=self.label)
        return state
