"""The prompt store P: a structured, versioned key-value store of prompts.

``PromptStore`` is the P in SPEAR's ``(P, C, M)`` execution state
(paper §3.2).  Entries are :class:`~repro.core.entry.PromptEntry` objects;
the store adds naming, tag lookup, and store-level provenance helpers.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.core.entry import PromptEntry, RefAction, RefinementMode
from repro.errors import PromptStoreError, UnknownPromptError

__all__ = ["PromptStore"]


class PromptStore:
    """Named, versioned prompt fragments (the paper's P).

    The store behaves like a mapping from string keys to
    :class:`PromptEntry` values, with helpers for creation, tagging,
    cloning and history inspection.  It may be backed by any
    :class:`~repro.runtime.kvstore.KeyValueBackend`; by default an
    in-process dict is used.
    """

    def __init__(self, backend: "Mapping[str, PromptEntry] | None" = None) -> None:
        # The backend must support __getitem__/__setitem__/__delitem__/
        # __contains__/__iter__/__len__; a plain dict qualifies.
        self._entries: Any = backend if backend is not None else {}

    # -- mapping protocol -------------------------------------------------

    def __getitem__(self, key: str) -> PromptEntry:
        try:
            return self._entries[key]
        except KeyError:
            raise UnknownPromptError(key) from None

    def __setitem__(self, key: str, entry: PromptEntry) -> None:
        if not isinstance(entry, PromptEntry):
            raise PromptStoreError(
                f"prompt store values must be PromptEntry, got {type(entry).__name__}"
            )
        self._entries[key] = entry

    def __delitem__(self, key: str) -> None:
        try:
            del self._entries[key]
        except KeyError:
            raise UnknownPromptError(key) from None

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[str]:
        """All prompt keys currently in the store."""
        return list(self._entries)

    def get(self, key: str, default: PromptEntry | None = None) -> PromptEntry | None:
        """Return the entry for ``key`` or ``default`` when absent."""
        try:
            return self[key]
        except UnknownPromptError:
            return default

    # -- creation ---------------------------------------------------------

    def create(
        self,
        key: str,
        text: str,
        *,
        tags: set[str] | None = None,
        params: Mapping[str, Any] | None = None,
        view: str | None = None,
        function: str = "f_literal",
        mode: RefinementMode | None = None,
        overwrite: bool = False,
    ) -> PromptEntry:
        """Create a new entry under ``key``.

        Raises :class:`PromptStoreError` if the key exists and ``overwrite``
        is false — accidental clobbering of a refined prompt would silently
        discard its provenance.
        """
        if key in self._entries and not overwrite:
            raise PromptStoreError(
                f"prompt {key!r} already exists; pass overwrite=True to replace"
            )
        entry = PromptEntry(
            text,
            tags=tags,
            params=params,
            view=view,
            created_by=function,
            mode=mode,
        )
        self._entries[key] = entry
        return entry

    def ensure(self, key: str, text: str, **kwargs: Any) -> PromptEntry:
        """Return the existing entry for ``key`` or create it from ``text``."""
        existing = self.get(key)
        if existing is not None:
            return existing
        return self.create(key, text, **kwargs)

    def clone(self, source: str, target: str, *, overwrite: bool = False) -> PromptEntry:
        """Copy ``source`` (with full history) to ``target``."""
        if target in self._entries and not overwrite:
            raise PromptStoreError(
                f"prompt {target!r} already exists; pass overwrite=True to replace"
            )
        copy = self[source].clone()
        self._entries[target] = copy
        return copy

    # -- lookup -----------------------------------------------------------

    def text(self, key: str) -> str:
        """Shorthand for ``store[key].text``."""
        return self[key].text

    def with_tag(self, tag: str) -> list[str]:
        """Keys of all entries carrying ``tag`` (used for runtime dispatch)."""
        return [key for key in self._entries if tag in self._entries[key].tags]

    def from_view(self, view_name: str) -> list[str]:
        """Keys of all entries instantiated from the named view."""
        return [
            key
            for key in self._entries
            if self._entries[key].view == view_name
        ]

    # -- provenance -------------------------------------------------------

    def history(self, key: str) -> list[dict[str, Any]]:
        """The ref_log of ``key`` as plain dicts."""
        return [record.to_dict() for record in self[key].ref_log]

    def refinement_count(self, key: str) -> int:
        """Number of post-creation refinements applied to ``key``."""
        return sum(
            1
            for record in self[key].ref_log
            if record.action is not RefAction.CREATE
        )

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Serialize the whole store (for logging / shadow execution)."""
        return {key: self._entries[key].to_dict() for key in self._entries}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PromptStore({sorted(self._entries)!r})"
