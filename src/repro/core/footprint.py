"""Input footprints: what an operator application *reads* (paper §5).

Because prompts are first-class, versioned data, the runtime can know
exactly which inputs fed an operator application: the operator's own
parameters, the referenced prompt keys at their current versions, the
context slots the rendered template actually interpolates, and the model
profile.  A :class:`Footprint` captures that input set as plain data; its
:attr:`~Footprint.digest` is the content fingerprint the operator-level
result cache (:mod:`repro.runtime.result_cache`) is keyed by.

Operators declare their footprint via :meth:`Operator.footprint
<repro.core.algebra.Operator.footprint>`; returning ``None`` marks the
application as uncacheable (the default — only operators whose outputs
are a pure function of their declared inputs opt in).

Transitivity falls out of value fingerprints: a downstream GEN reads the
*values* an upstream GEN wrote into C, so when a refinement changes the
upstream output, every transitively dependent fingerprint changes too.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

__all__ = ["ABSENT", "Footprint", "stable_digest"]

#: placeholder digest for a context slot the template references but the
#: context does not (yet) hold — absence is part of the input set, because
#: an unbound placeholder renders literally.
ABSENT = "<absent>"


def stable_digest(value: Any) -> str:
    """A short, stable content digest of an arbitrary value.

    Values are JSON-serialized with sorted keys (``repr`` fallback for
    arbitrary objects, which is deterministic for the package's frozen
    dataclasses), then SHA-256 hashed.  16 hex chars keep fingerprints
    readable in event payloads while leaving collisions negligible.
    """
    try:
        payload = json.dumps(value, sort_keys=True, default=repr)
    except (TypeError, ValueError):
        payload = repr(value)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Footprint:
    """The declared input set of one operator application.

    Fields:

    - ``operator``: the printable operator label (``GEN["answer"]``).
    - ``identity``: digest of the operator's own parameters (label key,
      prompt key, literal extras, max_tokens, …).
    - ``model_key``: identity of the model backend the operator will call
      (None for model-free operators such as pure RET).
    - ``prompt_deps``: one ``(key, version, text_digest, params_digest)``
      tuple per referenced prompt.  The version makes invalidation
      precise; the text digest keeps hits correct even across cloned
      stores whose histories diverged at the same version number.
    - ``context_reads``: ``(key, value_digest)`` per context slot the
      operator reads (``ABSENT`` when the slot is missing).
    - ``context_writes``: context keys the operator will write — not part
      of the fingerprint (writes are outputs), but recorded so the cache
      can chain dependency edges writer → reader at insert time.
    """

    operator: str
    identity: str
    model_key: str | None
    prompt_deps: tuple[tuple[str, int, str, str], ...] = ()
    context_reads: tuple[tuple[str, str], ...] = ()
    context_writes: tuple[str, ...] = ()

    @property
    def digest(self) -> str:
        """The content fingerprint cache entries are keyed by."""
        return stable_digest(
            {
                "operator": self.operator,
                "identity": self.identity,
                "model": self.model_key,
                "prompts": self.prompt_deps,
                "reads": self.context_reads,
            }
        )

    @property
    def prompt_keys(self) -> tuple[str, ...]:
        """The referenced prompt keys (for dependency indexing)."""
        return tuple(dep[0] for dep in self.prompt_deps)
