"""Meta prompts: pipelines that analyze and revise their own prompt logic.

Paper §4.4: because prompt histories are first-class data, SPEAR can mine
ref_logs to find which refiners consistently improve confidence, replace
underperforming refiners, and visualize how prompts evolved across retry
chains.  This module implements those analytics over
:class:`~repro.core.store.PromptStore` ref_logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.entry import RefAction
from repro.core.store import PromptStore

__all__ = [
    "RefinerStats",
    "analyze_refiners",
    "underperforming_refiners",
    "recommend_replacement",
    "evolution_summary",
]


@dataclass
class RefinerStats:
    """Aggregate outcome statistics for one refinement function."""

    function: str
    applications: int = 0
    #: mean confidence improvement across applications where both the
    #: pre-refinement confidence and the post-GEN outcome are known.
    mean_confidence_delta: float = 0.0
    #: fraction of applications triggered by a CHECK condition.
    triggered_fraction: float = 0.0
    #: how many distinct prompt keys the refiner touched.
    prompts_touched: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for logging / reporting."""
        return {
            "function": self.function,
            "applications": self.applications,
            "mean_confidence_delta": round(self.mean_confidence_delta, 4),
            "triggered_fraction": round(self.triggered_fraction, 4),
            "prompts_touched": self.prompts_touched,
        }


def analyze_refiners(store: PromptStore) -> dict[str, RefinerStats]:
    """Mine every ref_log for per-refiner outcome statistics.

    For each non-CREATE record carrying both a pre-refinement
    ``confidence`` signal and a post-GEN ``outcome_confidence``, the delta
    measures what that refinement bought.  Records without outcomes (no
    GEN ran afterwards) still count as applications.
    """
    deltas: dict[str, list[float]] = {}
    applications: dict[str, int] = {}
    triggered: dict[str, int] = {}
    touched: dict[str, set[str]] = {}

    for key in store.keys():
        for record in store[key].ref_log:
            if record.action is RefAction.CREATE:
                continue
            name = record.function
            applications[name] = applications.get(name, 0) + 1
            touched.setdefault(name, set()).add(key)
            if record.condition is not None:
                triggered[name] = triggered.get(name, 0) + 1
            before = record.signals.get("confidence")
            after = record.signals.get("outcome_confidence")
            if before is not None and after is not None:
                deltas.setdefault(name, []).append(float(after) - float(before))

    stats: dict[str, RefinerStats] = {}
    for name, count in applications.items():
        name_deltas = deltas.get(name, [])
        stats[name] = RefinerStats(
            function=name,
            applications=count,
            mean_confidence_delta=(
                sum(name_deltas) / len(name_deltas) if name_deltas else 0.0
            ),
            triggered_fraction=triggered.get(name, 0) / count,
            prompts_touched=len(touched.get(name, set())),
        )
    return stats


def underperforming_refiners(
    store: PromptStore,
    *,
    min_applications: int = 2,
    threshold: float = 0.0,
) -> list[RefinerStats]:
    """Refiners applied often enough whose mean confidence delta is <= threshold.

    These are the candidates §4.4 suggests replacing (e.g. swap a generic
    rewriter for targeted example injection).
    """
    return sorted(
        (
            stat
            for stat in analyze_refiners(store).values()
            if stat.applications >= min_applications
            and stat.mean_confidence_delta <= threshold
        ),
        key=lambda stat: stat.mean_confidence_delta,
    )


def recommend_replacement(store: PromptStore, function: str) -> str | None:
    """Suggest the best-performing alternative refiner for ``function``.

    Returns the refiner with the highest mean confidence delta among those
    that touched at least one of the same prompts (so the recommendation
    is task-relevant), or None when no better alternative exists.
    """
    stats = analyze_refiners(store)
    target = stats.get(function)
    if target is None:
        return None
    target_keys = {
        key
        for key in store.keys()
        if any(record.function == function for record in store[key].ref_log)
    }
    best_name: str | None = None
    best_delta = target.mean_confidence_delta
    for name, stat in stats.items():
        if name == function:
            continue
        touches_same = any(
            any(record.function == name for record in store[key].ref_log)
            for key in target_keys
        )
        if touches_same and stat.mean_confidence_delta > best_delta:
            best_name = name
            best_delta = stat.mean_confidence_delta
    return best_name


def evolution_summary(store: PromptStore, key: str) -> dict[str, Any]:
    """How one prompt evolved: per-step actions, modes, and text growth.

    The §4.4 "visualize how a prompt evolved over the course of fallback
    or retry chains" use case, as structured data.
    """
    entry = store[key]
    steps = []
    for record, snapshot in zip(entry.ref_log, entry.versions):
        steps.append(
            {
                "version": record.version,
                "action": record.action.value,
                "function": record.function,
                "mode": record.mode.value if record.mode else None,
                "condition": record.condition,
                "chars": len(snapshot.text),
                "outcome_confidence": record.signals.get("outcome_confidence"),
            }
        )
    return {
        "key": key,
        "view": entry.view,
        "versions": entry.version + 1,
        "steps": steps,
        "net_growth_chars": len(entry.text) - len(entry.versions[0].text),
    }
