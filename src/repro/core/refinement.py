"""Refinement modes: manual, assisted, and automatic (paper §4.1).

The three modes govern how the REF operator is applied — who selects and
executes the refinement function ``f``:

- **manual**: the developer writes the refinement text explicitly;
- **assisted**: the developer states intent (a hint); an LLM call rewrites
  the prompt to honour it;
- **auto**: the system supplies only a high-level objective (or reacts to
  runtime signals) and the LLM derives the refinement.

Each helper returns a ready-to-compose operator; the LLM-backed modes pay
for their rewrite call through the normal generation path, so their cost
shows up in latency accounting exactly like the paper's.
"""

from __future__ import annotations

from typing import Callable

from repro.core.algebra import Condition, Operator
from repro.core.entry import RefAction, RefinementMode
from repro.core.operators import CHECK, REF
from repro.core.state import ExecutionState
from repro.errors import RefinementError
from repro.llm.tasks import PROMPT_BLOCK_END, PROMPT_BLOCK_START

__all__ = [
    "manual_refinement",
    "assisted_refinement",
    "auto_refinement",
    "adaptive_hint",
    "refine_on_low_confidence",
    "build_rewrite_prompt",
]


def build_rewrite_prompt(
    original: str | None,
    *,
    hint: str | None = None,
    objective: str | None = None,
) -> str:
    """Compose the meta-prompt that asks the model to rewrite a prompt.

    The structured blocks (``<<<PROMPT>>> ... <<<END>>>``, ``Refinement
    hint:``, ``Objective:``) are what the simulated model's rewrite task
    parses; a real backend would simply read them as instructions.
    """
    parts = ["Improve the prompt below so it better accomplishes the task."]
    if original is not None:
        parts.append(f"{PROMPT_BLOCK_START}\n{original}\n{PROMPT_BLOCK_END}")
    if hint is not None:
        parts.append(f"Refinement hint: {hint}")
    if objective is not None:
        parts.append(f"Objective: {objective}")
    parts.append("Return only the rewritten prompt.")
    return "\n".join(parts)


def manual_refinement(key: str, addition: str) -> REF:
    """MANUAL mode: the user appends explicit refinement text.

    E.g. ``manual_refinement("qa_prompt", "Focus on dosage and timing of
    Enoxaparin.")`` — the paper's EXPAND pattern with full user control.
    """
    return REF(
        RefAction.APPEND,
        addition,
        key=key,
        mode=RefinementMode.MANUAL,
        function_name="f_manual_append",
    )


def _rewrite_with_model(
    key: str,
    *,
    hint: str | None,
    objective: str | None,
    function_name: str,
) -> Callable[[ExecutionState, str], str]:
    def _rewrite(state: ExecutionState, current: str) -> str:
        if state.model is None:
            raise RefinementError(
                f"{function_name} requires a model for the rewrite call"
            )
        meta_prompt = build_rewrite_prompt(current, hint=hint, objective=objective)
        # The rewrite call goes through the normal generation path, so its
        # latency and tokens are charged like any other LLM invocation —
        # but it must not pollute the task prefix cache (a rewrite prompt
        # shares no prefix with task prompts, and real deployments route
        # optimizer traffic separately).
        result = state.model.generate(meta_prompt, use_cache=False)
        if not result.text.strip():
            raise RefinementError(f"{function_name} produced an empty prompt")
        return result.text

    _rewrite.__name__ = function_name
    return _rewrite


def assisted_refinement(key: str, hint: str) -> REF:
    """ASSISTED mode: user intent + LLM rewrite (paper §4.1).

    E.g. ``assisted_refinement("qa_prompt", "focus on PE risk")`` issues
    ``REF[UPDATE, f := LLM("Rewrite to highlight PE-related justification")]``.
    """
    return REF(
        RefAction.UPDATE,
        _rewrite_with_model(
            key, hint=hint, objective=None, function_name="f_assisted_rewrite"
        ),
        key=key,
        mode=RefinementMode.ASSISTED,
        function_name="f_assisted_rewrite",
    )


def auto_refinement(key: str, objective: str) -> REF:
    """AUTO mode: high-level objective only; the system derives criteria."""
    return REF(
        RefAction.UPDATE,
        _rewrite_with_model(
            key, hint=None, objective=objective, function_name="f_auto_refine"
        ),
        key=key,
        mode=RefinementMode.AUTO,
        function_name="f_auto_refine",
    )


def adaptive_hint(key: str, hint_text: str) -> REF:
    """AUTO-mode per-item hint injection.

    Appends a short ``Hint: ...`` clause — the lightweight runtime
    adaptation auto mode applies when signals predict a risky item.  The
    appended delta keeps the full original as a cacheable prefix.
    """
    return REF(
        RefAction.APPEND,
        f"Hint: {hint_text}",
        key=key,
        mode=RefinementMode.AUTO,
        function_name="f_add_hint",
    )


def refine_on_low_confidence(
    key: str,
    threshold: float = 0.7,
    *,
    refinement: Operator | None = None,
) -> CHECK:
    """The paper's signature pattern: ``CHECK[M["confidence"] < t] → REF``.

    Default refinement appends a reasoning hint (Table 1's
    ``f_add_reasoning_hint``); pass any operator to customize.
    """
    if refinement is None:
        refinement = REF(
            RefAction.APPEND,
            "Explain your reasoning step by step before answering.",
            key=key,
            mode=RefinementMode.AUTO,
            function_name="f_add_reasoning_hint",
        )
    return CHECK(Condition.metadata_below("confidence", threshold), refinement)
