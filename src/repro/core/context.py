"""The runtime context C: dynamic map of inputs and intermediate outputs.

``Context`` is the C in SPEAR's ``(P, C, M)`` execution state (paper §3.2).
It holds raw inputs, retrieval results, prior generations and extracted
fields.  Prompt templates interpolate values from C at GEN time, and REF
functions may write structured output back into C for downstream steps.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import UnknownContextKeyError

__all__ = ["Context"]


class Context:
    """Runtime data store with write-history for introspection."""

    def __init__(self, initial: Mapping[str, Any] | None = None) -> None:
        self._values: dict[str, Any] = dict(initial or {})
        #: ordered (key, producer) pairs recording who wrote each value;
        #: producer is an operator/agent label, "initial" for seed data.
        self.write_log: list[tuple[str, str]] = [
            (key, "initial") for key in self._values
        ]

    # -- mapping protocol -------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise UnknownContextKeyError(key) from None

    def __setitem__(self, key: str, value: Any) -> None:
        self.put(key, value)

    def __delitem__(self, key: str) -> None:
        try:
            del self._values[key]
        except KeyError:
            raise UnknownContextKeyError(key) from None

    def __contains__(self, key: object) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def keys(self) -> list[str]:
        """All context keys, oldest-written first."""
        return list(self._values)

    def get(self, key: str, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default`` when absent."""
        return self._values.get(key, default)

    # -- writes with provenance --------------------------------------------

    def put(self, key: str, value: Any, *, producer: str = "unknown") -> None:
        """Write ``value`` under ``key``, recording the producing operator."""
        self._values[key] = value
        self.write_log.append((key, producer))

    def update(self, values: Mapping[str, Any], *, producer: str = "unknown") -> None:
        """Bulk write, recording the same producer for every key."""
        for key, value in values.items():
            self.put(key, value, producer=producer)

    def producers_of(self, key: str) -> list[str]:
        """All operators that ever wrote ``key``, in order."""
        return [producer for written, producer in self.write_log if written == key]

    # -- views over the data -------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """A shallow copy of the current values (for template rendering)."""
        return dict(self._values)

    def subset(self, keys: list[str]) -> dict[str, Any]:
        """The values for ``keys`` that are present, as a plain dict."""
        return {key: self._values[key] for key in keys if key in self._values}

    def fork(self) -> "Context":
        """Shallow-copy the context for branch/shadow execution."""
        copy = Context()
        copy._values = dict(self._values)
        copy.write_log = list(self.write_log)
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Context({sorted(self._values)!r})"
