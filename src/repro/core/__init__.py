"""SPEAR core: prompt-as-data model and the prompt algebra."""

from repro.core.algebra import Condition, FunctionOperator, Operator
from repro.core.context import Context
from repro.core.derived import DIFF, EXPAND, MAP, RETRY, SWITCH, VIEW, prompt_diff
from repro.core.entry import (
    PromptEntry,
    PromptVersion,
    RefAction,
    RefinementMode,
    RefLogRecord,
    render_template,
    template_placeholders,
)
from repro.core.footprint import ABSENT, Footprint, stable_digest
from repro.core.metadata import Metadata
from repro.core.operators import CHECK, DELEGATE, GEN, MERGE, REF, RET
from repro.core.pipeline import Pipeline
from repro.core.refinement import (
    adaptive_hint,
    assisted_refinement,
    auto_refinement,
    build_rewrite_prompt,
    manual_refinement,
    refine_on_low_confidence,
)
from repro.core.state import ExecutionState
from repro.core.store import PromptStore
from repro.core.views import View, ViewRegistry

__all__ = [
    "Condition",
    "FunctionOperator",
    "Operator",
    "ABSENT",
    "Footprint",
    "stable_digest",
    "Context",
    "DIFF",
    "EXPAND",
    "MAP",
    "RETRY",
    "SWITCH",
    "VIEW",
    "prompt_diff",
    "PromptEntry",
    "PromptVersion",
    "RefAction",
    "RefinementMode",
    "RefLogRecord",
    "render_template",
    "template_placeholders",
    "Metadata",
    "CHECK",
    "DELEGATE",
    "GEN",
    "MERGE",
    "REF",
    "RET",
    "Pipeline",
    "adaptive_hint",
    "assisted_refinement",
    "auto_refinement",
    "build_rewrite_prompt",
    "manual_refinement",
    "refine_on_low_confidence",
    "ExecutionState",
    "PromptStore",
    "View",
    "ViewRegistry",
]
