"""Pipelines: operator sequences, themselves operators (closure).

``a >> b >> c`` builds a :class:`Pipeline`; because Pipeline subclasses
:class:`~repro.core.algebra.Operator`, pipelines nest and compose freely —
the algebra is closed under composition (paper §3.3).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.algebra import Operator
from repro.core.state import ExecutionState

__all__ = ["Pipeline"]


class Pipeline(Operator):
    """An ordered composition of operators."""

    def __init__(self, operators: Iterable[Operator] = (), *, name: str | None = None) -> None:
        self.operators: list[Operator] = list(operators)
        self.name = name
        self.label = name or self._derive_label()

    def _derive_label(self) -> str:
        inner = " -> ".join(op.label for op in self.operators) or "empty"
        return f"PIPELINE[{inner}]"

    def _run(self, state: ExecutionState) -> ExecutionState:
        for operator in self.operators:
            state = operator.apply(state)
        return state

    def run(self, state: ExecutionState) -> ExecutionState:
        """Execute the pipeline (alias of :meth:`apply`)."""
        return self.apply(state)

    def __rshift__(self, other: Operator) -> "Pipeline":
        if isinstance(other, Pipeline) and other.name is None:
            combined = self.operators + other.operators
        else:
            combined = self.operators + [other]
        return Pipeline(combined, name=self.name)

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self.operators)

    def __getitem__(self, index: int) -> Operator:
        return self.operators[index]
