"""The metadata store M: control signals guiding conditional execution.

``Metadata`` is the M in SPEAR's ``(P, C, M)`` execution state (paper §3.2).
It carries confidence scores, latencies, retry counts, token usage and any
other diagnostic signals.  CHECK operators query M to decide whether to
apply refinements or fallback logic, and the optimizer mines M (via the
ref_log) for cost-based refinement planning.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import MetadataError

__all__ = ["Metadata"]

# Well-known signal names used across the package.  Using constants keeps
# operator code and optimizer code agreeing on spelling.
CONFIDENCE = "confidence"
LATENCY = "latency"
RETRIES = "retries"
PROMPT_TOKENS = "prompt_tokens"
CACHED_TOKENS = "cached_tokens"
OUTPUT_TOKENS = "output_tokens"
CACHE_HIT_RATE = "cache_hit_rate"


class Metadata:
    """Signal store with per-signal history and simple aggregation."""

    def __init__(self, initial: Mapping[str, Any] | None = None) -> None:
        self._values: dict[str, Any] = dict(initial or {})
        self._history: dict[str, list[Any]] = {
            key: [value] for key, value in self._values.items()
        }

    # -- mapping protocol -------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise MetadataError(f"unknown metadata signal: {key!r}") from None

    def __setitem__(self, key: str, value: Any) -> None:
        self.set(key, value)

    def __contains__(self, key: object) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def get(self, key: str, default: Any = None) -> Any:
        """Return the latest value of ``key`` or ``default`` when absent."""
        return self._values.get(key, default)

    def keys(self) -> list[str]:
        """All signal names."""
        return list(self._values)

    # -- signal updates ----------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        """Record a new observation of signal ``key``."""
        self._values[key] = value
        self._history.setdefault(key, []).append(value)

    def increment(self, key: str, amount: float = 1) -> float:
        """Add ``amount`` to a numeric signal (creating it at 0)."""
        current = self._values.get(key, 0)
        if not isinstance(current, (int, float)):
            raise MetadataError(
                f"cannot increment non-numeric signal {key!r} ({current!r})"
            )
        updated = current + amount
        self.set(key, updated)
        return updated

    def update(self, values: Mapping[str, Any]) -> None:
        """Record several signals at once."""
        for key, value in values.items():
            self.set(key, value)

    # -- history and aggregation ---------------------------------------------

    def history(self, key: str) -> list[Any]:
        """All observed values of ``key``, oldest first."""
        return list(self._history.get(key, []))

    def mean(self, key: str) -> float:
        """Arithmetic mean of a numeric signal's history."""
        values = self._history.get(key)
        if not values:
            raise MetadataError(f"no history for signal {key!r}")
        numeric = [value for value in values if isinstance(value, (int, float))]
        if not numeric:
            raise MetadataError(f"signal {key!r} has no numeric history")
        return sum(numeric) / len(numeric)

    def last_n(self, key: str, n: int) -> list[Any]:
        """The most recent ``n`` observations of ``key``."""
        return self._history.get(key, [])[-n:]

    def as_dict(self) -> dict[str, Any]:
        """Latest value of every signal, as a plain dict."""
        return dict(self._values)

    def fork(self) -> "Metadata":
        """Copy the metadata for branch/shadow execution."""
        copy = Metadata()
        copy._values = dict(self._values)
        copy._history = {key: list(values) for key, values in self._history.items()}
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Metadata({self._values!r})"
