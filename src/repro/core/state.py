"""The SPEAR execution state: the ``(P, C, M)`` triple plus runtime services.

Paper §3.2–3.3: the prompt algebra is *closed under composition* — every
operator consumes and produces the triple ``(P, C, M)``.  In this
implementation the triple is threaded through operators as a single
:class:`ExecutionState` object that also carries the runtime services an
operator may need: the LLM backend, retrieval sources, delegation agents,
the view registry, the structured event log, and the virtual clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.core.context import Context
from repro.core.metadata import Metadata
from repro.core.store import PromptStore
from repro.errors import DelegationError, RetrievalError
from repro.runtime.clock import VirtualClock
from repro.runtime.events import EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.views import ViewRegistry

__all__ = ["ExecutionState"]

#: A retrieval source: called with (state, query) and returning the
#: retrieved payload to store in C.  ``query`` may be None for sources
#: that need no parameters.
SourceFn = Callable[["ExecutionState", Any], Any]


class ExecutionState:
    """Everything an operator needs: P, C, M and runtime services."""

    def __init__(
        self,
        *,
        prompts: PromptStore | None = None,
        context: Context | None = None,
        metadata: Metadata | None = None,
        model: Any = None,
        views: "ViewRegistry | None" = None,
        events: EventLog | None = None,
        clock: VirtualClock | None = None,
    ) -> None:
        self.prompts = prompts if prompts is not None else PromptStore()
        self.context = context if context is not None else Context()
        self.metadata = metadata if metadata is not None else Metadata()
        #: the LLM backend (a :class:`repro.llm.model.SimulatedLLM` or any
        #: object with a compatible ``generate`` method); None means GEN
        #: and assisted refinement are unavailable.
        self.model = model
        self.events = events if events is not None else EventLog()
        self.clock = clock if clock is not None else VirtualClock()
        #: optional :class:`repro.runtime.result_cache.ResultCache` (or a
        #: read-only view); None disables operator-level result caching.
        self.result_cache: Any = None
        #: optional :class:`repro.resilience.runtime.ResilienceRuntime`;
        #: when set, GEN routes generation calls through it (retries,
        #: circuit breakers, degraded fallback).  Forked lane states share
        #: the same runtime object so breakers guard the model globally.
        self.resilience: Any = None
        self._views = views
        self._sources: dict[str, SourceFn] = {}
        self._pure_sources: set[str] = set()
        self._agents: dict[str, Any] = {}

    # -- convenient aliases matching the paper's notation -------------------

    @property
    def P(self) -> PromptStore:  # noqa: N802 - paper notation
        """The prompt store (paper's P)."""
        return self.prompts

    @property
    def C(self) -> Context:  # noqa: N802 - paper notation
        """The runtime context (paper's C)."""
        return self.context

    @property
    def M(self) -> Metadata:  # noqa: N802 - paper notation
        """The metadata store (paper's M)."""
        return self.metadata

    # -- views ---------------------------------------------------------------

    @property
    def views(self) -> "ViewRegistry":
        """The view registry, created lazily on first access."""
        if self._views is None:
            from repro.core.views import ViewRegistry

            self._views = ViewRegistry()
        return self._views

    # -- retrieval sources ----------------------------------------------------

    def register_source(self, name: str, fn: SourceFn, *, pure: bool = False) -> None:
        """Register a retrieval source usable by ``RET[name]``.

        Mark deterministic sources (same query → same payload, no side
        effects) with ``pure=True`` to make their RET applications
        eligible for the operator-level result cache.
        """
        self._sources[name] = fn
        if pure:
            self._pure_sources.add(name)
        else:
            self._pure_sources.discard(name)

    def is_pure_source(self, name: str) -> bool:
        """Whether ``name`` was registered as a pure (cacheable) source."""
        return name in self._pure_sources

    def source(self, name: str) -> SourceFn:
        """Look up a retrieval source; raises :class:`RetrievalError`."""
        try:
            return self._sources[name]
        except KeyError:
            known = sorted(self._sources)
            raise RetrievalError(
                f"unknown retrieval source {name!r}; registered: {known}"
            ) from None

    def sources(self) -> list[str]:
        """Names of all registered retrieval sources."""
        return sorted(self._sources)

    # -- delegation agents ------------------------------------------------------

    def register_agent(self, name: str, agent: Any) -> None:
        """Register an agent usable by ``DELEGATE[name, payload]``."""
        self._agents[name] = agent

    def agent(self, name: str) -> Any:
        """Look up an agent; raises :class:`DelegationError`."""
        try:
            return self._agents[name]
        except KeyError:
            known = sorted(self._agents)
            raise DelegationError(
                f"unknown agent {name!r}; registered: {known}"
            ) from None

    def agents(self) -> list[str]:
        """Names of all registered agents."""
        return sorted(self._agents)

    # -- template rendering -------------------------------------------------------

    def render_prompt(self, key: str, extra: Mapping[str, Any] | None = None) -> str:
        """Render prompt ``key`` against the current context (plus ``extra``)."""
        values = self.context.as_dict()
        if extra:
            values.update(extra)
        return self.prompts[key].render(values)

    # -- forking for branches / shadow execution -----------------------------------

    def fork(self, *, share_prompts: bool = True) -> "ExecutionState":
        """Create a branch state.

        Context and metadata are copied (branches must not see each other's
        writes); the prompt store is shared by default because branches
        typically refine *different* keys, and MERGE reconciles any that
        diverge.  Pass ``share_prompts=False`` for fully isolated shadow
        execution.
        """
        if share_prompts:
            prompts = self.prompts
        else:
            prompts = PromptStore()
            for key in self.prompts.keys():
                prompts[key] = self.prompts[key].clone()
        forked = ExecutionState(
            prompts=prompts,
            context=self.context.fork(),
            metadata=self.metadata.fork(),
            model=self.model,
            views=self._views,
            events=self.events,
            clock=self.clock,
        )
        forked.result_cache = self.result_cache
        forked.resilience = self.resilience
        forked._sources = dict(self._sources)
        forked._pure_sources = set(self._pure_sources)
        forked._agents = dict(self._agents)
        return forked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionState(P={len(self.prompts)} prompts, "
            f"C={len(self.context)} values, M={len(self.metadata)} signals)"
        )
