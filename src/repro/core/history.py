"""Prompt histories: querying and manipulating ref_logs (paper §4.3).

SPEAR tracks each prompt fragment's evolution through its embedded
``ref_log``.  This module provides the introspection surface over those
logs: provenance traces, version diffs, rollbacks, and export in the
paper's JSON-ish form.  Cross-prompt *analytics* (which refiners work?)
live in :mod:`repro.core.meta`.
"""

from __future__ import annotations

from typing import Any

from repro.core.derived import prompt_diff
from repro.core.entry import PromptEntry, RefAction, RefLogRecord
from repro.core.store import PromptStore

__all__ = [
    "trace",
    "diff_versions",
    "rollback_to",
    "refinements_of",
    "triggered_refinements",
    "export_history",
]


def trace(entry: PromptEntry) -> list[str]:
    """Human-readable provenance trace, one line per refinement step."""
    lines = []
    for record in entry.ref_log:
        parts = [f"v{record.version}", record.action.value, record.function]
        if record.mode is not None:
            parts.append(f"mode={record.mode.value}")
        if record.condition is not None:
            parts.append(f"when {record.condition}")
        if "outcome_confidence" in record.signals:
            parts.append(
                f"outcome_conf={record.signals['outcome_confidence']:.2f}"
            )
        lines.append(" ".join(parts))
    return lines


def diff_versions(entry: PromptEntry, version_1: int, version_2: int) -> dict[str, Any]:
    """Structural diff between two historical versions of one prompt."""
    return prompt_diff(entry.text_at(version_1), entry.text_at(version_2))


def rollback_to(store: PromptStore, key: str, version: int) -> RefLogRecord:
    """Roll ``store[key]`` back to an earlier version (logged, reversible)."""
    return store[key].rollback(version)


def refinements_of(entry: PromptEntry, function: str) -> list[RefLogRecord]:
    """All ref_log records produced by the named refinement function."""
    return [record for record in entry.ref_log if record.function == function]


def triggered_refinements(entry: PromptEntry) -> list[RefLogRecord]:
    """Records that fired from a CHECK condition (vs unconditional edits)."""
    return [record for record in entry.ref_log if record.condition is not None]


def export_history(store: PromptStore) -> dict[str, list[dict[str, Any]]]:
    """Serialize every entry's ref_log — the input to meta analysis/replay."""
    return {key: store.history(key) for key in store.keys()}


def creation_record(entry: PromptEntry) -> RefLogRecord:
    """The CREATE record of an entry (always present, always first)."""
    record = entry.ref_log[0]
    if record.action is not RefAction.CREATE:
        # Clones may start mid-history; search for the CREATE.
        for candidate in entry.ref_log:
            if candidate.action is RefAction.CREATE:
                return candidate
    return record
