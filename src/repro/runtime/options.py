"""Unified runner configuration: one options object for all runners.

:class:`RuntimeOptions` consolidates the service knobs that used to be
scattered (with varying names) across the :class:`~repro.runtime.executor.Executor`,
:class:`~repro.runtime.parallel.ParallelBatchRunner`, and
:class:`~repro.runtime.incremental.RefinementLoop` constructors — the
model backend, view registry, virtual clock, observability collector,
metrics registry, operator-level result cache, and the resilience
runtime.  All three runners accept ``options=``; their legacy per-knob
keyword arguments — deprecated since the options object landed — now
raise a clean :class:`TypeError` naming the ``options=`` replacement.

Passing both ``options=`` and a legacy keyword for the same knob is an
error (there is no sensible precedence between them).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.views import ViewRegistry
    from repro.obs.collector import ObsCollector
    from repro.obs.metrics import MetricsRegistry
    from repro.resilience.runtime import ResilienceRuntime
    from repro.runtime.clock import VirtualClock
    from repro.runtime.result_cache import ResultCache

__all__ = ["RuntimeOptions"]


@dataclass
class RuntimeOptions:
    """Shared runtime services for Executor / ParallelBatchRunner / RefinementLoop.

    Every field is optional; a runner uses its usual default for any field
    left as None.  One options object can be shared by several runners —
    it is read, never mutated, by the runners.
    """

    #: the LLM backend (usually a :class:`~repro.llm.model.SimulatedLLM`).
    model: Any = None
    #: the view registry shared by built states.
    views: "ViewRegistry | None" = None
    #: the virtual clock; defaults to the model's clock when it has one.
    clock: "VirtualClock | None" = None
    #: observability collector subscribed to every built state's log.
    collector: "ObsCollector | None" = None
    #: metrics registry for runner-level instrumentation (lanes, batches).
    metrics: "MetricsRegistry | None" = None
    #: operator-level result cache shared by built states.
    result_cache: "ResultCache | None" = None
    #: resilience runtime (retries / breakers / fallback) attached to
    #: every built state; forked lane states share the same object.
    resilience: "ResilienceRuntime | None" = None
    #: run the static checker before executing; error diagnostics raise
    #: :class:`~repro.errors.SpearValidationError` *before* the first
    #: model call.  Off by default: clean-path runs stay byte-identical.
    strict: bool = False
    #: directory for the persistent run ledger; each top-level run
    #: (Executor / ParallelBatchRunner / RefinementLoop) persists a
    #: ``<ledger_dir>/<run_id>/`` directory with manifest, events,
    #: report, attribution, and time series.  None (default) disables
    #: the ledger entirely — the clean path writes nothing.
    ledger_dir: Any = None
    #: simulated seconds between time-series watermark samples written
    #: to the ledger's ``series.jsonl``.
    series_interval: float = 1.0
    #: generation-engine selection.  ``None`` lets each runner pick its
    #: default (the parallel runner uses the continuous scheduler, the
    #: sequential Executor stays direct); ``True`` /
    #: :class:`~repro.runtime.scheduler.SchedulerConfig` forces the
    #: continuous engine on; ``False`` forces the legacy full-barrier
    #: micro-batcher.  The config's ``prefix_group_blocks`` /
    #: ``prefix_dedup`` knobs control prefix-aware admission: grouping
    #: shared-trunk requests into the same step and charging each step's
    #: shared trunk prefill once instead of once per request.
    scheduler: Any = None
    #: default priority class for scheduled generation calls — a
    #: :class:`~repro.runtime.scheduler.PriorityClass`, its string name,
    #: or (for the parallel runner) a callable ``item -> priority``
    #: resolved per item.
    priority: Any = None
    #: admission deadline in virtual seconds from each call's arrival;
    #: the scheduler orders equal-priority work by earliest deadline.
    #: For the parallel runner this may also be a callable ``item ->
    #: float | None``.  Setting it without a scheduler enabled no-ops
    #: (``spear check`` flags this as SPEAR145).
    deadline_s: Any = None

    def replace(self, **overrides: Any) -> "RuntimeOptions":
        """A copy with ``overrides`` applied (None fields stay inherited)."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        unknown = set(overrides) - set(values)
        if unknown:
            raise TypeError(f"unknown RuntimeOptions fields: {sorted(unknown)}")
        values.update(overrides)
        return RuntimeOptions(**values)


def resolve_legacy_kwargs(
    owner: str,
    options: RuntimeOptions | None,
    legacy: dict[str, Any],
) -> RuntimeOptions:
    """Reject the removed per-knob kwargs in favour of :class:`RuntimeOptions`.

    ``legacy`` maps field name → value-as-passed (None meaning "not
    passed").  The per-knob keywords were deprecated when the options
    object landed and have now completed their migration: any non-None
    legacy value raises a :class:`TypeError` that names the exact
    ``options=RuntimeOptions(...)`` replacement.
    """
    used = {name: value for name, value in legacy.items() if value is not None}
    if options is not None:
        if used:
            raise TypeError(
                f"{owner}: pass either options= or the legacy keyword(s) "
                f"{sorted(used)}, not both"
            )
        return options
    if used:
        names = ", ".join(f"{name}=" for name in sorted(used))
        replacement = ", ".join(f"{name}=..." for name in sorted(used))
        raise TypeError(
            f"{owner}({names}) was removed; pass "
            f"options=RuntimeOptions({replacement}) instead"
        )
    return RuntimeOptions()
