"""Execution-trace rendering: the event log as a readable timeline.

The structured event log (paper §6) powers introspection; this module
turns it into the human-facing views a developer debugging an adaptive
pipeline wants:

- :func:`render_timeline` — one line per semantic event, indented by
  operator nesting, with timestamps and key payload fields;
- :func:`summarize_run` — aggregate counts and latency per operator kind.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
from enum import Enum
from pathlib import Path
from typing import Any

from repro.errors import SpearError
from repro.runtime.events import Event, EventKind, EventLog

__all__ = [
    "render_timeline",
    "summarize_run",
    "operator_wall_times",
    "export_events",
    "import_events",
]

#: events that open / close a nesting level.
_OPENERS = {EventKind.OPERATOR_START}
_CLOSERS = {EventKind.OPERATOR_END}

#: payload fields worth showing per event kind, in display order.
_DETAIL_FIELDS = {
    EventKind.RETRIEVE: ("source", "into", "prompt_based"),
    EventKind.GENERATE: ("prompt_key", "task", "confidence", "latency"),
    EventKind.REFINE: ("key", "action", "mode", "condition", "version"),
    EventKind.CHECK: ("condition", "outcome"),
    EventKind.MERGE: ("into", "strategy"),
    EventKind.DELEGATE: ("agent", "into"),
    EventKind.VIEW_EXPAND: ("view", "key"),
    EventKind.PLAN: ("chosen", "skipped", "risk", "refined"),
    EventKind.SHADOW: ("phase",),
    EventKind.BATCH: ("mode", "items", "failures", "workers", "elapsed", "throughput"),
    EventKind.ERROR: ("error", "message"),
}


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _details(event: Event) -> str:
    fields = _DETAIL_FIELDS.get(event.kind, ())
    parts = [
        f"{name}={_format_value(event.payload[name])}"
        for name in fields
        if event.payload.get(name) is not None
    ]
    return f" ({', '.join(parts)})" if parts else ""


def render_timeline(log: EventLog, *, include_lifecycle: bool = False) -> str:
    """Render the log as an indented timeline.

    Semantic events (generate, refine, check, ...) are always shown;
    operator start/end lifecycle events control indentation and are
    printed only when ``include_lifecycle`` is true.
    """
    lines: list[str] = []
    depth = 0
    for event in log:
        if event.kind in _CLOSERS:
            depth = max(depth - 1, 0)
            if include_lifecycle:
                lines.append(f"{event.at:8.2f}s  {'  ' * depth}</{event.operator}>")
            continue
        indent = "  " * depth
        if event.kind in _OPENERS:
            if include_lifecycle:
                lines.append(f"{event.at:8.2f}s  {indent}<{event.operator}>")
            depth += 1
            continue
        lines.append(
            f"{event.at:8.2f}s  {indent}{event.kind.value:<10} "
            f"{event.operator}{_details(event)}"
        )
    return "\n".join(lines)


#: marker key used to tag enum / dataclass payload values in JSONL exports.
_TAG = "__spear__"


def _type_spec(value: object) -> str:
    cls = type(value)
    return f"{cls.__module__}:{cls.__qualname__}"


#: modules whose types may be rebuilt from a trace file.  Trace files are
#: untrusted input (``spear stats`` / ``spear trace`` accept any path), so
#: resolving an arbitrary ``module:qualname`` and calling it would be
#: arbitrary code execution — only types from this package qualify.
_TRUSTED_PACKAGE = "repro"


def _resolve_type(spec: str, expected: str) -> type:
    module_name, _, qualname = spec.partition(":")
    if module_name != _TRUSTED_PACKAGE and not module_name.startswith(
        _TRUSTED_PACKAGE + "."
    ):
        raise SpearError(
            f"refusing to rebuild payload value of type {spec!r}: trace "
            f"files may only reference types from the "
            f"{_TRUSTED_PACKAGE!r} package"
        )
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as error:
        raise SpearError(
            f"cannot rebuild payload value of type {spec!r}: {error}"
        ) from error
    if expected == "enum":
        valid = isinstance(obj, type) and issubclass(obj, Enum)
    else:
        valid = isinstance(obj, type) and dataclasses.is_dataclass(obj)
    if not valid:
        raise SpearError(
            f"refusing to rebuild payload value of type {spec!r}: "
            f"not {'an enum' if expected == 'enum' else 'a dataclass'} type"
        )
    return obj


def _encode_value(value: Any) -> Any:
    """Encode enums and dataclasses losslessly; reject everything else.

    This walks the payload tree *before* ``json.dumps`` because str/int
    backed enums (``RefAction``, ``EventKind``…) are JSON-natives to the
    encoder and would silently degrade to bare strings otherwise.
    Anything outside JSON-natives / enums / dataclasses fails loudly
    rather than degrading to ``repr`` strings that :func:`import_events`
    cannot undo.
    """
    if isinstance(value, Enum):
        return {
            _TAG: "enum",
            "type": _type_spec(value),
            "value": _encode_value(value.value),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            _TAG: "dataclass",
            "type": _type_spec(value),
            "fields": {
                field.name: _encode_value(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"event payload dict key {key!r} is not a string; "
                    "JSONL export requires string keys"
                )
        return {key: _encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"event payload value {value!r} ({type(value).__name__}) is not "
        "JSONL-exportable; use JSON types, enums, or dataclasses"
    )


def _object_hook(record: dict[str, Any]) -> Any:
    tag = record.get(_TAG)
    if tag == "enum":
        return _resolve_type(record["type"], "enum")(record["value"])
    if tag == "dataclass":
        return _resolve_type(record["type"], "dataclass")(**record["fields"])
    return record


def export_events(log: EventLog, path: str | Path) -> Path:
    """Write the log as JSON Lines (one event per line); returns the path.

    JSONL is the interchange format for offline analysis — ship a run's
    trace to a notebook, diff two runs, or feed ``spear stats`` /
    ``spear trace``.  Enum and dataclass payload values are encoded with
    a type tag so :func:`import_events` rebuilds them losslessly; other
    non-JSON values raise :class:`TypeError` instead of degrading silently.
    """
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for event in log:
            handle.write(json.dumps(_encode_value(event.to_dict())))
            handle.write("\n")
    return target


def import_events(path: str | Path) -> EventLog:
    """Rebuild an :class:`EventLog` from a JSONL export.

    Sequence numbers are regenerated (append-only invariant); kinds,
    operators, timestamps and payloads — including tagged enum and
    dataclass values — are preserved.  An empty file or a malformed /
    truncated line raises :class:`SpearError` with the offending line
    number, so CLI callers can report it cleanly instead of leaking a
    ``JSONDecodeError`` traceback.
    """
    source = Path(path)
    log = EventLog()
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line, object_hook=_object_hook)
            except json.JSONDecodeError as error:
                raise SpearError(
                    f"{source}: line {line_number} is not valid JSON "
                    f"(truncated trace?): {error.msg}"
                ) from error
            if not isinstance(record, dict):
                raise SpearError(
                    f"{source}: line {line_number} is not an event record"
                )
            try:
                log.record(
                    EventKind(record["kind"]),
                    record["operator"],
                    at=float(record["at"]),
                    payload=record.get("payload", {}),
                )
            except (KeyError, ValueError, TypeError) as error:
                raise SpearError(
                    f"{source}: line {line_number} is not a valid event "
                    f"record: {error}"
                ) from error
    if len(log) == 0:
        raise SpearError(f"{source}: trace file contains no events")
    return log


def operator_wall_times(log: EventLog) -> dict[str, dict[str, float]]:
    """Per-operator wall time derived from START/END lifecycle pairs.

    Pairs are matched per operator label (LIFO, so re-entrant operators
    accumulate correctly).  Unbalanced logs are handled gracefully:
    an END without a START is ignored, and a START never closed counts
    toward ``unclosed`` without contributing wall time.
    """
    open_starts: dict[str, list[float]] = {}
    stats: dict[str, dict[str, float]] = {}
    for event in log:
        if event.kind in _OPENERS:
            open_starts.setdefault(event.operator, []).append(event.at)
        elif event.kind in _CLOSERS:
            starts = open_starts.get(event.operator)
            if not starts:
                continue  # unbalanced: END with no matching START
            started = starts.pop()
            bucket = stats.setdefault(
                event.operator, {"count": 0, "wall_time": 0.0, "unclosed": 0}
            )
            bucket["count"] += 1
            bucket["wall_time"] += max(event.at - started, 0.0)
    for operator, starts in open_starts.items():
        if starts:  # unbalanced: STARTs never closed
            bucket = stats.setdefault(
                operator, {"count": 0, "wall_time": 0.0, "unclosed": 0}
            )
            bucket["unclosed"] += len(starts)
    return stats


def summarize_run(log: EventLog) -> dict[str, dict[str, float]]:
    """Aggregate per-kind counts / latency plus per-operator wall time.

    Semantic events land in per-kind buckets (``count`` and, where the
    payload carries one, summed ``latency``).  Lifecycle events are not
    counted as a kind, but their START/END pairs are distilled into the
    ``"operators"`` entry: per-operator-label ``count``, ``wall_time``,
    and ``unclosed`` (starts with no matching end in a truncated log).
    """
    summary: dict[str, dict[str, float]] = {}
    for event in log:
        if event.kind in _OPENERS or event.kind in _CLOSERS:
            continue
        bucket = summary.setdefault(
            event.kind.value, {"count": 0, "latency": 0.0}
        )
        bucket["count"] += 1
        latency = event.payload.get("latency")
        if isinstance(latency, (int, float)):
            bucket["latency"] += float(latency)
    walls = operator_wall_times(log)
    if walls:
        summary["operators"] = walls  # type: ignore[assignment]
    return summary
