"""Execution-trace rendering: the event log as a readable timeline.

The structured event log (paper §6) powers introspection; this module
turns it into the human-facing views a developer debugging an adaptive
pipeline wants:

- :func:`render_timeline` — one line per semantic event, indented by
  operator nesting, with timestamps and key payload fields;
- :func:`summarize_run` — aggregate counts and latency per operator kind.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.runtime.events import Event, EventKind, EventLog

__all__ = ["render_timeline", "summarize_run", "export_events", "import_events"]

#: events that open / close a nesting level.
_OPENERS = {EventKind.OPERATOR_START}
_CLOSERS = {EventKind.OPERATOR_END}

#: payload fields worth showing per event kind, in display order.
_DETAIL_FIELDS = {
    EventKind.RETRIEVE: ("source", "into", "prompt_based"),
    EventKind.GENERATE: ("prompt_key", "task", "confidence", "latency"),
    EventKind.REFINE: ("key", "action", "mode", "condition", "version"),
    EventKind.CHECK: ("condition", "outcome"),
    EventKind.MERGE: ("into", "strategy"),
    EventKind.DELEGATE: ("agent", "into"),
    EventKind.VIEW_EXPAND: ("view", "key"),
    EventKind.PLAN: ("chosen", "skipped", "risk", "refined"),
    EventKind.SHADOW: ("phase",),
    EventKind.ERROR: ("error", "message"),
}


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _details(event: Event) -> str:
    fields = _DETAIL_FIELDS.get(event.kind, ())
    parts = [
        f"{name}={_format_value(event.payload[name])}"
        for name in fields
        if event.payload.get(name) is not None
    ]
    return f" ({', '.join(parts)})" if parts else ""


def render_timeline(log: EventLog, *, include_lifecycle: bool = False) -> str:
    """Render the log as an indented timeline.

    Semantic events (generate, refine, check, ...) are always shown;
    operator start/end lifecycle events control indentation and are
    printed only when ``include_lifecycle`` is true.
    """
    lines: list[str] = []
    depth = 0
    for event in log:
        if event.kind in _CLOSERS:
            depth = max(depth - 1, 0)
            if include_lifecycle:
                lines.append(f"{event.at:8.2f}s  {'  ' * depth}</{event.operator}>")
            continue
        indent = "  " * depth
        if event.kind in _OPENERS:
            if include_lifecycle:
                lines.append(f"{event.at:8.2f}s  {indent}<{event.operator}>")
            depth += 1
            continue
        lines.append(
            f"{event.at:8.2f}s  {indent}{event.kind.value:<10} "
            f"{event.operator}{_details(event)}"
        )
    return "\n".join(lines)


def export_events(log: EventLog, path: str | Path) -> Path:
    """Write the log as JSON Lines (one event per line); returns the path.

    JSONL is the interchange format for offline analysis — ship a run's
    trace to a notebook, diff two runs, or feed a dashboard.
    """
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for event in log:
            handle.write(json.dumps(event.to_dict(), default=repr))
            handle.write("\n")
    return target


def import_events(path: str | Path) -> EventLog:
    """Rebuild an :class:`EventLog` from a JSONL export.

    Sequence numbers are regenerated (append-only invariant); kinds,
    operators, timestamps and payloads are preserved.
    """
    log = EventLog()
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            record = json.loads(line)
            log.emit(
                EventKind(record["kind"]),
                record["operator"],
                at=float(record["at"]),
                **record.get("payload", {}),
            )
    return log


def summarize_run(log: EventLog) -> dict[str, dict[str, float]]:
    """Aggregate per-kind counts and (where present) total latency."""
    summary: dict[str, dict[str, float]] = {}
    for event in log:
        if event.kind in _OPENERS or event.kind in _CLOSERS:
            continue
        bucket = summary.setdefault(
            event.kind.value, {"count": 0, "latency": 0.0}
        )
        bucket["count"] += 1
        latency = event.payload.get("latency")
        if isinstance(latency, (int, float)):
            bucket["latency"] += float(latency)
    return summary
