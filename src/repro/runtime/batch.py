"""Batch execution: map a pipeline over a dataset of items.

The paper's workloads are per-item pipelines over a corpus (summarize +
filter every tweet; QA every patient).  :class:`BatchRunner` runs a
pipeline once per item on a forked state — shared prompt store, model and
caches (so prefix reuse across items behaves like real batched serving),
but isolated context/metadata per item — and aggregates outputs, signals,
and latency.

This module is the *sequential* engine: items run one at a time on the
state's single clock, so batch elapsed is the sum of item latencies.  The
concurrent engine with GEN micro-batching lives in
:mod:`repro.runtime.parallel` and shares :class:`ItemResult` /
:class:`BatchResult` with this one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.runtime.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    # repro.core.state imports repro.runtime.clock; module-level imports of
    # core here would be circular.
    from repro.core.pipeline import Pipeline
    from repro.core.state import ExecutionState

__all__ = [
    "ItemResult",
    "BatchResult",
    "BatchRunner",
    "bind_item",
    "collect_item_result",
    "emit_batch_event",
]


def bind_item(state: "ExecutionState", item: Any) -> None:
    """The default item binder shared by every batch-shaped runner.

    A mapping item is spread into the context key by key; any other
    non-None item lands under ``C["item"]``; None binds nothing.  Pass
    an explicit ``bind`` callback for anything richer (the Table-3
    benchmarks bind ``tweet.text`` under ``C["tweet"]``, for example).
    """
    if item is None:
        return
    if isinstance(item, Mapping):
        for key, value in item.items():
            state.context.put(str(key), value, producer="bind")
    else:
        state.context.put("item", item, producer="bind")


@dataclass(frozen=True)
class ItemResult:
    """Outcome of one item's pipeline run."""

    item: Any
    context: dict[str, Any]
    metadata: dict[str, Any]
    elapsed: float
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        """True when the item's run completed without error."""
        return self.error is None


@dataclass
class BatchResult:
    """Aggregated outcome of a batch run."""

    items: list[ItemResult] = field(default_factory=list)
    elapsed: float = 0.0
    #: worker lanes the batch ran on (1 for the sequential runner).
    workers: int = 1
    #: result-cache activity during this batch (hits/misses/invalidations/
    #: saved_seconds deltas); empty when no cache was attached.  Part of
    #: the shared result protocol (``.output()`` / ``.report`` / ``.cache``).
    cache: dict[str, float] = field(default_factory=dict)

    def outputs(self, label: str) -> list[Any]:
        """Per-item values of C[label] (None where missing or failed)."""
        return [result.context.get(label) for result in self.items]

    def output(self, label: str) -> list[Any]:
        """Shared result protocol: per-item values of ``C[label]``.

        The batch-shaped counterpart of :meth:`RunResult.output` — a
        server dispatching to any runner reads outputs the same way.
        """
        return self.outputs(label)

    @property
    def report(self) -> dict[str, Any]:
        """Shared result protocol: one JSON-ready summary of the run."""
        return {
            "runner": "batch",
            "items": len(self.items),
            "failures": len(self.failures()),
            "workers": self.workers,
            "elapsed": self.elapsed,
            "throughput": self.throughput,
            "cache": dict(self.cache),
        }

    def signals(self, name: str) -> list[Any]:
        """Per-item values of M[name] (None where missing)."""
        return [result.metadata.get(name) for result in self.items]

    def failures(self) -> list[ItemResult]:
        """Items whose run raised."""
        return [result for result in self.items if not result.ok]

    @property
    def mean_item_seconds(self) -> float:
        """Mean simulated seconds per item."""
        if not self.items:
            return 0.0
        return self.elapsed / len(self.items)

    @property
    def throughput(self) -> float:
        """Items per simulated second (0 for an empty or instant batch)."""
        if self.elapsed <= 0.0:
            return 0.0
        return len(self.items) / self.elapsed


def collect_item_result(
    item: Any,
    item_state: "ExecutionState",
    elapsed: float,
    error: Exception | None,
) -> ItemResult:
    """Snapshot one item's forked state into an :class:`ItemResult`.

    Shared by the sequential and parallel runners so both report items
    identically (``*__result`` carrier keys are dropped from the context).
    """
    return ItemResult(
        item=item,
        context={
            key: item_state.context[key]
            for key in item_state.context.keys()
            if not key.endswith("__result")
        },
        metadata=item_state.metadata.as_dict(),
        elapsed=elapsed,
        error=error,
    )


def emit_batch_event(
    state: "ExecutionState",
    batch: BatchResult,
    *,
    mode: str,
    runner: str,
    extra: dict[str, Any] | None = None,
) -> None:
    """Record a ``BATCH`` summary event for the whole run.

    The observability layer rolls these into batch metrics, and
    ``spear stats`` renders them as the batch-runs table.
    """
    payload: dict[str, Any] = {
        "mode": mode,
        "items": len(batch.items),
        "failures": len(batch.failures()),
        "workers": batch.workers,
        "elapsed": batch.elapsed,
        "throughput": batch.throughput,
    }
    if extra:
        payload.update(extra)
    state.events.record(
        EventKind.BATCH, runner, at=state.clock.now, payload=payload
    )


class BatchRunner:
    """Runs a pipeline per item over a shared base state.

    Args:
        base_state: the state carrying the model, sources, agents, views,
            and shared prompt store.  Per item, context/metadata are
            forked so items cannot observe each other's data, while P and
            the model's caches stay shared — matching the paper's batched
            execution with prefix reuse.
        bind: called with (item_state, item) before the pipeline, to place
            the item into the context (e.g. ``state.C["tweet"] = item.text``);
            defaults to :func:`bind_item` (mappings spread into C, other
            items land under ``C["item"]``).
        on_error: ``"raise"`` (default) propagates the first exception;
            ``"collect"`` records it in the ItemResult and continues.
    """

    def __init__(
        self,
        base_state: "ExecutionState",
        *,
        bind: "Callable[[ExecutionState, Any], None] | None" = None,
        on_error: str = "raise",
    ) -> None:
        if on_error not in ("raise", "collect"):
            raise ValueError(f"on_error must be 'raise' or 'collect': {on_error!r}")
        self.base_state = base_state
        self.bind = bind if bind is not None else bind_item
        self.on_error = on_error

    def run(
        self,
        pipeline: "Pipeline",
        items: "Iterable[Any] | Sequence[Any] | None" = None,
    ) -> BatchResult:
        """Execute ``pipeline`` once per item; returns the aggregate."""
        if items is None:
            items = []
        batch = BatchResult()
        clock = self.base_state.clock
        cache = self.base_state.result_cache
        cache_before = cache.snapshot() if cache is not None else None
        batch_start = clock.now
        for item in items:
            item_state = self.base_state.fork()
            item_start = clock.now
            error: Exception | None = None
            try:
                # bind runs inside the error policy: a failing bind is an
                # item failure like any other, not a batch abort under
                # on_error="collect".
                self.bind(item_state, item)
                item_state = pipeline.apply(item_state)
            except Exception as exc:  # noqa: BLE001 - collected by policy
                if self.on_error == "raise":
                    raise
                error = exc
            batch.items.append(
                collect_item_result(
                    item, item_state, clock.now - item_start, error
                )
            )
        batch.elapsed = clock.now - batch_start
        if cache is not None and cache_before is not None:
            after = cache.snapshot()
            batch.cache = {
                key: after[key] - cache_before[key]
                for key in ("hits", "misses", "invalidations", "saved_seconds")
            }
        emit_batch_event(
            self.base_state, batch, mode="sequential", runner="BatchRunner"
        )
        return batch
