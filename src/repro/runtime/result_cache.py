"""Operator-level result cache with version-precise invalidation (paper §5).

SPEAR's optimization story pairs token-level prefix caching and the
structured prompt cache with a third tier: because prompts are versioned
first-class data, the runtime knows exactly which *operator outputs* are
still valid after a refinement.  :class:`ResultCache` memoizes the
``(C, M)`` delta of cacheable operator applications, keyed by the content
fingerprint of their declared inputs (:class:`~repro.core.footprint.Footprint`):
operator identity + params, referenced prompt keys at their current
versions, the context slots the rendered template reads, and the model
backend.

On a hit the executor splices the cached delta back into the state, emits
a synthetic ``CACHE_HIT`` event, and advances the virtual clock by
:attr:`ResultCache.hit_cost` (~0) instead of the simulated LLM latency.
Replay re-applies the *recorded mutation operations* (context puts,
metadata sets/increments), not absolute snapshots, so counters like
``gen_calls`` and metadata history evolve exactly as a live execution
would — cached runs stay byte-identical to uncached ones.

Invalidation is version-precise and transitive.  Each entry records
dependency edges at insert time: the prompt versions it read, the
``(key, value-digest)`` pairs it read from C, and the pairs it wrote.
When a refinement bumps a prompt version (observed via ``REFINE`` /
``MERGE`` / ``VIEW_EXPAND`` events on a subscribed log), entries pinned
to older versions of that key die, then the closure chases writer →
reader edges: anything that consumed a dead entry's output dies too.
Entries that depend on *other* prompts — or on the refined prompt at its
new version — survive and keep hitting.

Correctness notes:

- Fingerprints include a digest of the prompt *text*, not just the
  version number, so cloned stores whose histories diverged at the same
  version can never alias.
- Stale entries can never produce a hit even if an invalidation event is
  missed (manual ``entry.record`` calls, lane logs folded late): the
  version/text digest in the fingerprint already misses.  Event-driven
  invalidation exists to reclaim memory and to account precisely.
- Thread-safe: parallel worker lanes share one cache under a reentrant
  lock.  Two lanes may race to execute the same miss; both compute the
  identical delta (execution is deterministic), so duplicate inserts are
  harmless.
- Shadow runs (:func:`repro.runtime.shadow.shadow_run`) share the cache
  through :meth:`ResultCache.read_only`: hits splice, but nothing the
  shadow does can insert or invalidate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.core.footprint import Footprint, stable_digest
from repro.runtime.events import EventKind, EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import Context
    from repro.core.metadata import Metadata
    from repro.core.state import ExecutionState
    from repro.core.store import PromptStore

__all__ = ["CachedDelta", "ReadOnlyResultCache", "ResultCache"]

# Mutation-op tags recorded during live execution and re-applied on hits.
_CTX_PUT = "ctx_put"
_CTX_DEL = "ctx_del"
_META_SET = "meta_set"
_META_INC = "meta_inc"


@dataclass(frozen=True)
class CachedDelta:
    """The replayable effect of one operator application.

    ``ops`` is the exact mutation sequence the live run performed against
    C and M; ``elapsed`` is the simulated time the live run cost (what a
    hit saves); ``write_digests`` are the ``(key, value-digest)`` pairs
    written into C, used to chain transitive invalidation edges.
    """

    footprint: Footprint
    ops: tuple[tuple[Any, ...], ...]
    elapsed: float
    write_digests: tuple[tuple[str, str], ...]

    def replay(self, state: "ExecutionState") -> None:
        """Re-apply the recorded mutations to ``state``."""
        context = state.context
        metadata = state.metadata
        for op in self.ops:
            tag = op[0]
            if tag == _CTX_PUT:
                context.put(op[1], op[2], producer=op[3])
            elif tag == _CTX_DEL:
                if op[1] in context:
                    del context[op[1]]
            elif tag == _META_SET:
                metadata.set(op[1], op[2])
            elif tag == _META_INC:
                metadata.increment(op[1], op[2])


class _RecordingContext:
    """Context proxy that forwards everything and logs mutations."""

    def __init__(self, inner: "Context", ops: list[tuple[Any, ...]]) -> None:
        self._inner = inner
        self._ops = ops

    # mutations — recorded, then forwarded
    def put(self, key: str, value: Any, *, producer: str = "unknown") -> None:
        self._ops.append((_CTX_PUT, key, value, producer))
        self._inner.put(key, value, producer=producer)

    def update(
        self, values: Mapping[str, Any], *, producer: str = "unknown"
    ) -> None:
        for key, value in values.items():
            self.put(key, value, producer=producer)

    def __setitem__(self, key: str, value: Any) -> None:
        self.put(key, value)

    def __delitem__(self, key: str) -> None:
        self._ops.append((_CTX_DEL, key))
        del self._inner[key]

    # reads — plain delegation (dunders bypass __getattr__)
    def __getitem__(self, key: str) -> Any:
        return self._inner[key]

    def __contains__(self, key: object) -> bool:
        return key in self._inner

    def __iter__(self):
        return iter(self._inner)

    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class _RecordingMetadata:
    """Metadata proxy that forwards everything and logs mutations."""

    def __init__(self, inner: "Metadata", ops: list[tuple[Any, ...]]) -> None:
        self._inner = inner
        self._ops = ops

    def set(self, key: str, value: Any) -> None:
        self._ops.append((_META_SET, key, value))
        self._inner.set(key, value)

    def __setitem__(self, key: str, value: Any) -> None:
        self.set(key, value)

    def increment(self, key: str, amount: float = 1) -> float:
        # Recorded as a *relative* op: replaying under a different prior
        # value must still add, not clobber with a stale absolute.
        self._ops.append((_META_INC, key, amount))
        return self._inner.increment(key, amount)

    def update(self, values: Mapping[str, Any]) -> None:
        for key, value in values.items():
            self.set(key, value)

    def __getitem__(self, key: str) -> Any:
        return self._inner[key]

    def __contains__(self, key: object) -> bool:
        return key in self._inner

    def __iter__(self):
        return iter(self._inner)

    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class _Recording:
    """Swaps recording proxies into a state for one operator application."""

    def __init__(self, state: "ExecutionState") -> None:
        self.ops: list[tuple[Any, ...]] = []
        self._state = state
        self._context = state.context
        self._metadata = state.metadata
        state.context = _RecordingContext(self._context, self.ops)  # type: ignore[assignment]
        state.metadata = _RecordingMetadata(self._metadata, self.ops)  # type: ignore[assignment]

    def restore(self) -> None:
        """Put the real C and M back (always runs, hit or raise)."""
        self._state.context = self._context
        self._state.metadata = self._metadata

    def delta(self, footprint: Footprint, elapsed: float) -> CachedDelta:
        """Freeze the recorded mutations into a cacheable delta."""
        writes = tuple(
            dict.fromkeys(
                (op[1], stable_digest(op[2]))
                for op in self.ops
                if op[0] == _CTX_PUT
            )
        )
        return CachedDelta(
            footprint=footprint,
            ops=tuple(self.ops),
            elapsed=elapsed,
            write_digests=writes,
        )


class ResultCache:
    """LRU memo of operator results, with dependency-edge invalidation."""

    def __init__(self, *, capacity: int = 2048, hit_cost: float = 0.001) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if hit_cost < 0:
            raise ValueError(f"hit_cost must be >= 0, got {hit_cost}")
        self.capacity = capacity
        #: simulated seconds a cache hit charges to the virtual clock —
        #: the lookup is not free, but it is ~0 next to an LLM call.
        self.hit_cost = hit_cost
        self._entries: OrderedDict[str, CachedDelta] = OrderedDict()
        #: prompt key → digests of entries that read it (any version).
        self._by_prompt: dict[str, set[str]] = {}
        #: (context key, value digest) → digests of entries that read it.
        self._by_read: dict[tuple[str, str], set[str]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.saved_seconds = 0.0
        self._lock = threading.RLock()
        self._watched: set[int] = set()

    # -- the executor-facing protocol ---------------------------------------

    def lookup(self, footprint: Footprint) -> CachedDelta | None:
        """Return the cached delta for ``footprint``, counting hit/miss."""
        digest = footprint.digest
        with self._lock:
            delta = self._entries.get(digest)
            if delta is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            self.saved_seconds += max(delta.elapsed - self.hit_cost, 0.0)
            return delta

    def recorder(self, state: "ExecutionState") -> _Recording | None:
        """Start recording a live execution for later insertion."""
        return _Recording(state)

    def insert(self, footprint: Footprint, delta: CachedDelta) -> None:
        """Store ``delta`` and record its dependency edges."""
        digest = footprint.digest
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
                return
            self._entries[digest] = delta
            for key in footprint.prompt_keys:
                self._by_prompt.setdefault(key, set()).add(digest)
            for pair in footprint.context_reads:
                self._by_read.setdefault(pair, set()).add(digest)
            while len(self._entries) > self.capacity:
                oldest, _ = next(iter(self._entries.items())), None
                self._remove_locked(oldest[0])
                self.evictions += 1

    # -- invalidation --------------------------------------------------------

    def invalidate_prompt(
        self, key: str, *, keep_version: int | None = None
    ) -> int:
        """Invalidate entries depending on prompt ``key`` — transitively.

        Entries whose recorded dependency on ``key`` is at a version other
        than ``keep_version`` seed the invalidation (pass ``None`` to kill
        every version); the closure then follows writer → reader edges, so
        downstream entries that consumed a dead entry's context output die
        with it.  Returns the number of entries removed.
        """
        with self._lock:
            seeds = set()
            for digest in self._by_prompt.get(key, ()):
                delta = self._entries.get(digest)
                if delta is None:
                    continue
                for dep_key, version, _text, _params in delta.footprint.prompt_deps:
                    if dep_key == key and version != keep_version:
                        seeds.add(digest)
                        break
            return self._invalidate_closure_locked(seeds)

    def _invalidate_closure_locked(self, seeds: Iterable[str]) -> int:
        queue = deque(seeds)
        dead: set[str] = set()
        while queue:
            digest = queue.popleft()
            if digest in dead or digest not in self._entries:
                continue
            dead.add(digest)
            delta = self._entries[digest]
            for pair in delta.write_digests:
                for reader in self._by_read.get(pair, ()):
                    if reader not in dead:
                        queue.append(reader)
        for digest in dead:
            self._remove_locked(digest)
        self.invalidations += len(dead)
        return len(dead)

    def _remove_locked(self, digest: str) -> None:
        delta = self._entries.pop(digest, None)
        if delta is None:
            return
        for key in delta.footprint.prompt_keys:
            bucket = self._by_prompt.get(key)
            if bucket is not None:
                bucket.discard(digest)
                if not bucket:
                    del self._by_prompt[key]
        for pair in delta.footprint.context_reads:
            bucket = self._by_read.get(pair)
            if bucket is not None:
                bucket.discard(digest)
                if not bucket:
                    del self._by_read[pair]

    def subscribe_to(self, log: EventLog, store: "PromptStore") -> None:
        """Invalidate on refinement events from ``store``'s executions.

        Idempotent per log.  The listener is bound to ``store`` so that
        refinements of *cloned* stores (shadow runs fork with isolated
        prompts but share the event log) do not invalidate entries that
        are still valid for the primary store: a ``REFINE`` event whose
        new version does not match the bound store's current version is
        ignored as foreign.
        """
        if id(log) in self._watched:
            return
        self._watched.add(id(log))

        def _on_event(event: Any, _store: "PromptStore" = store) -> None:
            kind = event.kind
            if kind is EventKind.REFINE:
                key = event.payload.get("key")
            elif kind is EventKind.MERGE:
                key = event.payload.get("into")
            elif kind is EventKind.VIEW_EXPAND:
                key = event.payload.get("key")
            else:
                return
            if key is None or key not in _store:
                return
            current = _store[key].version
            version = event.payload.get("version")
            if version is not None and version != current:
                return  # a clone's refinement, not ours
            self.invalidate_prompt(key, keep_version=current)

        log.subscribe(_on_event)

    # -- sharing / introspection ---------------------------------------------

    def read_only(self) -> "ReadOnlyResultCache":
        """A view that can hit but never insert or invalidate (shadow runs)."""
        return ReadOnlyResultCache(self)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._by_prompt.clear()
            self._by_read.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        """Point-in-time statistics for gauges, reports and run deltas."""
        with self._lock:
            return {
                "entries": float(len(self._entries)),
                "capacity": float(self.capacity),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "hit_rate": self.hit_rate,
                "invalidations": float(self.invalidations),
                "evictions": float(self.evictions),
                "saved_seconds": self.saved_seconds,
                "hit_cost": self.hit_cost,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, invalidations={self.invalidations})"
        )


class ReadOnlyResultCache:
    """A shared view of a :class:`ResultCache` that cannot mutate it.

    Shadow runs consult the primary's cache (their forked stores start
    text-identical, so hits are valid by fingerprint) but must not insert
    speculative results or invalidate primary entries when they refine
    their cloned prompts.
    """

    def __init__(self, inner: ResultCache) -> None:
        self._inner = inner

    @property
    def hit_cost(self) -> float:
        return self._inner.hit_cost

    def lookup(self, footprint: Footprint) -> CachedDelta | None:
        return self._inner.lookup(footprint)

    def recorder(self, state: "ExecutionState") -> None:
        return None  # nothing to record — inserts are dropped

    def insert(self, footprint: Footprint, delta: CachedDelta) -> None:
        return None

    def invalidate_prompt(self, key: str, **_: Any) -> int:
        return 0

    def subscribe_to(self, log: EventLog, store: "PromptStore") -> None:
        return None

    def read_only(self) -> "ReadOnlyResultCache":
        return self

    def snapshot(self) -> dict[str, float]:
        return self._inner.snapshot()

    def __len__(self) -> int:
        return len(self._inner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReadOnlyResultCache({self._inner!r})"
