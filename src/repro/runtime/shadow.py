"""Shadow execution: run a candidate pipeline beside the primary (paper §6).

A shadow run executes on a *forked* state — copied context/metadata and a
cloned prompt store — so nothing it does can leak into the primary
execution.  The comparison report tells an operator whether a candidate
prompt/pipeline change would have improved confidence or latency before
promoting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.runtime.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    # repro.core.state imports repro.runtime.clock, so module-level imports
    # of core here would be circular; these are type-only references.
    from repro.core.pipeline import Pipeline
    from repro.core.state import ExecutionState

__all__ = ["ShadowReport", "shadow_run", "compare_states"]


@dataclass(frozen=True)
class ShadowReport:
    """Outcome of one shadow execution."""

    primary_state: "ExecutionState"
    shadow_state: "ExecutionState"
    elapsed_primary: float
    elapsed_shadow: float
    #: per-signal (primary, shadow) pairs for signals present in both.
    signal_deltas: dict[str, tuple[Any, Any]]
    #: context keys whose final values differ between the runs.
    diverging_context_keys: list[str]

    @property
    def shadow_improves_confidence(self) -> bool:
        """True when the shadow run ended with higher confidence."""
        pair = self.signal_deltas.get("confidence")
        if pair is None:
            return False
        primary, shadow = pair
        return float(shadow) > float(primary)

    @property
    def shadow_is_faster(self) -> bool:
        """True when the shadow pipeline consumed less simulated time."""
        return self.elapsed_shadow < self.elapsed_primary


def compare_states(
    primary: "ExecutionState", shadow: "ExecutionState"
) -> tuple[dict[str, tuple[Any, Any]], list[str]]:
    """Signal pairs and diverging context keys between two final states."""
    signal_deltas = {
        signal: (primary.metadata.get(signal), shadow.metadata.get(signal))
        for signal in primary.metadata.keys()
        if signal in shadow.metadata
    }
    diverging = [
        key
        for key in primary.context.keys()
        if key in shadow.context
        and not key.endswith("__result")
        and primary.context[key] != shadow.context[key]
    ]
    return signal_deltas, diverging


def shadow_run(
    state: "ExecutionState",
    primary: "Pipeline",
    shadow: "Pipeline",
) -> ShadowReport:
    """Run ``primary`` on ``state`` and ``shadow`` on an isolated fork.

    The shadow's clock charges are measured but then *rewound* — shadow
    execution must not slow down the primary timeline.  Its events are
    tagged into the shared log with a SHADOW marker for traceability.

    When the primary carries a result cache, the shadow shares it
    *read-only*: memoized steps splice into the shadow too (its cloned
    store starts text-identical, so fingerprints are valid), but nothing
    the shadow executes or refines can insert into — or invalidate — the
    primary's entries.
    """
    fork = state.fork(share_prompts=False)
    if state.result_cache is not None:
        fork.result_cache = state.result_cache.read_only()

    start = state.clock.now
    primary_final = primary.apply(state)
    elapsed_primary = state.clock.now - start

    state.events.emit(EventKind.SHADOW, shadow.label, at=state.clock.now, phase="start")
    shadow_start = state.clock.now
    shadow_final = shadow.apply(fork)
    elapsed_shadow = state.clock.now - shadow_start
    # Rewind: shadow cost is accounted in the report, not the timeline.
    state.clock.reset(shadow_start)
    state.events.emit(EventKind.SHADOW, shadow.label, at=state.clock.now, phase="end")

    signal_deltas, diverging = compare_states(primary_final, shadow_final)
    return ShadowReport(
        primary_state=primary_final,
        shadow_state=shadow_final,
        elapsed_primary=elapsed_primary,
        elapsed_shadow=elapsed_shadow,
        signal_deltas=signal_deltas,
        diverging_context_keys=diverging,
    )
