"""Incremental re-execution for the refinement loop (paper §5, Table 3).

The classic adaptive-pipeline shape: run the pipeline, inspect the
outcome, refine one prompt, run again.  Without reuse every iteration
pays for the whole pipeline; with the operator-level result cache
(:mod:`repro.runtime.result_cache`) a refinement invalidates exactly the
transitive dependents of the edited prompt, so each re-run executes only
the dependent suffix — upstream stages splice their memoized ``(C, M)``
deltas back in at ~zero simulated cost.

:class:`RefinementLoop` packages that pattern: it drives an
:class:`~repro.runtime.executor.Executor` through ``run → refine → run``
rounds, collects per-iteration cache activity from the executor's
:class:`~repro.runtime.executor.RunResult`, and reports the savings.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.algebra import Condition, Operator
    from repro.core.pipeline import Pipeline
    from repro.core.state import ExecutionState
    from repro.runtime.executor import Executor, RunResult
    from repro.runtime.options import RuntimeOptions

__all__ = ["IterationReport", "LoopReport", "RefinementLoop"]

#: Chooses the refinement for iteration ``i`` (0-based, applied *after*
#: run ``i``); return None to stop refining early.
RefinerFn = Callable[["ExecutionState", int], "Operator | None"]


@dataclass(frozen=True)
class IterationReport:
    """One run of the pipeline inside the loop."""

    iteration: int
    elapsed: float
    cache_hits: int
    cache_misses: int
    invalidations: int
    saved_seconds: float
    #: prompt key the refiner edited after this run (None on the last).
    refined_key: str | None = None


@dataclass
class LoopReport:
    """Outcome of a full refinement loop."""

    iterations: list[IterationReport] = field(default_factory=list)
    final: "RunResult | None" = None

    @property
    def total_elapsed(self) -> float:
        """Simulated seconds across every iteration's pipeline run."""
        return sum(report.elapsed for report in self.iterations)

    @property
    def total_saved_seconds(self) -> float:
        """Simulated seconds the result cache saved across the loop."""
        return sum(report.saved_seconds for report in self.iterations)

    @property
    def cache_hits(self) -> int:
        return sum(report.cache_hits for report in self.iterations)

    @property
    def cache_misses(self) -> int:
        return sum(report.cache_misses for report in self.iterations)

    def output(self, label: str) -> Any:
        """Shared result protocol: final value of ``C[label]``.

        Reads from the last iteration's :class:`RunResult`, i.e. the
        refined pipeline's output; None before any iteration ran.
        """
        if self.final is None:
            return None
        return self.final.output(label)

    @property
    def cache(self) -> dict[str, float]:
        """Shared result protocol: cache totals across the loop."""
        return {
            "hits": float(self.cache_hits),
            "misses": float(self.cache_misses),
            "invalidations": float(
                sum(report.invalidations for report in self.iterations)
            ),
            "saved_seconds": self.total_saved_seconds,
        }

    @property
    def report(self) -> dict[str, Any]:
        """Shared result protocol: one JSON-ready summary of the run."""
        payload = self.to_dict()
        payload["runner"] = "loop"
        return payload

    def to_dict(self) -> dict[str, Any]:
        """Serialize for benchmark reports."""
        return {
            "iterations": [
                {
                    "iteration": report.iteration,
                    "elapsed": report.elapsed,
                    "cache_hits": report.cache_hits,
                    "cache_misses": report.cache_misses,
                    "invalidations": report.invalidations,
                    "saved_seconds": report.saved_seconds,
                    "refined_key": report.refined_key,
                }
                for report in self.iterations
            ],
            "total_elapsed": self.total_elapsed,
            "total_saved_seconds": self.total_saved_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


class RefinementLoop:
    """Run → refine → re-run, with cache-driven incremental re-execution.

    Args:
        executor: the executor to run iterations on (attach a
            :class:`~repro.runtime.result_cache.ResultCache` to it to get
            incremental re-runs; without one the loop still works, it
            just re-executes everything each round).
        pipeline: the pipeline to (re-)run each iteration.
        refiners: either a sequence of operators (usually REF) applied
            one per iteration boundary, or a callable
            ``(state, iteration) → Operator | None``.  The loop performs
            ``len(refiners) + 1`` runs for a sequence (refine between
            consecutive runs), or keeps running until the callable
            returns None / ``max_iterations`` is reached.
        stop: optional :class:`~repro.core.algebra.Condition`; when it
            holds after a run, the loop ends without further refinement.
        max_iterations: hard cap on pipeline runs (safety for callables).
        options: shared :class:`~repro.runtime.options.RuntimeOptions`
            used to build the loop's executor when ``executor`` is None;
            passing both is an error.
    """

    def __init__(
        self,
        executor: "Executor | None" = None,
        pipeline: "Pipeline | None" = None,
        *,
        refiners: "Sequence[Operator] | RefinerFn",
        stop: "Condition | None" = None,
        max_iterations: int = 16,
        options: "RuntimeOptions | None" = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if pipeline is None:
            raise TypeError("RefinementLoop requires a pipeline")
        if executor is None:
            from repro.runtime.executor import Executor
            from repro.runtime.options import RuntimeOptions

            self.executor = Executor(
                options=options if options is not None else RuntimeOptions()
            )
        elif options is not None:
            raise TypeError(
                "RefinementLoop: pass either executor= or options=, not both"
            )
        else:
            self.executor = executor
        self.pipeline = pipeline
        self.refiners = refiners
        self.stop = stop
        self.max_iterations = max_iterations

    def _refiner_for(
        self, state: "ExecutionState", iteration: int
    ) -> "Operator | None":
        if callable(self.refiners):
            return self.refiners(state, iteration)
        if iteration < len(self.refiners):
            return self.refiners[iteration]
        return None

    def run(
        self,
        pipeline: "Pipeline | ExecutionState | None" = None,
        *,
        items: Any = None,
        options: "RuntimeOptions | None" = None,
        state: "ExecutionState | None" = None,
    ) -> LoopReport:
        """Drive the loop to completion; returns the per-iteration report.

        Unified runner signature: ``run(pipeline, *, state=...)`` matches
        ``Executor.run`` / ``ParallelBatchRunner.run``.  ``pipeline``
        overrides the loop's constructor pipeline for this run (usually
        omitted); ``state`` is the execution state to iterate on and is
        required (a refinement loop edits one state's prompts in place,
        so there is no item fan-out — pass ``items=`` to the batch
        runners instead).  ``options=`` re-runs on a derived executor
        carrying the given :class:`RuntimeOptions`.

        The legacy positional form ``run(state)`` still works behind a
        DeprecationWarning.

        With ``RuntimeOptions(ledger_dir=...)`` on the executor, the
        *whole* loop is one ledger run: every iteration's events — and
        the REFINE events between iterations — land in a single
        ``runs/<run_id>/`` directory (the per-run scope inside
        ``Executor.run`` is reentrant and defers to this one).
        """
        from repro.core.state import ExecutionState as _ExecutionState
        from repro.obs.ledger import describe_options, describe_pipeline, ledger_scope

        if isinstance(pipeline, _ExecutionState):
            if state is not None:
                raise TypeError(
                    "RefinementLoop.run: state passed both positionally "
                    "and as state="
                )
            warnings.warn(
                "RefinementLoop.run(state) is deprecated; pass "
                "run(state=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            state = pipeline
            pipeline = None
        if items is not None:
            raise TypeError(
                "RefinementLoop.run: items= is not supported — the loop "
                "refines one state in place; use BatchRunner/"
                "ParallelBatchRunner for item fan-out"
            )
        if state is None:
            raise TypeError("RefinementLoop.run requires state=")
        if options is not None:
            from repro.runtime.executor import Executor

            sibling = RefinementLoop(
                Executor(options=options),
                pipeline if pipeline is not None else self.pipeline,
                refiners=self.refiners,
                stop=self.stop,
                max_iterations=self.max_iterations,
            )
            return sibling.run(state=state)
        if pipeline is not None and pipeline is not self.pipeline:
            sibling = RefinementLoop(
                self.executor,
                pipeline,
                refiners=self.refiners,
                stop=self.stop,
                max_iterations=self.max_iterations,
            )
            return sibling.run(state=state)

        executor = self.executor
        registry = None
        if executor.collector is not None:
            registry = executor.collector.registry
        elif executor.options.metrics is not None:
            registry = executor.options.metrics
        with ledger_scope(
            executor.options,
            state,
            manifest={
                "runner": "RefinementLoop",
                "pipeline": describe_pipeline(self.pipeline),
                "max_iterations": self.max_iterations,
                "options": describe_options(executor.options),
            },
            registry=registry,
            collector=executor.collector,
        ):
            return self._run_loop(state)

    def _run_loop(self, state: "ExecutionState") -> LoopReport:
        report = LoopReport()
        for iteration in range(self.max_iterations):
            # Refinement iterations are bulk work: when the executor's
            # continuous scheduler is enabled (and no explicit priority
            # was configured), interactive runs sharing the engine
            # policy sort ahead of them.
            priority = self.executor.options.priority
            result = self.executor.run(
                self.pipeline,
                state=state,
                priority=priority if priority is not None else "bulk",
            )
            state = result.state
            refiner = None
            if self.stop is None or not self.stop(state):
                refiner = self._refiner_for(state, iteration)
            refined_key = getattr(refiner, "key", None) if refiner else None
            run_report = IterationReport(
                iteration=iteration,
                elapsed=result.elapsed,
                cache_hits=int(result.cache.get("hits", 0)),
                cache_misses=int(result.cache.get("misses", 0)),
                invalidations=0,
                saved_seconds=float(result.cache.get("saved_seconds", 0.0)),
                refined_key=refined_key,
            )
            report.final = result
            if refiner is None:
                report.iterations.append(run_report)
                break
            # The REF emits a REFINE event on this state's log; a cache
            # subscribed to it invalidates the edited key's transitive
            # dependents right here, before the next run.  The refinement
            # happens between executor.run windows, so its invalidation
            # count is measured here and attributed to this iteration.
            cache = state.result_cache
            before = cache.snapshot()["invalidations"] if cache is not None else 0
            state = refiner.apply(state)
            after = cache.snapshot()["invalidations"] if cache is not None else 0
            report.iterations.append(
                IterationReport(
                    iteration=run_report.iteration,
                    elapsed=run_report.elapsed,
                    cache_hits=run_report.cache_hits,
                    cache_misses=run_report.cache_misses,
                    invalidations=int(after - before),
                    saved_seconds=run_report.saved_seconds,
                    refined_key=refined_key,
                )
            )
        return report
