"""Event-driven continuous-batching GEN engine (paper §6).

:class:`GenScheduler` replaces the full-barrier discipline of
:class:`~repro.llm.batcher.GenMicroBatcher`: operators submit generation
work to a queue, and batches form on **token-budget and virtual-clock
timeout watermarks** instead of lane barriers.  Lanes are lightweight
registrations multiplexed over the caller's worker pool — a lane costs a
dict entry, not a dedicated engine thread; whichever worker completes an
admission watermark runs the engine step inline.

Scheduling model
----------------

Lanes register with :meth:`open_lane` and submit calls through the same
:class:`~repro.llm.batcher.LaneModel` proxy the barrier batcher hands
out.  Admission decisions happen only at **quiescence** — the instant
every open lane is either blocked on a pending call or closed.  This is
the determinism generalization of the old barrier: the engine never
consults host timing, so which requests are considered together is a
pure function of each lane's submit/close sequence, i.e. of the
workload.  Within a quiescence the engine forms *one* policy step:

1. requests older than the **timeout watermark** (virtual-clock age
   ``t_now - arrival >= watermark_s``, where ``t_now`` is the latest
   pending arrival) are forced to the front, oldest first — the
   anti-starvation guarantee;
2. the rest are ordered by the **priority policy**: priority-class rank,
   then deadline instant (``arrival + deadline_s``), then arrival, then
   lane id — so interactive items preempt bulk refinement work;
3. **prefix-aware grouping** (``prefix_group_blocks``): within a
   priority class, requests whose tokenized prompts share at least that
   many leading cache blocks are pulled adjacent into the same step —
   the group order is the best member's policy position, members keep
   their policy order, and the trunk key is computed from tokenized
   prompts alone, so composition stays a pure function of the workload;
4. admission stops at the **token budget** (``max_batch_tokens`` prompt
   tokens, always admitting at least one request) or at ``max_batch``.

Prefix economics inside a step: the trunks of every admitted request are
**pinned** in the radix prefix cache for the duration of the step (an
earlier member's insert can never evict a later member's matched
prefix), and with ``prefix_dedup`` each member's block-aligned overlap
with *earlier step members* is priced at zero by
:func:`~repro.llm.latency.estimate_continuous_step` — the shared trunk
goes through the serial prefill pipe once per step, not once per
request.  Dedup changes latency accounting only, never texts or cache
hit/miss statistics.

Requests left out of a step stay queued and mix with the batch formed at
the next quiescence — genuine continuous flow on virtual time.  Steps
are priced by :func:`~repro.llm.latency.estimate_continuous_step`:
prefill occupies a serial pipe in admission order, decode overlaps
fully, and each lane's clock advances to its *own* completion — unlike
the barrier model, lanes desynchronize and nobody waits for the slowest
peer's decode.

Determinism: task outputs come from the model's deterministic
``execute_task`` path, fault injection reuses the same seeded per-prompt
decisions as the barrier engine (via
:func:`~repro.llm.batcher.prepare_request`), and step composition
depends only on pending-set state and virtual-clock instants — never on
OS thread timing.  Per-item outputs are byte-identical to a sequential
run; two same-seed runs produce identical step traces.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any

from repro.llm.batcher import (
    MICROBATCH_SIZE_BUCKETS,
    LaneModel,
    _Request,
    execute_requests,
    prepare_request,
)
from repro.llm.latency import estimate_continuous_step
from repro.llm.radix_cache import shared_prefix_tokens
from repro.runtime.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.model import GenerationResult, SimulatedLLM
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "PriorityClass",
    "SchedulerConfig",
    "StepRecord",
    "GenScheduler",
    "resolve_scheduler_config",
    "resolve_priority_class",
    "fold_sched_events",
]


class PriorityClass(str, Enum):
    """Admission priority of a request; lower rank admits first."""

    INTERACTIVE = "interactive"
    NORMAL = "normal"
    BULK = "bulk"

    @property
    def rank(self) -> int:
        return _PRIORITY_RANKS[self]


_PRIORITY_RANKS = {
    PriorityClass.INTERACTIVE: 0,
    PriorityClass.NORMAL: 1,
    PriorityClass.BULK: 2,
}


def resolve_priority_class(value: Any) -> PriorityClass:
    """Coerce a user-facing priority value (enum, name, None) to a class."""
    if value is None:
        return PriorityClass.NORMAL
    if isinstance(value, PriorityClass):
        return value
    return PriorityClass(str(value).lower())


@dataclass(frozen=True)
class SchedulerConfig:
    """Batch-formation policy knobs of the continuous engine."""

    #: prompt-token budget per engine step; None means unbounded.  A
    #: single oversized request is still admitted alone (no starvation).
    max_batch_tokens: int | None = None
    #: virtual-clock age at which a queued request is forced to the
    #: front of the next step regardless of priority.
    watermark_s: float = 10.0
    #: hard cap on requests per engine step.
    max_batch: int = 64
    #: trunk-overlap threshold (in cache blocks) for pulling pending
    #: requests of the same priority class into the same step; 0
    #: disables prefix-aware grouping.
    prefix_group_blocks: int = 4
    #: charge each step's shared trunk prefill once instead of once per
    #: request (intra-step dedup pricing in the latency model).
    prefix_dedup: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_batch_tokens is not None and self.max_batch_tokens < 1:
            raise ValueError(
                f"max_batch_tokens must be >= 1, got {self.max_batch_tokens}"
            )
        if self.watermark_s < 0:
            raise ValueError(f"watermark_s must be >= 0, got {self.watermark_s}")
        if self.prefix_group_blocks < 0:
            raise ValueError(
                f"prefix_group_blocks must be >= 0, got {self.prefix_group_blocks}"
            )


def resolve_scheduler_config(value: Any) -> "SchedulerConfig | None":
    """Normalize ``RuntimeOptions.scheduler`` to a config (or None = off).

    ``None``/``True`` mean "enabled with defaults" for callers where the
    scheduler is the default engine; ``False`` disables it; a
    :class:`SchedulerConfig` passes through.
    """
    if value is False:
        return None
    if value is None or value is True:
        return SchedulerConfig()
    if isinstance(value, SchedulerConfig):
        return value
    raise TypeError(
        f"scheduler must be a SchedulerConfig, bool, or None: {value!r}"
    )


@dataclass(frozen=True)
class StepMember:
    """One admitted request inside a :class:`StepRecord`."""

    lane_id: int
    priority: str
    arrival: float
    deadline: float | None
    start: float
    completion: float
    prompt_tokens: int
    output_tokens: int
    #: leading tokens shared with an earlier member of the same step and
    #: therefore charged zero prefill (intra-step trunk dedup).
    dedup_tokens: int = 0

    @property
    def wait(self) -> float:
        """Queue wait: prefill start minus arrival, in virtual seconds."""
        return self.start - self.arrival


@dataclass(frozen=True)
class StepRecord:
    """Deterministic trace of one engine step (tests, SCHED events)."""

    index: int
    #: the quiescence instant: latest pending arrival when the step formed.
    t_now: float
    members: tuple[StepMember, ...]
    #: requests forced in by the timeout watermark.
    forced: int
    #: admitted requests that jumped ahead of an older, lower-priority
    #: pending request which was deferred from this step.
    preemptions: int
    #: requests still queued after this step's admission.
    queue_depth_after: int
    #: engine-busy wall of the step (last completion - first start).
    wall: float
    #: prompt tokens admitted to the step.
    tokens: int
    #: trunk tokens the step prefilled once instead of once per member.
    dedup_tokens: int = 0
    #: distinct shared-trunk groups among the admitted requests.
    prefix_groups: int = 0

    @property
    def size(self) -> int:
        return len(self.members)


class GenScheduler:
    """Continuous-batching GEN engine with priority + deadline policy.

    Drop-in for :class:`~repro.llm.batcher.GenMicroBatcher` on the
    runner side: same ``open_lane`` / ``close_lane`` / ``submit``
    contract and a superset of its ``snapshot()`` keys, plus
    :meth:`configure_lane` for per-item priority and deadline and a
    :attr:`steps` trace for observability and determinism checks.
    """

    def __init__(
        self,
        model: "SimulatedLLM",
        *,
        config: SchedulerConfig | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else SchedulerConfig()
        self.metrics = metrics
        self._cond = threading.Condition()
        self._open_lanes: set[int] = set()
        self._lane_clocks: dict[int, VirtualClock] = {}
        self._lane_priority: dict[int, PriorityClass] = {}
        self._lane_deadline: dict[int, float | None] = {}
        self._pending: dict[int, _Request] = {}
        #: the engine's serial prefill pipe: instant it is next free.
        self._prefill_free_at = 0.0
        #: deterministic step trace, in execution order.
        self.steps: list[StepRecord] = []
        # aggregate accounting (guarded by the condition's lock)
        self.flushes = 0
        self.batched_calls = 0
        self.largest_batch = 0
        self.total_batch_wall = 0.0
        self.preemptions = 0
        self.forced = 0
        self.dedup_tokens_total = 0
        self._size_sum = 0
        self._wait_sum = 0.0

    # -- lane lifecycle ------------------------------------------------------

    def open_lane(
        self,
        lane_id: int,
        clock: VirtualClock,
        *,
        priority: Any = None,
        deadline_s: float | None = None,
    ) -> LaneModel:
        """Register a lane; returns its model proxy.

        An open lane is part of the quiescence condition: the engine
        makes admission decisions only when every open lane has a
        pending call (or has closed).
        """
        with self._cond:
            if lane_id in self._open_lanes:
                raise ValueError(f"lane {lane_id} is already open")
            self._open_lanes.add(lane_id)
            self._lane_clocks[lane_id] = clock
            self._lane_priority[lane_id] = resolve_priority_class(priority)
            self._lane_deadline[lane_id] = deadline_s
            return LaneModel(self, lane_id, clock)

    def configure_lane(
        self,
        lane_id: int,
        *,
        priority: Any = None,
        deadline_s: float | None = None,
    ) -> None:
        """Set the lane's priority class / deadline for subsequent submits.

        Called by the lane's own worker between items, so per-item
        scheduling attributes never race with that lane's submits.
        """
        with self._cond:
            if lane_id not in self._open_lanes:
                raise RuntimeError(f"lane {lane_id} is not open")
            self._lane_priority[lane_id] = resolve_priority_class(priority)
            self._lane_deadline[lane_id] = deadline_s

    def close_lane(self, lane_id: int) -> None:
        """Remove a lane (it will submit no more calls); may trigger steps."""
        with self._cond:
            self._open_lanes.discard(lane_id)
            self._lane_clocks.pop(lane_id, None)
            self._lane_priority.pop(lane_id, None)
            self._lane_deadline.pop(lane_id, None)
            self._maybe_flush_locked()
            self._cond.notify_all()

    # -- the submit / flush path ---------------------------------------------

    def submit(
        self,
        lane_id: int,
        prompt: str,
        *,
        max_tokens: int | None = None,
        use_cache: bool | None = None,
    ) -> "GenerationResult":
        """Enqueue one call and block until an engine step completes it."""
        with self._cond:
            if lane_id not in self._open_lanes:
                raise RuntimeError(f"lane {lane_id} is not open")
            if lane_id in self._pending:
                raise RuntimeError(f"lane {lane_id} already has a pending call")
            clock = self._lane_clocks.get(lane_id, self.model.clock)
            request = _Request(lane_id, prompt, max_tokens, use_cache, clock)
            request.arrival = clock.now
            priority = self._lane_priority.get(lane_id, PriorityClass.NORMAL)
            request.priority_rank = priority.rank
            request.priority_name = priority.value
            deadline_s = self._lane_deadline.get(lane_id)
            request.deadline = (
                request.arrival + deadline_s if deadline_s is not None else None
            )
            self._pending[lane_id] = request
            self._observe_queue_depth_locked()
            self._maybe_flush_locked()
            self._cond.notify_all()
            while not request.done:
                self._cond.wait()
        if request.error is not None:
            raise request.error
        assert request.result is not None
        return request.result

    def _quiescent_locked(self) -> bool:
        return bool(self._pending) and len(self._pending) >= len(self._open_lanes)

    def _maybe_flush_locked(self) -> None:
        """Run engine steps while the quiescence condition holds.

        A step that leaves requests queued usually breaks quiescence (the
        admitted lanes are released with nothing pending), so the loop
        exits and the leftovers mix with the next quiescence's arrivals.
        """
        while self._quiescent_locked():
            self._run_step_locked()
            self._cond.notify_all()

    def _policy_key(self, request: _Request) -> tuple:
        deadline = request.deadline if request.deadline is not None else float("inf")
        return (request.priority_rank, deadline, request.arrival, request.lane_id)

    def _block_size(self) -> int:
        return int(getattr(self.model.kv_cache, "block_size", 16))

    def _trunk_key(self, request: _Request) -> tuple:
        """Deterministic shared-trunk grouping key of one request.

        Requests of the same priority class whose tokenized prompts share
        the first ``prefix_group_blocks`` complete cache blocks get the
        same key; short prompts (fewer complete blocks than the
        threshold) stay singletons.  Priority rank is part of the key so
        a bulk request can never ride an interactive group past other
        interactive work.
        """
        span = self.config.prefix_group_blocks * self._block_size()
        tokens = request.tokens or []
        if len(tokens) < span:
            return ("solo", request.lane_id)
        return ("trunk", request.priority_rank, tuple(tokens[:span]))

    def _group_by_trunk(self, ordered: "list[_Request]") -> "list[_Request]":
        """Pull shared-trunk peers adjacent, preserving policy order.

        Groups are ordered by their best member's policy position (the
        input is policy-sorted and grouping is stable), and members keep
        their relative policy order within the group — so composition
        remains a pure function of tokenized prompts and policy state.
        """
        groups: dict[tuple, list[_Request]] = {}
        order: list[tuple] = []
        for request in ordered:
            key = self._trunk_key(request)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(request)
        return [request for key in order for request in groups[key]]

    def _dedup_tokens(
        self,
        admitted: "list[_Request]",
        triples: "list[tuple[int, int, int]]",
    ) -> "list[int]":
        """Intra-step trunk overlap per member, in admission order.

        Member ``i``'s dedup is its largest block-aligned shared prefix
        with any *earlier* member of the same step, capped at its own
        cached-token count (only a cached trunk can be deduplicated —
        under extreme eviction pressure the trunk may not have survived
        to ``i``'s lookup, and then it must be paid for again).
        """
        if not self.config.prefix_dedup or len(admitted) < 2:
            return [0] * len(admitted)
        block_size = self._block_size()
        dedup: list[int] = []
        for index, request in enumerate(admitted):
            best = 0
            for earlier in admitted[:index]:
                best = max(
                    best,
                    shared_prefix_tokens(
                        request.tokens or [], earlier.tokens or [], block_size
                    ),
                )
            dedup.append(min(best, triples[index][1]))
        return dedup

    def _run_step_locked(self) -> None:
        """Form and execute one policy step from the pending queue."""
        # Prepare phase (tokenize + seeded fault injection), in lane
        # order for determinism.  Faulted / invalid requests complete
        # immediately on their own lane clock and leave the queue; their
        # lanes re-enter with the next call, so admission is re-evaluated
        # at the next quiescence.
        removed = False
        for lane_id in sorted(self._pending):
            request = self._pending[lane_id]
            if request.prepared:
                continue
            if not prepare_request(self.model, request):
                del self._pending[lane_id]
                removed = True
        if removed:
            self._observe_queue_depth_locked()
            return
        if not self._pending:
            return

        # Admission: watermark-forced requests first (oldest first), the
        # rest by (priority rank, deadline, arrival, lane).  Everything
        # here is virtual-clock state — host timing never participates.
        pending = list(self._pending.values())
        t_now = max(request.arrival for request in pending)
        forced = [
            request
            for request in pending
            if t_now - request.arrival >= self.config.watermark_s
        ]
        forced.sort(key=lambda r: (r.arrival, r.priority_rank, r.lane_id))
        rest = sorted(
            (request for request in pending if request not in forced),
            key=self._policy_key,
        )
        if self.config.prefix_group_blocks > 0 and len(rest) > 1:
            rest = self._group_by_trunk(rest)
        admitted: list[_Request] = []
        tokens_admitted = 0
        for request in forced + rest:
            if len(admitted) >= self.config.max_batch:
                break
            size = len(request.tokens or ())
            budget = self.config.max_batch_tokens
            if admitted and budget is not None and tokens_admitted + size > budget:
                break
            admitted.append(request)
            tokens_admitted += size
        deferred = [request for request in pending if request not in admitted]
        preempted = sum(
            1
            for request in admitted
            for other in deferred
            if other.arrival < request.arrival
            and other.priority_rank > request.priority_rank
        )

        self._execute_step_locked(
            admitted,
            t_now=t_now,
            forced=len([request for request in forced if request in admitted]),
            preemptions=preempted,
            tokens=tokens_admitted,
        )

    def _execute_step_locked(
        self,
        admitted: "list[_Request]",
        *,
        t_now: float,
        forced: int,
        preemptions: int,
        tokens: int,
    ) -> None:
        model = self.model
        # Pin the admitted trunks so an earlier member's insert can never
        # evict a later member's matched prefix mid-step (radix cache
        # only; the legacy chain cache has no pin surface).
        kv = model.kv_cache
        pins = None
        if hasattr(kv, "pin"):
            pins = [kv.pin(request.tokens or []) for request in admitted]
        try:
            triples, outputs = execute_requests(model, admitted)
        finally:
            if pins is not None:
                for handle in pins:
                    kv.unpin(handle)
        dedup = self._dedup_tokens(admitted, triples)
        step = estimate_continuous_step(
            model.profile,
            triples,
            [request.arrival for request in admitted],
            prefill_free_at=self._prefill_free_at,
            dedup_tokens=dedup,
        )
        self._prefill_free_at = step.prefill_free_at

        from repro.llm.latency import LatencyBreakdown
        from repro.llm.model import GenerationResult

        members: list[StepMember] = []
        for index, request in enumerate(admitted):
            text, output_tokens, output = outputs[index]
            prompt_tokens, cached, _ = triples[index]
            latency = step.per_request[index]
            completion = step.completions[index]
            extras = {
                **output.extras,
                "sched_step": len(self.steps),
                "sched_step_size": step.size,
                "sched_wait": step.starts[index] - request.arrival,
            }
            if dedup[index]:
                extras["sched_dedup_tokens"] = dedup[index]
            decision = request.decision
            spiked = decision is not None and decision.spike_factor != 1.0
            if spiked:
                factor = decision.spike_factor
                latency = LatencyBreakdown(
                    overhead=latency.overhead * factor,
                    prefill=latency.prefill * factor,
                    cached_prefill=latency.cached_prefill * factor,
                    decode=latency.decode * factor,
                )
                extras["latency_spike"] = factor
            result = GenerationResult(
                text=text,
                task=output.task,
                prompt_tokens=prompt_tokens,
                cached_tokens=cached,
                output_tokens=output_tokens,
                latency=latency,
                confidence=output.confidence,
                extras=extras,
            )
            # Each lane advances to its OWN completion — the continuous
            # engine never synchronizes peers to the slowest decode.
            request.clock.advance_to(completion)
            if spiked:
                # The spiked request alone pays the stretched remainder.
                request.clock.advance(
                    step.per_request[index].total * (decision.spike_factor - 1.0)
                )
            model.record_result(result)
            request.result = result
            request.done = True
            del self._pending[request.lane_id]
            members.append(
                StepMember(
                    lane_id=request.lane_id,
                    priority=request.priority_name,
                    arrival=request.arrival,
                    deadline=request.deadline,
                    start=step.starts[index],
                    completion=completion,
                    prompt_tokens=prompt_tokens,
                    output_tokens=output_tokens,
                    dedup_tokens=dedup[index],
                )
            )

        record = StepRecord(
            index=len(self.steps),
            t_now=t_now,
            members=tuple(members),
            forced=forced,
            preemptions=preemptions,
            queue_depth_after=len(self._pending),
            wall=step.wall,
            tokens=tokens,
            dedup_tokens=sum(dedup),
            prefix_groups=(
                len({self._trunk_key(r) for r in admitted})
                if self.config.prefix_group_blocks > 0
                else 0
            ),
        )
        self.steps.append(record)
        self.flushes += 1
        self.batched_calls += len(admitted)
        self.largest_batch = max(self.largest_batch, len(admitted))
        self.total_batch_wall += step.wall
        self.preemptions += preemptions
        self.forced += forced
        self.dedup_tokens_total += record.dedup_tokens
        self._size_sum += len(admitted)
        self._wait_sum += sum(member.wait for member in members)
        self._observe_step_locked(record)
        self._observe_queue_depth_locked()

    # -- observability -------------------------------------------------------

    def _observe_queue_depth_locked(self) -> None:
        # Gauges only (idempotent sets): the counter/histogram side of
        # the spear_sched_* family is derived by the ObsCollector from
        # the folded SCHED events, so wiring an engine registry and a
        # collector to the same MetricsRegistry never double-counts.
        if self.metrics is None:
            return
        name = self.model.profile.name
        depth = float(len(self._pending))
        self.metrics.gauge(
            "spear_gen_queue_depth",
            "Generation calls waiting for an engine step.",
            model=name,
        ).set(depth)
        self.metrics.gauge(
            "spear_sched_queue_depth",
            "Generation calls queued in the continuous scheduler.",
            model=name,
        ).set(depth)

    def _observe_step_locked(self, record: StepRecord) -> None:
        if self.metrics is None:
            return
        name = self.model.profile.name
        # The classic engine-step metrics stay populated so dashboards,
        # reports, and the BATCH payload read the same under either engine.
        self.metrics.counter(
            "spear_microbatch_flushes_total",
            "Micro-batches executed.", model=name,
        ).inc()
        self.metrics.histogram(
            "spear_microbatch_size",
            "Generation calls coalesced per micro-batch.",
            buckets=MICROBATCH_SIZE_BUCKETS,
            model=name,
        ).observe(float(record.size))
        self.metrics.histogram(
            "spear_microbatch_wall_seconds",
            "Simulated wall time per micro-batch engine step.",
            model=name,
        ).observe(record.wall)

    def wait_stats(self) -> dict[str, dict[str, float]]:
        """Per-priority-class queue-wait summary over the step trace."""
        waits: dict[str, list[float]] = {}
        with self._cond:
            records = list(self.steps)
        for record in records:
            for member in record.members:
                waits.setdefault(member.priority, []).append(member.wait)
        summary: dict[str, dict[str, float]] = {}
        for name, values in sorted(waits.items()):
            values.sort()
            summary[name] = {
                "count": float(len(values)),
                "mean": sum(values) / len(values),
                "p50": _quantile(values, 0.50),
                "p95": _quantile(values, 0.95),
                "p99": _quantile(values, 0.99),
            }
        return summary

    def snapshot(self) -> dict[str, float]:
        """Point-in-time engine statistics (superset of the batcher's)."""
        with self._cond:
            return {
                "flushes": self.flushes,
                "batched_calls": self.batched_calls,
                "largest_batch": self.largest_batch,
                "mean_batch_size": (
                    self._size_sum / self.flushes if self.flushes else 0.0
                ),
                "total_batch_wall": self.total_batch_wall,
                "open_lanes": len(self._open_lanes),
                "pending": len(self._pending),
                "steps": self.flushes,
                "preemptions": self.preemptions,
                "forced": self.forced,
                "dedup_tokens": self.dedup_tokens_total,
                "mean_step_dedup_tokens": (
                    self.dedup_tokens_total / self.flushes
                    if self.flushes
                    else 0.0
                ),
                "mean_wait": (
                    self._wait_sum / self.batched_calls
                    if self.batched_calls
                    else 0.0
                ),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GenScheduler(lanes={len(self._open_lanes)}, "
            f"steps={self.flushes}, largest={self.largest_batch}, "
            f"preemptions={self.preemptions})"
        )


def _quantile(sorted_values: "list[float]", q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def fold_sched_events(events: Any, engine: GenScheduler) -> None:
    """Replay the engine's step trace into an event log as SCHED events.

    One event per engine step, stamped at the step's last completion
    instant; the payload carries the admission decision (size, tokens,
    forced/preempted counts, queue depth, per-member lanes, classes, and
    waits) so ``spear trace`` and the ledger can replay batch formation.
    Everything here is virtual-clock data — two same-seed runs fold
    identical SCHED streams.
    """
    from repro.runtime.events import EventKind

    for record in engine.steps:
        events.record(
            EventKind.SCHED,
            "GEN-ENGINE",
            at=max(member.completion for member in record.members),
            payload={
                "step": record.index,
                "size": record.size,
                "tokens": record.tokens,
                "forced": record.forced,
                "preemptions": record.preemptions,
                "queue_depth": record.queue_depth_after,
                "wall": round(record.wall, 9),
                "dedup_tokens": record.dedup_tokens,
                "prefix_groups": record.prefix_groups,
                "lanes": [member.lane_id for member in record.members],
                "classes": [member.priority for member in record.members],
                "waits": [round(member.wait, 9) for member in record.members],
            },
        )
