"""Refinement replay: reconstruct prompt evolution from ref_logs (paper §6).

Because every text change funnels through
:meth:`~repro.core.entry.PromptEntry.record`, an exported history plus the
version snapshots is sufficient to rebuild any prompt at any point in its
life — and to *verify* that a store matches its log.  Replay powers
debugging ("show me the prompt exactly as it was when answer_1 was
generated") and regression analysis after refiner changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entry import PromptEntry, RefAction
from repro.core.store import PromptStore
from repro.errors import ReplayError

__all__ = ["ReplayStep", "export_replay_log", "replay", "verify_replay"]


@dataclass(frozen=True)
class ReplayStep:
    """One replayable step: the action plus the resulting text."""

    key: str
    version: int
    action: str
    function: str
    text: str


def export_replay_log(store: PromptStore) -> list[ReplayStep]:
    """Flatten a store's full history into an ordered list of steps.

    Steps are ordered per key by version; cross-key ordering follows key
    insertion order (sufficient for reconstruction, which is per-key).
    """
    steps: list[ReplayStep] = []
    for key in store.keys():
        entry = store[key]
        records_by_version = {record.version: record for record in entry.ref_log}
        for snapshot in entry.versions:
            record = records_by_version.get(snapshot.version)
            if record is None:
                # A version without a log record would mean someone bypassed
                # PromptEntry.record — refuse to pretend we can replay it.
                raise ReplayError(
                    f"prompt {key!r} version {snapshot.version} has no ref_log record"
                )
            steps.append(
                ReplayStep(
                    key=key,
                    version=snapshot.version,
                    action=record.action.value,
                    function=record.function,
                    text=snapshot.text,
                )
            )
    return steps


def replay(steps: list[ReplayStep], *, up_to_version: dict[str, int] | None = None) -> PromptStore:
    """Rebuild a prompt store from replay steps.

    Args:
        steps: output of :func:`export_replay_log`.
        up_to_version: optional per-key version ceiling — replay stops
            applying steps to a key beyond its ceiling, reconstructing a
            historical store state.
    """
    store = PromptStore()
    for step in steps:
        ceiling = (up_to_version or {}).get(step.key)
        if ceiling is not None and step.version > ceiling:
            continue
        if step.key not in store:
            if step.version != 0:
                raise ReplayError(
                    f"first step for {step.key!r} must be version 0, "
                    f"got {step.version}"
                )
            store.create(step.key, step.text, function=step.function)
        else:
            entry: PromptEntry = store[step.key]
            if step.version != entry.version + 1:
                raise ReplayError(
                    f"non-contiguous replay for {step.key!r}: "
                    f"at v{entry.version}, next step is v{step.version}"
                )
            entry.record(
                RefAction(step.action),
                step.text,
                function=step.function,
            )
    return store


def verify_replay(store: PromptStore) -> bool:
    """Check that replaying the store's own log reproduces its texts.

    Returns True on success; raises :class:`ReplayError` describing the
    first divergence otherwise.
    """
    rebuilt = replay(export_replay_log(store))
    for key in store.keys():
        original = store[key]
        copy = rebuilt[key]
        if original.text != copy.text:
            raise ReplayError(
                f"replay divergence for {key!r}: current text differs"
            )
        for snapshot in original.versions:
            if copy.text_at(snapshot.version) != snapshot.text:
                raise ReplayError(
                    f"replay divergence for {key!r} at v{snapshot.version}"
                )
    return True


def snapshot_at(store: PromptStore, key: str, version: int) -> str:
    """The text of ``store[key]`` at ``version`` via full replay.

    Equivalent to ``store[key].text_at(version)`` but exercises the replay
    path — used by tests to prove log-completeness.
    """
    rebuilt = replay(export_replay_log(store), up_to_version={key: version})
    return rebuilt[key].text
