"""Concurrent batch execution on the continuous-batching GEN engine.

The paper's runtime (§6) sits on a vLLM-style serving stack: many
per-item pipelines run concurrently and their generation calls are
batched into shared engine steps.  :class:`ParallelBatchRunner` is that
engine for the reproduction:

- items are assigned **round-robin** to ``workers`` lanes (lane ``i``
  runs items ``i, i+W, i+2W, …``), so the item→lane mapping is a pure
  function of the workload, independent of thread timing;
- each lane is a real thread with its **own virtual clock** (spawned
  from a :class:`~repro.runtime.clock.LaneClockGroup`) and its own
  private event log, so span brackets never interleave across threads;
- generation calls route through the event-driven
  :class:`~repro.runtime.scheduler.GenScheduler` by default: batches
  form on token-budget and virtual-clock timeout watermarks, a
  priority-class + deadline policy orders admission
  (``RuntimeOptions(scheduler=…, priority=…, deadline_s=…)``), and each
  lane's clock advances to its *own* completion instead of the
  slowest peer's — continuous flow, not a barrier.
  ``RuntimeOptions(scheduler=False)`` selects the legacy full-barrier
  :class:`~repro.llm.batcher.GenMicroBatcher`.
- admission is **prefix-aware**: requests whose tokenized prompts share
  a structured-prompt trunk (``SchedulerConfig.prefix_group_blocks``
  leading cache blocks) are grouped into the same engine step, their
  trunks are pinned in the radix prefix cache for the step's duration,
  and the shared trunk's prefill is charged once per step rather than
  once per request (``SchedulerConfig.prefix_dedup``).

Determinism: item outputs are produced by the model's deterministic task
engine from the prompt alone, engine-step composition is a pure function
of the workload's virtual-clock state (quiescence admission, see
:mod:`repro.runtime.scheduler`), and item→lane assignment is static — so
per-item outputs are identical to the sequential
:class:`~repro.runtime.batch.BatchRunner`'s, run after run.

After the run, each lane's event stream is folded into the base state's
log bracketed by ``LANE[i]`` spans, the engine's step trace is folded as
``SCHED`` events, a ``BATCH`` summary event is recorded, and the base
clock is advanced to the merged lane time.
"""

from __future__ import annotations

import threading
import warnings
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.runtime.batch import (
    BatchResult,
    bind_item,
    collect_item_result,
    emit_batch_event,
)
from repro.runtime.clock import LaneClockGroup
from repro.runtime.events import EventKind, EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import Pipeline
    from repro.core.state import ExecutionState
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime.options import RuntimeOptions

__all__ = ["ParallelBatchRunner"]


def _per_item(value: Any, item: Any) -> Any:
    """Resolve a per-item scheduling attribute (constant or callable)."""
    return value(item) if callable(value) else value


class ParallelBatchRunner:
    """Runs a pipeline over items on concurrent worker lanes.

    Drop-in for :class:`~repro.runtime.batch.BatchRunner` with the same
    ``bind`` / ``on_error`` contract plus:

    Args:
        workers: number of worker lanes (threads).  The effective lane
            count is ``min(workers, len(items))``.
        microbatch: coalesce concurrent generation calls into shared
            engine steps (the default).  ``False`` still runs lanes
            concurrently but gives every call its own engine step —
            lane-parallelism without batched prefill/decode sharing.
        max_batch: cap on requests per engine step; an oversized
            admission set is split into consecutive steps.
        options: shared :class:`~repro.runtime.options.RuntimeOptions`;
            its ``scheduler`` selects the generation engine (default:
            the continuous :class:`~repro.runtime.scheduler.GenScheduler`;
            ``False`` selects the legacy barrier batcher; a
            :class:`~repro.runtime.scheduler.SchedulerConfig` tunes the
            watermark/token-budget policy), its ``priority`` /
            ``deadline_s`` set per-item scheduling attributes (constants
            or callables ``item -> value``), its ``metrics`` instruments
            lanes/queues/engine steps, its ``result_cache`` and
            ``resilience`` are attached to the base state when that
            state has none (per-lane breaker state is shared safely:
            forked item states carry the same runtime).
        metrics: removed — passing it raises TypeError; use
            ``options=RuntimeOptions(metrics=...)``.
        isolate_prompts: fork items with private prompt stores (see
            :meth:`ExecutionState.fork`); use when the pipeline refines
            prompts per item and lanes must not observe each other.
    """

    def __init__(
        self,
        base_state: "ExecutionState",
        *,
        bind: "Callable[[ExecutionState, Any], None] | None" = None,
        on_error: str = "raise",
        workers: int = 4,
        microbatch: bool = True,
        max_batch: int = 64,
        options: "RuntimeOptions | None" = None,
        metrics: "MetricsRegistry | None" = None,
        isolate_prompts: bool = False,
    ) -> None:
        if on_error not in ("raise", "collect"):
            raise ValueError(f"on_error must be 'raise' or 'collect': {on_error!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        from repro.runtime.options import resolve_legacy_kwargs

        options = resolve_legacy_kwargs(
            "ParallelBatchRunner", options, {"metrics": metrics}
        )
        self.options = options
        self.base_state = base_state
        if bind is None:
            bind = bind_item
        if options.result_cache is not None and base_state.result_cache is None:
            base_state.result_cache = options.result_cache
            options.result_cache.subscribe_to(
                base_state.events, base_state.prompts
            )
        if options.resilience is not None and base_state.resilience is None:
            base_state.resilience = options.resilience
        self.bind = bind
        self.on_error = on_error
        self.workers = workers
        self.microbatch = microbatch
        self.max_batch = max_batch
        self.metrics = options.metrics
        self.isolate_prompts = isolate_prompts
        #: the generation engine of the most recent run — a
        #: :class:`~repro.runtime.scheduler.GenScheduler` or legacy
        #: :class:`~repro.llm.batcher.GenMicroBatcher` (introspection/tests).
        self.last_batcher: Any | None = None

    # -- the run --------------------------------------------------------------

    def _validate(self, pipeline: "Pipeline") -> None:
        """Strict-mode gate against the base state, before any lane starts.

        ``open_context=True``: the ``bind`` callback populates per-item
        context at runtime, so missing-context findings are unknowable
        here and suppressed.  The runtime mapping carries the runner's
        concurrency shape (``lanes``/``shared_prompts``) so the
        interference analyzers (SPEAR161/163) see the batch the way it
        will actually run; re-checks go through the incremental cache.
        """
        from repro.analysis import cached_check_state
        from repro.errors import SpearValidationError

        # The parallel runner's effective engine is the continuous
        # scheduler unless explicitly disabled, so the runtime mapping
        # reports the *effective* selection, not the raw option.
        result = cached_check_state(
            pipeline,
            self.base_state,
            open_context=True,
            runtime={
                "scheduler": self.options.scheduler is not False,
                "priority": self.options.priority,
                "deadline_s": self.options.deadline_s,
                "lanes": self.workers,
                "shared_prompts": not self.isolate_prompts,
            },
            metrics=self.metrics,
        )
        if len(result) and self.metrics is not None:
            for diagnostic in result:
                self.metrics.counter(
                    "spear_check_diagnostics_total",
                    "Diagnostics emitted by strict-mode static checks.",
                    code=diagnostic.code,
                    severity=diagnostic.severity.value,
                ).inc()
        if result.has_errors:
            raise SpearValidationError(result.errors)

    def run(
        self,
        pipeline: "Pipeline",
        *args: Any,
        items: "Iterable[Any] | Sequence[Any] | None" = None,
        options: "RuntimeOptions | None" = None,
    ) -> BatchResult:
        """Execute ``pipeline`` once per item across the worker lanes.

        The unified runner signature: pass the dataset as ``items=`` (the
        legacy positional second argument still works behind a
        DeprecationWarning), and optionally a per-call ``options=``
        override (a sibling runner with the same lanes/binding runs the
        batch; this runner is not mutated).

        With ``RuntimeOptions(ledger_dir=...)`` the whole batch is one
        ledger run on the base state; lane events land in it when they
        are folded back at completion.
        """
        if args:
            if len(args) > 1:
                raise TypeError(
                    "ParallelBatchRunner.run takes at most one positional "
                    f"items argument, got {len(args)}"
                )
            if items is not None:
                raise TypeError(
                    "ParallelBatchRunner.run: items passed both "
                    "positionally and as items="
                )
            warnings.warn(
                "ParallelBatchRunner.run(pipeline, items) is deprecated; "
                "pass run(pipeline, items=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            items = args[0]
        if items is None:
            items = []
        if options is not None:
            sibling = ParallelBatchRunner(
                self.base_state,
                bind=self.bind,
                on_error=self.on_error,
                workers=self.workers,
                microbatch=self.microbatch,
                max_batch=self.max_batch,
                options=options,
                isolate_prompts=self.isolate_prompts,
            )
            batch = sibling.run(pipeline, items=items)
            self.last_batcher = sibling.last_batcher
            return batch
        from repro.obs.ledger import describe_options, describe_pipeline, ledger_scope

        with ledger_scope(
            self.options,
            self.base_state,
            manifest={
                "runner": "ParallelBatchRunner",
                "pipeline": describe_pipeline(pipeline),
                "workers": self.workers,
                "microbatch": self.microbatch,
                "options": describe_options(self.options),
            },
            registry=self.metrics,
            collector=self.options.collector,
        ):
            return self._run_batch(pipeline, items)

    def _run_batch(
        self, pipeline: "Pipeline", items: "Iterable[Any] | Sequence[Any]"
    ) -> BatchResult:
        if self.options.strict:
            self._validate(pipeline)
        items = list(items)
        if not items:
            batch = BatchResult(workers=0)
            emit_batch_event(
                self.base_state, batch, mode="parallel",
                runner="ParallelBatchRunner",
            )
            return batch

        lanes = min(self.workers, len(items))
        base = self.base_state
        clock_group = LaneClockGroup(base.clock.now)
        lane_clocks = [clock_group.spawn() for _ in range(lanes)]
        lane_logs = [EventLog() for _ in range(lanes)]

        cache = base.result_cache
        cache_before = cache.snapshot() if cache is not None else None
        if cache is not None and not self.isolate_prompts:
            # Lane refinements of the *shared* store must invalidate live;
            # with isolated per-item stores the fold-back path suffices
            # (the cache's store-bound guard rejects clone versions).
            for lane_log in lane_logs:
                cache.subscribe_to(lane_log, base.prompts)

        batcher = self._make_batcher()
        lane_models: list[Any] = []
        for lane_id in range(lanes):
            if batcher is not None:
                lane_models.append(
                    batcher.open_lane(lane_id, lane_clocks[lane_id])
                )
            else:
                lane_models.append(base.model)

        results: list[Any] = [None] * len(items)
        errors: list[tuple[int, Exception]] = []
        errors_lock = threading.Lock()
        stop = threading.Event()

        configurable = batcher is not None and hasattr(batcher, "configure_lane")

        def lane_worker(lane_id: int) -> None:
            # Everything — including this setup — runs under the finally
            # that closes the lane: a lane that dies between open_lane
            # and its first submit must still shrink the admission set,
            # or peers would wait forever on its pending call.
            try:
                lane_clock = lane_clocks[lane_id]
                lane_log = lane_logs[lane_id]
                lane_model = lane_models[lane_id]
                for index in range(lane_id, len(items), lanes):
                    if stop.is_set():
                        break
                    item = items[index]
                    if configurable:
                        batcher.configure_lane(
                            lane_id,
                            priority=_per_item(self.options.priority, item),
                            deadline_s=_per_item(self.options.deadline_s, item),
                        )
                    item_state = base.fork(
                        share_prompts=not self.isolate_prompts
                    )
                    item_state.clock = lane_clock
                    item_state.events = lane_log
                    item_state.model = lane_model
                    item_start = lane_clock.now
                    error: Exception | None = None
                    try:
                        # bind runs inside the error policy, matching the
                        # sequential runner.
                        self.bind(item_state, item)
                        item_state = pipeline.apply(item_state)
                    except Exception as exc:  # noqa: BLE001 - routed by policy
                        error = exc
                        if self.on_error == "raise":
                            with errors_lock:
                                errors.append((index, exc))
                            stop.set()
                            break
                    results[index] = collect_item_result(
                        item, item_state, lane_clock.now - item_start, error
                    )
            except Exception as exc:  # noqa: BLE001 - lane infrastructure failure
                with errors_lock:
                    errors.append((-1, exc))
                stop.set()
            finally:
                # Always shrink the admission set, or peers would wait
                # forever on this lane's next call.
                if batcher is not None:
                    batcher.close_lane(lane_id)

        threads = [
            threading.Thread(
                target=lane_worker, args=(lane_id,),
                name=f"spear-lane-{lane_id}", daemon=True,
            )
            for lane_id in range(lanes)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if errors and self.on_error == "raise":
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]

        batch = BatchResult(
            items=[result for result in results if result is not None],
            elapsed=clock_group.elapsed,
            workers=lanes,
        )

        self._fold_lane_events(lane_logs, lane_clocks, clock_group)
        if batcher is not None and hasattr(batcher, "steps"):
            from repro.runtime.scheduler import fold_sched_events

            fold_sched_events(self.base_state.events, batcher)
        # Later sequential work continues after the batch completed.
        base.clock.advance_to(clock_group.now)
        self._observe(batch, clock_group)

        extra: dict[str, Any] = {
            "serialized_elapsed": clock_group.serialized_elapsed,
        }
        if cache is not None and cache_before is not None:
            after = cache.snapshot()
            batch.cache = {
                key: after[key] - cache_before[key]
                for key in ("hits", "misses", "invalidations", "saved_seconds")
            }
            extra.update(
                result_cache_hits=int(after["hits"] - cache_before["hits"]),
                result_cache_misses=int(
                    after["misses"] - cache_before["misses"]
                ),
                result_cache_saved_seconds=(
                    after["saved_seconds"] - cache_before["saved_seconds"]
                ),
            )
        if batcher is not None:
            stats = batcher.snapshot()
            extra.update(
                gen_batches=int(stats["flushes"]),
                batched_calls=int(stats["batched_calls"]),
                largest_batch=int(stats["largest_batch"]),
                mean_batch_size=stats["mean_batch_size"],
            )
            if "preemptions" in stats:
                extra.update(
                    sched_steps=int(stats["steps"]),
                    sched_preemptions=int(stats["preemptions"]),
                    sched_forced=int(stats["forced"]),
                    sched_mean_wait=stats["mean_wait"],
                )
        emit_batch_event(
            base, batch, mode="parallel", runner="ParallelBatchRunner",
            extra=extra,
        )
        return batch

    # -- helpers --------------------------------------------------------------

    def _make_batcher(self) -> "Any | None":
        """A fresh generation engine per run (lane registration is per-run).

        ``options.scheduler`` picks the engine: the continuous
        :class:`~repro.runtime.scheduler.GenScheduler` by default (or
        with an explicit :class:`SchedulerConfig`), the legacy
        full-barrier :class:`~repro.llm.batcher.GenMicroBatcher` when
        ``scheduler=False``.
        """
        if self.base_state.model is None:
            self.last_batcher = None
            return None
        selection = self.options.scheduler
        if selection is False:
            from repro.llm.batcher import GenMicroBatcher

            engine: Any = GenMicroBatcher(
                self.base_state.model,
                # max_batch=1 gives every call its own engine step: lanes
                # still overlap, but nothing is coalesced.
                max_batch=self.max_batch if self.microbatch else 1,
                metrics=self.metrics,
            )
        else:
            from repro.runtime.scheduler import GenScheduler, SchedulerConfig

            if isinstance(selection, SchedulerConfig):
                config = selection
            elif selection is None or selection is True:
                config = SchedulerConfig(max_batch=self.max_batch)
            else:
                raise TypeError(
                    "options.scheduler must be a SchedulerConfig, bool, "
                    f"or None: {selection!r}"
                )
            if not self.microbatch:
                config = SchedulerConfig(
                    max_batch_tokens=config.max_batch_tokens,
                    watermark_s=config.watermark_s,
                    max_batch=1,
                )
            engine = GenScheduler(
                self.base_state.model, config=config, metrics=self.metrics
            )
        self.last_batcher = engine
        return engine

    def _fold_lane_events(
        self,
        lane_logs: list[EventLog],
        lane_clocks: list[Any],
        clock_group: LaneClockGroup,
    ) -> None:
        """Replay each lane's private log into the base log as a LANE span.

        Lane streams are appended whole, one lane after another, so span
        nesting stays well-formed (each lane's events are already a
        well-bracketed sequence on its own clock).
        """
        events = self.base_state.events
        for lane_id, lane_log in enumerate(lane_logs):
            events.record(
                EventKind.OPERATOR_START,
                f"LANE[{lane_id}]",
                at=clock_group.start,
            )
            events.extend(lane_log.all())
            events.record(
                EventKind.OPERATOR_END,
                f"LANE[{lane_id}]",
                at=lane_clocks[lane_id].now,
            )

    def _observe(self, batch: BatchResult, clock_group: LaneClockGroup) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge(
            "spear_batch_workers", "Lanes used by the last batch run.",
            mode="parallel",
        ).set(float(batch.workers))
        lane_hist = self.metrics.histogram(
            "spear_lane_elapsed_seconds",
            "Per-lane simulated elapsed time of a parallel batch run.",
        )
        for lane in clock_group.lanes:
            lane_hist.observe(lane.now - clock_group.start)
