"""SPEAR runtime: executor, events, shadow execution, replay, KV backends."""

from repro.runtime.clock import LaneClockGroup, VirtualClock
from repro.runtime.events import Event, EventKind, EventLog
from repro.runtime.executor import Executor, RunResult
from repro.runtime.kvstore import (
    InMemoryBackend,
    JournalingBackend,
    KeyValueBackend,
    LatencyModelBackend,
)
from repro.runtime.batch import BatchResult, BatchRunner, ItemResult
from repro.runtime.parallel import ParallelBatchRunner
from repro.runtime.incremental import IterationReport, LoopReport, RefinementLoop
from repro.runtime.options import RuntimeOptions
from repro.runtime.persistence import load_store, save_store, store_from_dict, store_to_dict
from repro.runtime.result_cache import CachedDelta, ReadOnlyResultCache, ResultCache
from repro.runtime.scheduler import PriorityClass, SchedulerConfig
from repro.runtime.replay import ReplayStep, export_replay_log, replay, verify_replay
from repro.runtime.tracing import (
    export_events,
    import_events,
    operator_wall_times,
    render_timeline,
    summarize_run,
)
from repro.runtime.shadow import ShadowReport, compare_states, shadow_run

__all__ = [
    "VirtualClock",
    "LaneClockGroup",
    "Event",
    "EventKind",
    "EventLog",
    "Executor",
    "RunResult",
    "InMemoryBackend",
    "JournalingBackend",
    "KeyValueBackend",
    "LatencyModelBackend",
    "BatchResult",
    "BatchRunner",
    "ItemResult",
    "ParallelBatchRunner",
    "CachedDelta",
    "ReadOnlyResultCache",
    "ResultCache",
    "IterationReport",
    "LoopReport",
    "RefinementLoop",
    "RuntimeOptions",
    "PriorityClass",
    "SchedulerConfig",
    "load_store",
    "save_store",
    "store_from_dict",
    "store_to_dict",
    "render_timeline",
    "summarize_run",
    "operator_wall_times",
    "export_events",
    "import_events",
    "ReplayStep",
    "export_replay_log",
    "replay",
    "verify_replay",
    "ShadowReport",
    "compare_states",
    "shadow_run",
]
