"""Pipeline executor: the runtime entry point (paper §6).

The executor wires an :class:`~repro.core.state.ExecutionState` to its
services (model, sources, agents, views), runs pipelines, and exposes the
run artefacts — the event trace, elapsed simulated time, and store
snapshots — as a :class:`RunResult`.  It is a thin, explicit layer:
operators do the work; the executor provides construction convenience,
per-run accounting, and hooks for shadow execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.runtime.clock import VirtualClock
from repro.runtime.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at call time: repro.core.state imports
    # repro.runtime.clock, so a module-level import here would be circular.
    from repro.core.pipeline import Pipeline
    from repro.core.state import ExecutionState
    from repro.core.store import PromptStore
    from repro.core.views import ViewRegistry
    from repro.obs.collector import ObsCollector
    from repro.runtime.options import RuntimeOptions
    from repro.runtime.result_cache import ResultCache

__all__ = ["RunResult", "Executor"]


@dataclass
class RunResult:
    """Artefacts of one pipeline execution."""

    state: "ExecutionState"
    elapsed: float
    events: list[Event] = field(default_factory=list)
    #: result-cache activity during this run (hits/misses/invalidations/
    #: saved_seconds deltas); empty when no cache was attached.
    cache: dict[str, float] = field(default_factory=dict)

    @property
    def context(self) -> Mapping[str, Any]:
        """Final context values."""
        return self.state.context.as_dict()

    @property
    def metadata(self) -> Mapping[str, Any]:
        """Final metadata signals."""
        return self.state.metadata.as_dict()

    def output(self, label: str) -> Any:
        """Shorthand for the generation output stored under ``label``."""
        from repro.errors import UnknownContextKeyError

        try:
            return self.state.context[label]
        except UnknownContextKeyError:
            raise UnknownContextKeyError(
                label, available=list(self.state.context.keys())
            ) from None

    @property
    def report(self) -> dict[str, Any]:
        """Shared result protocol: one JSON-ready summary of the run.

        Every runner's result (:class:`RunResult`,
        :class:`~repro.runtime.batch.BatchResult`,
        :class:`~repro.runtime.incremental.LoopReport`) exposes
        ``.output()`` / ``.report`` / ``.cache`` so a serving pool can
        dispatch to any of them uniformly.
        """
        return {
            "runner": "run",
            "elapsed": self.elapsed,
            "events": len(self.events),
            "cache": dict(self.cache),
        }


class Executor:
    """Builds execution states and runs pipelines against them.

    Configure it with ``options=RuntimeOptions(...)`` (the supported
    surface).  The individual service keywords (``model=``, ``views=``,
    ``clock=``, ``collector=``, ``result_cache=``) completed their
    deprecation cycle: passing one raises :class:`TypeError` naming the
    exact ``options=`` replacement.
    """

    def __init__(
        self,
        *,
        options: "RuntimeOptions | None" = None,
        model: Any = None,
        views: "ViewRegistry | None" = None,
        clock: VirtualClock | None = None,
        collector: "ObsCollector | None" = None,
        result_cache: "ResultCache | None" = None,
    ) -> None:
        from repro.runtime.options import resolve_legacy_kwargs

        options = resolve_legacy_kwargs(
            "Executor",
            options,
            {
                "model": model,
                "views": views,
                "clock": clock,
                "collector": collector,
                "result_cache": result_cache,
            },
        )
        self.options = options
        self.model = options.model
        from repro.core.views import ViewRegistry

        self.views = options.views if options.views is not None else ViewRegistry()
        # Share one clock between executor and model so GEN latency is the
        # dominant component of elapsed simulated time, as on real serving.
        if options.clock is not None:
            self.clock = options.clock
        elif self.model is not None and hasattr(self.model, "clock"):
            self.clock = self.model.clock
        else:
            self.clock = VirtualClock()
        #: optional observability collector; every state this executor
        #: builds (or runs) has its event log subscribed, and the model is
        #: attached once, so metrics accrue live without operator changes.
        self.collector = options.collector
        if self.collector is not None and self.model is not None:
            self.collector.attach_model(self.model)
        #: optional operator-level result cache shared by every state this
        #: executor builds or runs; refinement events on their logs drive
        #: version-precise invalidation.
        self.result_cache = options.result_cache
        if self.collector is not None and self.result_cache is not None:
            self.collector.attach_result_cache(self.result_cache)
        #: optional resilience runtime (retries / breakers / fallback)
        #: attached to every state this executor builds or runs.
        self.resilience = options.resilience
        self._sources: dict[str, tuple[Callable[..., Any], bool]] = {}
        self._agents: dict[str, Any] = {}

    def register_source(
        self,
        name: str,
        fn: "Callable[[ExecutionState, Any], Any]",
        *,
        pure: bool = False,
    ) -> None:
        """Make a retrieval source available to every state this builds.

        ``pure=True`` marks the source deterministic and side-effect free,
        which lets the result cache memoize its RET applications.
        """
        self._sources[name] = (fn, pure)

    def register_agent(self, name: str, agent: Any) -> None:
        """Make a delegation agent available to every state this builds."""
        self._agents[name] = agent

    def new_state(
        self,
        *,
        context: Mapping[str, Any] | None = None,
        prompts: "PromptStore | None" = None,
    ) -> "ExecutionState":
        """Build a fresh state wired to this executor's services."""
        from repro.core.context import Context
        from repro.core.state import ExecutionState

        state = ExecutionState(
            prompts=prompts,
            context=Context(context),
            model=self.model,
            views=self.views,
            clock=self.clock,
        )
        for name, (fn, pure) in self._sources.items():
            state.register_source(name, fn, pure=pure)
        for name, agent in self._agents.items():
            state.register_agent(name, agent)
        if self.collector is not None:
            self.collector.subscribe_to(state.events)
        if self.result_cache is not None:
            state.result_cache = self.result_cache
            self.result_cache.subscribe_to(state.events, state.prompts)
        if self.resilience is not None:
            state.resilience = self.resilience
        return state

    def run(
        self,
        pipeline: "Pipeline",
        *,
        items: Any = None,
        options: "RuntimeOptions | None" = None,
        state: "ExecutionState | None" = None,
        context: Mapping[str, Any] | None = None,
        priority: Any = None,
        deadline_s: float | None = None,
    ) -> Any:
        """Execute ``pipeline``; returns the final state plus run artefacts.

        The unified runner signature ``run(pipeline, *, items=None,
        options=None)`` is shared with
        :class:`~repro.runtime.parallel.ParallelBatchRunner` and
        :class:`~repro.runtime.incremental.RefinementLoop` so a serving
        pool can dispatch to any runner the same way:

        - ``items=`` maps the pipeline over a dataset sequentially (one
          forked state per item, bound by
          :func:`~repro.runtime.batch.bind_item`) and returns a
          :class:`~repro.runtime.batch.BatchResult`; without it a single
          run returns a :class:`RunResult` — both expose the shared
          ``.output()`` / ``.report`` / ``.cache`` protocol.  Combined
          with ``state=``, that state is the shared base (prompts, model,
          caches) the per-item forks branch from.
        - ``options=`` overrides this executor's configuration for one
          call (a derived executor with the same sources and agents runs
          it; this executor is not mutated).

        With ``RuntimeOptions(scheduler=True)`` (or a
        :class:`~repro.runtime.scheduler.SchedulerConfig`) the run's
        generation calls route through a single-lane continuous engine;
        ``priority`` / ``deadline_s`` override the options' defaults for
        this run — a :class:`~repro.runtime.incremental.RefinementLoop`
        marks its iterations ``bulk`` so interactive runs sharing the
        engine policy sort ahead of them.  A single lane degenerates to
        per-call engine steps, so outputs stay byte-identical to the
        direct path.
        """
        if options is not None:
            return self._derive(options).run(
                pipeline,
                items=items,
                state=state,
                context=context,
                priority=priority,
                deadline_s=deadline_s,
            )
        if state is not None:
            if self.collector is not None:
                # Externally built states still get observed (idempotent).
                self.collector.subscribe_to(state.events)
            if self.result_cache is not None:
                if state.result_cache is None:
                    state.result_cache = self.result_cache
                self.result_cache.subscribe_to(state.events, state.prompts)
            if self.resilience is not None and state.resilience is None:
                state.resilience = self.resilience
        if items is not None:
            from repro.runtime.batch import BatchRunner

            # items= fans the pipeline out over a dataset; state= (when
            # given) is the shared base carrying prompts/model, forked
            # per item like any batch runner.
            base = state if state is not None else self.new_state(context=context)
            return BatchRunner(base, on_error="collect").run(
                pipeline, items=items
            )
        if state is None:
            state = self.new_state(context=context)
        if self.options.strict:
            self._validate(pipeline, state)
        with self._ledger_scope(state, pipeline=pipeline):
            cache = state.result_cache
            cache_before = cache.snapshot() if cache is not None else None
            started_at = self.clock.now
            event_start = len(state.events)
            engine = self._make_engine(state)
            original_model = state.model
            if engine is not None:
                state.model = engine.open_lane(
                    0,
                    state.clock,
                    priority=(
                        priority if priority is not None else self.options.priority
                    ),
                    deadline_s=(
                        deadline_s
                        if deadline_s is not None
                        else self.options.deadline_s
                    ),
                )
            try:
                final = pipeline.apply(state)
            finally:
                if engine is not None:
                    state.model = original_model
                    engine.close_lane(0)
            if engine is not None:
                if final is not state:
                    final.model = original_model
                from repro.runtime.scheduler import fold_sched_events

                fold_sched_events(final.events, engine)
            cache_delta: dict[str, float] = {}
            if cache is not None and cache_before is not None:
                after = cache.snapshot()
                cache_delta = {
                    key: after[key] - cache_before[key]
                    for key in ("hits", "misses", "invalidations", "saved_seconds")
                }
            return RunResult(
                state=final,
                elapsed=self.clock.now - started_at,
                events=final.events.all()[event_start:],
                cache=cache_delta,
            )

    def _derive(self, options: "RuntimeOptions") -> "Executor":
        """A sibling executor with ``options`` but this one's wiring.

        Registered sources and agents carry over so a per-call
        ``options=`` override behaves like the same executor, differently
        configured — the serving layer uses this for per-request policy.
        """
        derived = Executor(options=options)
        derived._sources = dict(self._sources)
        derived._agents = dict(self._agents)
        return derived

    def _make_engine(self, state: "ExecutionState") -> Any:
        """A single-lane continuous engine when the scheduler is opted in.

        The sequential Executor stays on the direct model path by
        default (``scheduler=None``); only an explicit ``True`` /
        :class:`~repro.runtime.scheduler.SchedulerConfig` wraps the
        run's model in a one-lane :class:`GenScheduler` — useful when a
        sequential run must share the scheduler's policy semantics
        (priority / deadline accounting, SCHED trace) with parallel
        peers.
        """
        selection = self.options.scheduler
        if selection is None or selection is False or state.model is None:
            return None
        from repro.runtime.scheduler import GenScheduler, SchedulerConfig

        config = (
            selection
            if isinstance(selection, SchedulerConfig)
            else SchedulerConfig()
        )
        registry = self.options.metrics
        if registry is None and self.collector is not None:
            registry = self.collector.registry
        return GenScheduler(state.model, config=config, metrics=registry)

    def _ledger_scope(self, state: "ExecutionState", *, pipeline: "Pipeline"):
        """Ledger context for one run; a no-op without ``ledger_dir``.

        Reentrant per state: a RefinementLoop (or any outer runner) that
        already opened a ledger run around this state keeps owning it —
        every iteration's events land in the same ``runs/<run_id>/``.
        """
        from repro.obs.ledger import describe_options, describe_pipeline, ledger_scope

        registry = None
        if self.collector is not None:
            registry = self.collector.registry
        elif self.options.metrics is not None:
            registry = self.options.metrics
        return ledger_scope(
            self.options,
            state,
            manifest={
                "runner": "Executor",
                "pipeline": describe_pipeline(pipeline),
                "options": describe_options(self.options),
            },
            registry=registry,
            collector=self.collector,
        )

    def _validate(self, pipeline: "Pipeline", state: "ExecutionState") -> None:
        """Strict-mode gate: static-check, count findings, abort on errors.

        Re-checks go through the incremental cache: an unchanged
        (pipeline, state, options) triple costs one content hash.
        """
        from repro.analysis import cached_check_state
        from repro.errors import SpearValidationError

        result = cached_check_state(
            pipeline,
            state,
            runtime={
                "scheduler": self.options.scheduler,
                "priority": self.options.priority,
                "deadline_s": self.options.deadline_s,
            },
            metrics=self.options.metrics,
        )
        if len(result) and self.options.metrics is not None:
            for diagnostic in result:
                self.options.metrics.counter(
                    "spear_check_diagnostics_total",
                    "Diagnostics emitted by strict-mode static checks.",
                    code=diagnostic.code,
                    severity=diagnostic.severity.value,
                ).inc()
        if result.has_errors:
            raise SpearValidationError(result.errors)

    # -- convenience -------------------------------------------------------

    def generate_once(
        self,
        prompt_key: str,
        text: str,
        *,
        label: str = "answer",
        context: Mapping[str, Any] | None = None,
    ) -> RunResult:
        """Create a prompt and run a single GEN over it — the quickstart path."""
        from repro.core.operators import GEN
        from repro.core.pipeline import Pipeline

        state = self.new_state(context=context)
        state.prompts.create(prompt_key, text)
        return self.run(Pipeline([GEN(label, prompt=prompt_key)]), state=state)
