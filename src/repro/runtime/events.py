"""Structured execution logging (paper §6: "structured logging").

Every operator application emits an :class:`Event` into the state's
:class:`EventLog`.  Events are plain data — they power introspection
(`trace why this answer looks like this`), the meta-prompt analytics of
paper §4.4, and refinement replay (§6).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable, Iterator, Mapping

__all__ = ["EventKind", "Event", "EventLog"]


class EventKind(str, Enum):
    """Classification of runtime events."""

    OPERATOR_START = "operator_start"
    OPERATOR_END = "operator_end"
    RETRIEVE = "retrieve"
    GENERATE = "generate"
    REFINE = "refine"
    CHECK = "check"
    MERGE = "merge"
    DELEGATE = "delegate"
    VIEW_EXPAND = "view_expand"
    CACHE = "cache"
    CACHE_HIT = "cache_hit"
    PLAN = "plan"
    SHADOW = "shadow"
    BATCH = "batch"
    SCHED = "sched"
    SERVE = "serve"
    ERROR = "error"
    FAULT = "fault"
    RETRY = "retry"
    BREAKER = "breaker"
    FALLBACK = "fallback"


@dataclass(frozen=True)
class Event:
    """One structured log record."""

    seq: int
    kind: EventKind
    operator: str
    at: float
    payload: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Serialize for storage or replay."""
        return {
            "seq": self.seq,
            "kind": self.kind.value,
            "operator": self.operator,
            "at": self.at,
            "payload": dict(self.payload),
        }


class EventLog:
    """Append-only event sink with query helpers.

    Thread-safe: ``record``/``emit``, ``subscribe``/``unsubscribe``, and
    the query helpers may be called from concurrent worker lanes.  One
    reentrant lock serializes appends, so sequence numbers are unique and
    subscribers see a totally ordered stream (a subscriber that records
    back into the same log from its callback re-enters safely).
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._counter = itertools.count()
        self._lock = threading.RLock()
        #: optional live subscribers (e.g. a shadow executor); each is
        #: called with every appended event.
        self._subscribers: list[Callable[[Event], None]] = []

    def emit(
        self,
        kind: EventKind,
        operator: str,
        *,
        at: float = 0.0,
        **payload: Any,
    ) -> Event:
        """Append an event and notify subscribers; returns the event.

        A subscriber that raises must not break the run (or starve later
        subscribers): its exception is recorded as an ``ERROR`` event and
        delivered to the remaining subscribers — so a live collector sees
        the same ERROR events an offline replay of the export does.  A
        failure while handling such an ERROR event is recorded but not
        re-delivered, so a persistently failing subscriber cannot recurse.
        """
        return self.record(kind, operator, at=at, payload=payload)

    def record(
        self,
        kind: EventKind,
        operator: str,
        *,
        at: float = 0.0,
        payload: Mapping[str, Any] | None = None,
    ) -> Event:
        """Like :meth:`emit`, but with the payload as one explicit mapping.

        Payload keys that collide with ``emit``'s own parameters
        (``kind``, ``operator``, ``at``) are only representable this way;
        the import/replay path depends on it.
        """
        with self._lock:
            event = Event(
                seq=next(self._counter),
                kind=kind,
                operator=operator,
                at=at,
                payload=dict(payload) if payload else {},
            )
            self._events.append(event)
            self._notify(list(self._subscribers), event, fanout_errors=True)
            return event

    def extend(self, events: Iterable[Event]) -> list[Event]:
        """Re-record foreign events into this log, renumbering their ``seq``.

        The parallel batch runner records per-lane events into private
        lane logs (so concurrent lanes never interleave span brackets),
        then folds each lane's stream into the base log when the run
        completes.  Kind, operator, timestamp and payload are preserved;
        subscribers are notified exactly as for live records.  Returns
        the renumbered events.
        """
        with self._lock:
            return [
                self.record(
                    event.kind,
                    event.operator,
                    at=event.at,
                    payload=event.payload,
                )
                for event in events
            ]

    def _notify(
        self,
        subscribers: list[Callable[[Event], None]],
        event: Event,
        *,
        fanout_errors: bool,
    ) -> None:
        for index, subscriber in enumerate(subscribers):
            try:
                subscriber(event)
            except Exception as error:  # noqa: BLE001 - subscribers are user code
                name = getattr(subscriber, "__qualname__", None) or getattr(
                    subscriber, "__name__", type(subscriber).__name__
                )
                error_event = Event(
                    seq=next(self._counter),
                    kind=EventKind.ERROR,
                    operator=f"subscriber[{name}]",
                    at=event.at,
                    payload={
                        "error": type(error).__name__,
                        "message": str(error),
                        "during_seq": event.seq,
                    },
                )
                self._events.append(error_event)
                if fanout_errors:
                    others = subscribers[:index] + subscribers[index + 1 :]
                    self._notify(others, error_event, fanout_errors=False)

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Register ``callback`` to receive every future event."""
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> bool:
        """Remove a subscriber; returns False when it was not registered."""
        with self._lock:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                return False
            return True

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        # Iterate a snapshot so concurrent appends cannot skew iteration.
        return iter(self.all())

    def all(self) -> list[Event]:
        """All events, oldest first."""
        with self._lock:
            return list(self._events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """Events of one kind, oldest first."""
        return [event for event in self.all() if event.kind is kind]

    def for_operator(self, operator: str) -> list[Event]:
        """Events emitted by operators whose label starts with ``operator``."""
        return [
            event
            for event in self.all()
            if event.operator == operator or event.operator.startswith(operator + "[")
        ]

    def last(self, kind: EventKind | None = None) -> Event | None:
        """The most recent event (optionally of one kind)."""
        events = self.all()
        if kind is None:
            return events[-1] if events else None
        for event in reversed(events):
            if event.kind is kind:
                return event
        return None

    def to_dicts(self) -> list[dict[str, Any]]:
        """Serialize the full log."""
        return [event.to_dict() for event in self.all()]

    def clear(self) -> None:
        """Drop all events (subscribers are kept)."""
        with self._lock:
            self._events.clear()
