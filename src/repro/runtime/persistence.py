"""Prompt-store persistence: serialize P with its full history to JSON.

Paper §6: prompt stores "may be in-memory or backed by high-performance
key-value systems".  This module provides the durability half of that
story for a single node: a store (entries, tags, params, view provenance,
every version snapshot, and the complete ref_log) round-trips through a
JSON document, so prompt libraries can be checked into version control,
shipped between services, or reloaded for offline meta-analysis.

The format is deliberately explicit and versioned; loading validates the
log/version invariants the replay machinery depends on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.entry import PromptEntry, RefAction, RefinementMode, RefLogRecord
from repro.core.store import PromptStore
from repro.errors import ReplayError

__all__ = ["store_to_dict", "store_from_dict", "save_store", "load_store"]

FORMAT_VERSION = 1


def _record_to_dict(record: RefLogRecord) -> dict[str, Any]:
    return {
        "action": record.action.value,
        "function": record.function,
        "version": record.version,
        "mode": record.mode.value if record.mode else None,
        "condition": record.condition,
        "signals": dict(record.signals),
        "timestamp": record.timestamp,
    }


def _record_from_dict(payload: dict[str, Any]) -> RefLogRecord:
    return RefLogRecord(
        action=RefAction(payload["action"]),
        function=payload["function"],
        version=int(payload["version"]),
        mode=RefinementMode(payload["mode"]) if payload.get("mode") else None,
        condition=payload.get("condition"),
        signals=dict(payload.get("signals", {})),
        timestamp=float(payload.get("timestamp", 0.0)),
    )


def store_to_dict(store: PromptStore) -> dict[str, Any]:
    """Serialize a prompt store, including all versions and ref_logs."""
    entries: dict[str, Any] = {}
    for key in store.keys():
        entry = store[key]
        entries[key] = {
            "tags": sorted(entry.tags),
            "params": dict(entry.params),
            "view": entry.view,
            "versions": [
                {"version": snapshot.version, "text": snapshot.text}
                for snapshot in entry.versions
            ],
            "ref_log": [_record_to_dict(record) for record in entry.ref_log],
        }
    return {"format": FORMAT_VERSION, "entries": entries}


def store_from_dict(payload: dict[str, Any]) -> PromptStore:
    """Rebuild a prompt store from :func:`store_to_dict` output.

    Validates the log-completeness invariant (every version has a log
    record) so a loaded store supports replay and rollback exactly like
    the original.
    """
    format_version = payload.get("format")
    if format_version != FORMAT_VERSION:
        raise ReplayError(
            f"unsupported prompt-store format {format_version!r}; "
            f"expected {FORMAT_VERSION}"
        )
    store = PromptStore()
    for key, data in payload.get("entries", {}).items():
        versions = data.get("versions", [])
        if not versions:
            raise ReplayError(f"entry {key!r} has no version snapshots")
        expected = list(range(len(versions)))
        if [v["version"] for v in versions] != expected:
            raise ReplayError(f"entry {key!r} has non-contiguous versions")

        records = [_record_from_dict(r) for r in data.get("ref_log", [])]
        recorded_versions = {record.version for record in records}
        missing = set(expected) - recorded_versions
        if missing:
            raise ReplayError(
                f"entry {key!r} versions {sorted(missing)} lack ref_log records"
            )

        entry = PromptEntry(
            versions[0]["text"],
            tags=set(data.get("tags", [])),
            params=dict(data.get("params", {})),
            view=data.get("view"),
        )
        # Rebuild internals exactly: snapshots then the original log.
        for snapshot in versions[1:]:
            entry.record(
                RefAction.UPDATE, snapshot["text"], function="f_load"
            )
        entry.ref_log = records
        store[key] = entry
    return store


def save_store(store: PromptStore, path: str | Path) -> Path:
    """Write the store as pretty-printed JSON; returns the path."""
    target = Path(path)
    target.write_text(
        json.dumps(store_to_dict(store), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    return target


def load_store(path: str | Path) -> PromptStore:
    """Load a store previously written by :func:`save_store`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return store_from_dict(payload)
