"""Pluggable key-value backends for the prompt store.

Paper §6: "These stores may be in-memory or backed by high-performance
key-value systems, enabling low-latency and distributed deployments."
We provide the in-memory default plus two stand-ins for external systems:
a latency-modelling wrapper (what a remote KV system would cost) and a
write-through journaling backend (what durability would require).  All
satisfy the minimal mutable-mapping surface :class:`PromptStore` needs.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

__all__ = [
    "KeyValueBackend",
    "InMemoryBackend",
    "LatencyModelBackend",
    "JournalingBackend",
]


class KeyValueBackend:
    """Minimal mutable-mapping interface used by :class:`PromptStore`."""

    def __getitem__(self, key: str) -> Any:
        raise NotImplementedError

    def __setitem__(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def __delitem__(self, key: str) -> None:
        raise NotImplementedError

    def __contains__(self, key: object) -> bool:
        raise NotImplementedError

    def __iter__(self) -> Iterator[str]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class InMemoryBackend(KeyValueBackend):
    """Plain dict-backed store — the default, zero-overhead backend."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._data[key] = value

    def __delitem__(self, key: str) -> None:
        del self._data[key]

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)


class LatencyModelBackend(KeyValueBackend):
    """Backend that charges per-operation latency to a virtual clock.

    Stands in for a remote KV system (e.g. Redis): reads and writes are
    correct and immediate, but each op advances the supplied clock by the
    configured cost, so experiments can study store-placement trade-offs.
    """

    def __init__(
        self,
        clock: Any,
        *,
        read_latency: float = 0.0002,
        write_latency: float = 0.0005,
        inner: KeyValueBackend | None = None,
    ) -> None:
        self._clock = clock
        self._read_latency = read_latency
        self._write_latency = write_latency
        self._inner = inner if inner is not None else InMemoryBackend()
        self.reads = 0
        self.writes = 0

    def __getitem__(self, key: str) -> Any:
        self.reads += 1
        self._clock.advance(self._read_latency)
        return self._inner[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.writes += 1
        self._clock.advance(self._write_latency)
        self._inner[key] = value

    def __delitem__(self, key: str) -> None:
        self.writes += 1
        self._clock.advance(self._write_latency)
        del self._inner[key]

    def __contains__(self, key: object) -> bool:
        return key in self._inner

    def __iter__(self) -> Iterator[str]:
        return iter(self._inner)

    def __len__(self) -> int:
        return len(self._inner)


class JournalingBackend(KeyValueBackend):
    """Write-through backend recording every mutation.

    The journal is a list of ``("set" | "del", key)`` records; a callback
    may additionally be invoked per mutation (e.g. to persist elsewhere).
    Used by tests and by refinement replay to validate that replaying a
    journal reconstructs an identical store.
    """

    def __init__(
        self,
        inner: KeyValueBackend | None = None,
        on_mutation: Callable[[str, str], None] | None = None,
    ) -> None:
        self._inner = inner if inner is not None else InMemoryBackend()
        self._on_mutation = on_mutation
        self.journal: list[tuple[str, str]] = []

    def __getitem__(self, key: str) -> Any:
        return self._inner[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._inner[key] = value
        self.journal.append(("set", key))
        if self._on_mutation is not None:
            self._on_mutation("set", key)

    def __delitem__(self, key: str) -> None:
        del self._inner[key]
        self.journal.append(("del", key))
        if self._on_mutation is not None:
            self._on_mutation("del", key)

    def __contains__(self, key: object) -> bool:
        return key in self._inner

    def __iter__(self) -> Iterator[str]:
        return iter(self._inner)

    def __len__(self) -> int:
        return len(self._inner)
