"""Virtual clock used to account simulated latency.

The paper reports wall-clock seconds measured on an RTX 3090 + vLLM stack.
We have no GPU, so GEN calls charge their modelled latency (prefill /
decode token costs, see :mod:`repro.llm.latency`) to a virtual clock
instead of sleeping.  Experiments read elapsed virtual seconds; real
benchmarks (pytest-benchmark) additionally time the harness itself.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic simulated clock, advanced explicitly by cost charges."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative).

        Returns the new time.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self._now += seconds
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (used between experiment trials)."""
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"
