"""Virtual clocks used to account simulated latency.

The paper reports wall-clock seconds measured on an RTX 3090 + vLLM stack.
We have no GPU, so GEN calls charge their modelled latency (prefill /
decode token costs, see :mod:`repro.llm.latency`) to a virtual clock
instead of sleeping.  Experiments read elapsed virtual seconds; real
benchmarks (pytest-benchmark) additionally time the harness itself.

Concurrency-aware time: a sequential run owns one :class:`VirtualClock`,
so elapsed time is the *sum* of charges.  A parallel run instead gives
each worker lane its own clock via a :class:`LaneClockGroup`; lanes charge
independently and the group's ``now`` is the *max* over lanes — simulated
elapsed reflects overlap, not serialization.  All clocks are thread-safe.
"""

from __future__ import annotations

import threading

__all__ = ["VirtualClock", "LaneClockGroup"]


class VirtualClock:
    """Monotonic simulated clock, advanced explicitly by cost charges.

    Thread-safe: concurrent ``advance`` calls never lose a charge (the
    parallel batch runner advances lane clocks from worker threads, and a
    micro-batch flush advances several lanes from whichever thread runs
    the flush).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative).

        Returns the new time.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, deadline: float) -> float:
        """Advance the clock to ``deadline`` if it is in the future.

        A no-op when the clock is already at or past ``deadline`` (lanes
        joining a micro-batch synchronize on the batch completion time,
        and the latest lane defines it).  Returns the new time.
        """
        with self._lock:
            if deadline > self._now:
                self._now = float(deadline)
            return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (used between experiment trials)."""
        with self._lock:
            self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"


class LaneClockGroup:
    """Per-lane virtual clocks merged by max.

    Each worker lane of a parallel batch run charges latency to its own
    :class:`VirtualClock`, all starting at the group's ``start``.  The
    group's ``now`` is the maximum over its lanes — the simulated time at
    which the last lane finishes — so a batch's elapsed time models true
    overlap: N items on W lanes cost ~N/W item-times, not N.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.start = float(start)
        self._lanes: list[VirtualClock] = []
        self._lock = threading.Lock()

    def spawn(self) -> VirtualClock:
        """Create (and track) one lane clock starting at ``start``."""
        lane = VirtualClock(self.start)
        with self._lock:
            self._lanes.append(lane)
        return lane

    @property
    def lanes(self) -> list[VirtualClock]:
        """The lane clocks, in spawn order."""
        with self._lock:
            return list(self._lanes)

    @property
    def now(self) -> float:
        """Merged time: the max over lane clocks (``start`` when empty)."""
        with self._lock:
            if not self._lanes:
                return self.start
            return max(lane.now for lane in self._lanes)

    @property
    def elapsed(self) -> float:
        """Simulated seconds since the group started."""
        return self.now - self.start

    @property
    def serialized_elapsed(self) -> float:
        """Sum of per-lane elapsed times — what a sequential run would pay."""
        with self._lock:
            return sum(lane.now - self.start for lane in self._lanes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._lanes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LaneClockGroup(lanes={len(self)}, now={self.now:.6f})"
