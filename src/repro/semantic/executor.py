"""Physical execution of semantic queries over SPEAR.

The executor is a miniature cost-based query planner in the spirit the
paper sketches (§5 "fusion strategies should be selectivity aware ...
highlighting the need for sophisticated optimization logic"):

1. **pilot sampling** — each filter stage's selectivity is estimated by
   running it over a small pilot of items;
2. **planning** — each adjacent (map, filter) / (filter, map) pair is
   fused or kept sequential according to SPEAR's
   :class:`~repro.optimizer.fusion.FusionPlanner` at the estimated
   selectivity;
3. **execution** — the plan runs over the dataset through the simulated
   backend, with the shared instruction scaffold prefix-cached across
   items exactly like the paper's batched workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import SCAFFOLD, compose_item_prompt
from repro.llm.model import SimulatedLLM
from repro.optimizer.fusion import FusionPlanner, LlmStage, build_fused_instruction
from repro.semantic.ops import SemanticQuery, SemFilter, SemMap

__all__ = ["SemRow", "PlanStep", "SemResult", "SemanticExecutor"]


@dataclass
class SemRow:
    """One dataset item flowing through the query."""

    original: str
    text: str
    kept: bool = True


@dataclass(frozen=True)
class PlanStep:
    """One physical step: a single stage or a fused pair."""

    kind: str  # "map" | "filter" | "fused"
    instruction: str
    #: for fused steps, the stage order ("map_filter" | "filter_map").
    order: str | None = None
    #: estimated selectivity used in the fusion decision, if any.
    selectivity: float | None = None

    def describe(self) -> str:
        """Human-readable plan line."""
        if self.kind == "fused":
            return (
                f"FUSED[{self.order}] (selectivity≈{self.selectivity:.0%})"
            )
        return self.kind.upper()


@dataclass
class SemResult:
    """Query output plus execution statistics."""

    rows: list[SemRow] = field(default_factory=list)
    plan: list[PlanStep] = field(default_factory=list)
    calls: int = 0
    pilot_calls: int = 0
    sim_seconds: float = 0.0

    def kept(self) -> list[SemRow]:
        """Rows that survived every filter."""
        return [row for row in self.rows if row.kept]

    def plan_description(self) -> str:
        """The physical plan, one step per line."""
        return "\n".join(step.describe() for step in self.plan)


class SemanticExecutor:
    """Plans and runs :class:`SemanticQuery` objects on a model."""

    def __init__(
        self,
        model: SimulatedLLM,
        *,
        scaffold: str = SCAFFOLD,
        pilot_size: int = 16,
        enable_fusion: bool = True,
    ) -> None:
        self.model = model
        self.scaffold = scaffold
        self.pilot_size = pilot_size
        self.enable_fusion = enable_fusion

    # -- pilot estimation ----------------------------------------------------

    def _estimate_selectivity(
        self, op: SemFilter, items: list[str], result: SemResult
    ) -> float:
        """Pass rate of ``op`` over a pilot sample of ``items``.

        The pilot approximates each filter's input with the original
        items (upstream maps preserve topical content in this domain);
        its calls are charged to the run like any other work.
        """
        pilot = items[: self.pilot_size]
        if not pilot:
            return 0.5
        kept = 0
        for item in pilot:
            generation = self._call(f"{self.scaffold}\n{op.instruction}", item, result)
            result.pilot_calls += 1
            kept += bool(generation.extras.get("decision"))
        return kept / len(pilot)

    # -- planning ---------------------------------------------------------------

    @staticmethod
    def _stage(op: SemMap | SemFilter) -> LlmStage:
        return LlmStage(
            kind=op.kind,
            instruction=op.instruction,
            expected_output_tokens=op.expected_output_tokens,
        )

    def _plan(self, query: SemanticQuery, result: SemResult) -> list[PlanStep]:
        planner = FusionPlanner(
            self.model.profile,
            sample_item=query.items[0] if query.items else "x" * 120,
        )
        steps: list[PlanStep] = []
        index = 0
        ops = query.ops
        while index < len(ops):
            current = ops[index]
            follower = ops[index + 1] if index + 1 < len(ops) else None
            fusable = (
                self.enable_fusion
                and follower is not None
                and {current.kind, follower.kind} == {"map", "filter"}
            )
            if fusable:
                filter_op = current if current.kind == "filter" else follower
                selectivity = self._estimate_selectivity(
                    filter_op, query.items, result
                )
                decision = planner.decide(
                    self._stage(current), self._stage(follower), selectivity=selectivity
                )
                if decision.fuse:
                    steps.append(
                        PlanStep(
                            kind="fused",
                            instruction=build_fused_instruction(
                                self._stage(current), self._stage(follower)
                            ),
                            order=decision.order,
                            selectivity=selectivity,
                        )
                    )
                    index += 2
                    continue
            steps.append(PlanStep(kind=current.kind, instruction=current.instruction))
            index += 1
        return steps

    # -- execution -----------------------------------------------------------------

    def _call(self, instructions: str, item: str, result: SemResult):
        generation = self.model.generate(compose_item_prompt(instructions, item))
        result.calls += 1
        result.sim_seconds += generation.latency.total
        return generation

    def _apply_step(self, step: PlanStep, row: SemRow, result: SemResult) -> None:
        instructions = f"{self.scaffold}\n{step.instruction}"
        if step.kind == "map":
            generation = self._call(instructions, row.text, result)
            row.text = generation.text
            return
        if step.kind == "filter":
            generation = self._call(instructions, row.text, result)
            row.kept = bool(generation.extras.get("decision"))
            return
        generation = self._call(instructions, row.text, result)
        row.kept = bool(generation.extras.get("decision"))
        summary = generation.extras.get("summary")
        if row.kept and summary:
            row.text = summary

    def execute(self, query: SemanticQuery) -> SemResult:
        """Plan the query, run it, and return rows + statistics."""
        query.validate()
        result = SemResult(
            rows=[SemRow(original=item, text=item) for item in query.items]
        )
        result.plan = self._plan(query, result)
        for step in result.plan:
            for row in result.rows:
                if row.kept:
                    self._apply_step(step, row, result)
        return result
