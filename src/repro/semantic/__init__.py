"""Semantic operator layer: declarative map/filter queries over SPEAR."""

from repro.semantic.executor import PlanStep, SemanticExecutor, SemResult, SemRow
from repro.semantic.ops import SemanticQuery, SemFilter, SemMap

__all__ = [
    "PlanStep",
    "SemanticExecutor",
    "SemResult",
    "SemRow",
    "SemanticQuery",
    "SemFilter",
    "SemMap",
]
