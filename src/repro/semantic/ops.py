"""Semantic operators: a declarative map/filter layer over SPEAR.

Paper §6 positions SPEAR as "a runtime substrate for prompt control while
upstream systems manage data retrieval and processing", complementing
semantic data processing systems (Palimpzest, LOTUS, DocETL — paper §8).
This package provides a miniature such upstream layer:

    query = (
        SemanticQuery(tweets)
        .sem_map("Summarize and clean up the tweet in at most 30 words.")
        .sem_filter("Keep the tweet only if its sentiment is negative.")
    )
    result = query.execute(llm)

The query is declarative; the executor (see
:mod:`repro.semantic.executor`) plans the physical execution — deciding
per adjacent stage pair whether to fuse, using SPEAR's selectivity-aware
fusion planner with a pilot-sampled selectivity estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import PlanningError

__all__ = ["SemMap", "SemFilter", "SemanticQuery"]


@dataclass(frozen=True)
class SemMap:
    """A semantic transformation of each item."""

    instruction: str
    #: expected decode length per item (tokens) for cost estimation.
    expected_output_tokens: int = 22

    @property
    def kind(self) -> str:
        return "map"


@dataclass(frozen=True)
class SemFilter:
    """A semantic predicate over each item."""

    instruction: str
    expected_output_tokens: int = 3

    @property
    def kind(self) -> str:
        return "filter"


class SemanticQuery:
    """An ordered chain of semantic operators over a dataset of texts.

    Builder methods return ``self`` for chaining; the query is immutable
    once executed.  Execution lives in
    :class:`repro.semantic.executor.SemanticExecutor`; the convenience
    :meth:`execute` constructs one with defaults.
    """

    def __init__(self, items: Iterable[str]) -> None:
        self.items: list[str] = list(items)
        self.ops: list[SemMap | SemFilter] = []

    def sem_map(self, instruction: str, *, expected_output_tokens: int = 22) -> "SemanticQuery":
        """Append a semantic map stage."""
        self.ops.append(
            SemMap(instruction, expected_output_tokens=expected_output_tokens)
        )
        return self

    def sem_filter(self, instruction: str, *, expected_output_tokens: int = 3) -> "SemanticQuery":
        """Append a semantic filter stage."""
        self.ops.append(
            SemFilter(instruction, expected_output_tokens=expected_output_tokens)
        )
        return self

    def validate(self) -> None:
        """Reject empty or degenerate queries before planning."""
        if not self.ops:
            raise PlanningError("semantic query has no operators")
        for op in self.ops:
            if not op.instruction.strip():
                raise PlanningError("semantic operator has an empty instruction")

    def execute(self, model, **kwargs):
        """Plan and run the query; see SemanticExecutor.execute."""
        from repro.semantic.executor import SemanticExecutor

        return SemanticExecutor(model, **kwargs).execute(self)
