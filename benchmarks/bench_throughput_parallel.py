#!/usr/bin/env python
"""Throughput benchmark: sequential BatchRunner vs ParallelBatchRunner.

Runs the Table-3 workload (Map: summarize + Filter: negative sentiment
over the seeded tweet corpus, sharing the scaffold prefix) sequentially
and then in parallel at several worker counts, and reports items per
simulated second and the simulated-time speedup at each width.  Output
texts are asserted identical across all runs — parallelism must change
*when* work happens, never *what* is produced.

Writes ``BENCH_parallel.json`` next to the repo root (or ``--output``)
and exits non-zero when the speedup at the widest configuration falls
below ``--min-speedup`` (CI smoke uses 3.0; the acceptance bar for the
full workload is 4.0 at 16 workers).

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput_parallel.py
    PYTHONPATH=src python benchmarks/bench_throughput_parallel.py --tiny
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import GEN, Pipeline  # noqa: E402
from repro.core.state import ExecutionState  # noqa: E402
from repro.data import make_tweet_corpus  # noqa: E402
from repro.experiments.common import (  # noqa: E402
    FILTER_NEG_INSTRUCTION,
    MAP_INSTRUCTION,
    SCAFFOLD,
)
from repro.llm.model import SimulatedLLM  # noqa: E402
from repro.runtime.batch import BatchRunner  # noqa: E402
from repro.runtime.parallel import ParallelBatchRunner  # noqa: E402

PROFILE = "qwen2.5-7b-instruct"
WORKER_COUNTS = (1, 4, 16)


def build_state(n_items: int, seed: int) -> tuple[ExecutionState, list]:
    """Fresh model + corpus + prompts (cold caches) for one run."""
    llm = SimulatedLLM(PROFILE)
    corpus = make_tweet_corpus(n_items, seed=seed)
    llm.bind_tweets(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    state.prompts.create(
        "map_p", SCAFFOLD + "\n" + MAP_INSTRUCTION + "\nTweet:\n{tweet}"
    )
    state.prompts.create(
        "filter_p", SCAFFOLD + "\n" + FILTER_NEG_INSTRUCTION + "\nTweet:\n{tweet}"
    )
    return state, list(corpus)


def bind(state: ExecutionState, tweet) -> None:
    state.context.put("tweet", tweet.text, producer="bind")


def build_pipeline() -> Pipeline:
    return Pipeline(
        [GEN("summary", prompt="map_p"), GEN("neg", prompt="filter_p")]
    )


def outputs_of(batch) -> list[tuple]:
    return [
        (result.context.get("summary"), result.context.get("neg"))
        for result in batch.items
    ]


def run_benchmark(
    n_items: int, seed: int, worker_counts: tuple[int, ...]
) -> dict:
    pipeline = build_pipeline()

    state, items = build_state(n_items, seed)
    wall0 = time.perf_counter()
    sequential = BatchRunner(state, bind=bind).run(pipeline, items=items)
    seq_wall = time.perf_counter() - wall0
    baseline_outputs = outputs_of(sequential)
    result = {
        "profile": PROFILE,
        "items": n_items,
        "seed": seed,
        "sequential": {
            "sim_elapsed_s": sequential.elapsed,
            "items_per_sim_s": sequential.throughput,
            "host_wall_s": round(seq_wall, 4),
        },
        "parallel": {},
    }

    for workers in worker_counts:
        state_w, items_w = build_state(n_items, seed)
        runner = ParallelBatchRunner(state_w, bind=bind, workers=workers)
        wall0 = time.perf_counter()
        batch = runner.run(pipeline, items=items_w)
        host_wall = time.perf_counter() - wall0
        if outputs_of(batch) != baseline_outputs:
            raise AssertionError(
                f"parallel outputs diverged from sequential at {workers} workers"
            )
        stats = runner.last_batcher.snapshot() if runner.last_batcher else {}
        result["parallel"][str(workers)] = {
            "sim_elapsed_s": batch.elapsed,
            "items_per_sim_s": batch.throughput,
            "speedup": (
                sequential.elapsed / batch.elapsed if batch.elapsed else 0.0
            ),
            "host_wall_s": round(host_wall, 4),
            "gen_batches": int(stats.get("flushes", 0)),
            "mean_batch_size": round(stats.get("mean_batch_size", 0.0), 2),
            "largest_batch": int(stats.get("largest_batch", 0)),
        }
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=120, help="corpus size (default 120)"
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke: 24 items, same worker sweep",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail when speedup at the widest worker count is below this",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_parallel.json"
    )
    args = parser.parse_args(argv)

    n_items = 24 if args.tiny else args.items
    result = run_benchmark(n_items, args.seed, WORKER_COUNTS)

    widest = str(max(WORKER_COUNTS))
    speedup = result["parallel"][widest]["speedup"]
    result["widest_workers"] = int(widest)
    result["widest_speedup"] = round(speedup, 3)
    result["min_speedup"] = args.min_speedup
    result["ok"] = speedup >= args.min_speedup

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"sequential: {result['sequential']['sim_elapsed_s']:.2f}s simulated, "
        f"{result['sequential']['items_per_sim_s']:.3f} items/s"
    )
    for workers in WORKER_COUNTS:
        row = result["parallel"][str(workers)]
        print(
            f"workers={workers:3d}: {row['sim_elapsed_s']:.2f}s simulated, "
            f"{row['items_per_sim_s']:.3f} items/s, "
            f"speedup {row['speedup']:.2f}x, "
            f"{row['gen_batches']} micro-batches "
            f"(mean size {row['mean_batch_size']})"
        )
    if not result["ok"]:
        print(
            f"FAIL: speedup at {widest} workers is {speedup:.2f}x "
            f"< required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
