"""Microbenchmarks of the substrates (real wall-clock, multiple rounds).

These measure actual Python throughput of the pieces everything else sits
on: the tokenizer, the block prefix cache, BM25 retrieval, view expansion,
and SPEAR-DL parsing/compilation.
"""

from __future__ import annotations

from repro.core.views import ViewRegistry
from repro.data.clinical import make_clinical_corpus
from repro.dl import compile_source
from repro.llm.kv_cache import BlockPrefixCache
from repro.llm.tokenizer import Tokenizer
from repro.retrieval import InvertedIndex, corpus_documents

_LONG_TEXT = (
    "Summarize the patient's medication history and highlight any use of "
    "Enoxaparin, including dosage, timing, and indication. "
) * 80

_DL_SOURCE = '''
view med_summary(drug) {
  """### Task
Summarize the patient's medication history and highlight any use of {drug}.
Notes:
{initial_notes}"""
  tags: clinical, summary
}
pipeline qa {
  RET["initial_notes", query="p0001"]
  VIEW["med_summary", key="qa", params={drug: "Enoxaparin"}]
  GEN["answer_0", prompt="qa"]
  CHECK[M["confidence"] < 0.7] -> REF[APPEND, "Be specific.", key="qa"]
  GEN["answer_1", prompt="qa"]
}
'''


def test_tokenizer_encode(benchmark):
    tokenizer = Tokenizer()
    ids = benchmark(tokenizer.encode, _LONG_TEXT)
    assert len(ids) > 1000


def test_kv_cache_lookup_insert(benchmark):
    tokenizer = Tokenizer()
    tokens = tokenizer.encode(_LONG_TEXT)
    cache = BlockPrefixCache()
    cache.insert(tokens)

    def probe():
        return cache.lookup_and_insert(tokens)

    cached = benchmark(probe)
    assert cached > 0


def test_bm25_search(benchmark):
    corpus = make_clinical_corpus(100, seed=11)
    index = InvertedIndex(corpus_documents(corpus))
    results = benchmark(
        index.search, "enoxaparin dosage dvt prophylaxis", top_k=5
    )
    assert results


def test_view_expansion_cached(benchmark):
    views = ViewRegistry()
    views.define("base", _LONG_TEXT)
    views.define("child", "Focus on {drug}.", params=("drug",), base="base")
    views.expand("child", {"drug": "Enoxaparin"})  # warm the cache

    text = benchmark(views.expand, "child", {"drug": "Enoxaparin"})
    assert "Enoxaparin" in text


def test_dl_parse_and_compile(benchmark):
    compiled = benchmark(compile_source, _DL_SOURCE)
    assert "qa" in compiled.pipelines
