"""Ablation: cost-based refinement planning vs applying everything.

The planner (paper §5) mines ref_log outcomes to skip refiners that have
historically hurt.  Here a beneficial refiner (adds explicit criteria) and
a harmful one (strips the view scaffold) both present themselves; the
planner — given their history — applies only the good one, while the
naive fixed-order policy applies both.  The planned pipeline must win on
F1 at equal-or-lower token cost.
"""

from __future__ import annotations

from repro.core import ExecutionState, REF, RefAction
from repro.core.derived import EXPAND
from repro.data.tweets import make_tweet_corpus
from repro.eval.metrics import prf_from_sets
from repro.experiments.common import build_views, compose_item_prompt
from repro.llm.model import SimulatedLLM
from repro.optimizer.planner import CandidateRefiner, RefinementPlanner

N_ITEMS = 150
_corpus = make_tweet_corpus(N_ITEMS, seed=7)

GOOD_ADDITION = (
    "Use these criteria:\n"
    "- the sentiment is clearly negative\n"
    "- the topic concerns school, exams, or homework"
)


def _strip_structure(state, text: str) -> str:
    """A harmful 'simplifying' refiner: drops the scaffold and guidance."""
    kept = [
        line
        for line in text.splitlines()
        if not line.startswith(("###", "-", "General guidance"))
    ]
    return "\n".join(kept)


def _base_state() -> ExecutionState:
    state = ExecutionState()
    state.prompts.create(
        "filter_prompt",
        build_views().expand("filter_stage")
        + "\nFocus on school-related content.",
    )
    return state


def _seed_history(state: ExecutionState) -> None:
    """Past outcomes: criteria helped, structure-stripping hurt."""
    entry = state.prompts["filter_prompt"]
    for function, before, after in (
        ("f_add_criteria", 0.6, 0.8),
        ("f_add_criteria", 0.62, 0.78),
        ("f_strip_structure", 0.8, 0.55),
        ("f_strip_structure", 0.75, 0.5),
    ):
        record = entry.record(
            RefAction.APPEND, entry.text, function=function,
            signals={"confidence": before},
        )
        record.signals["outcome_confidence"] = after


def _candidates() -> list[CandidateRefiner]:
    return [
        CandidateRefiner(
            name="f_add_criteria",
            build=lambda: EXPAND("filter_prompt", GOOD_ADDITION),
            est_cost_tokens=20,
        ),
        CandidateRefiner(
            name="f_strip_structure",
            build=lambda: REF(
                RefAction.UPDATE,
                _strip_structure,
                key="filter_prompt",
                function_name="f_strip_structure",
            ),
            est_cost_tokens=1,
        ),
    ]


def _score(prompt_text: str) -> float:
    llm = SimulatedLLM()
    llm.bind_tweets(_corpus)
    selected = set()
    for tweet in _corpus:
        result = llm.generate(compose_item_prompt(prompt_text, tweet.text))
        if result.extras.get("decision"):
            selected.add(tweet.uid)
    truth = {t.uid for t in _corpus.school_negatives()}
    return prf_from_sets(selected, truth).f1


def test_planned_refinement(once):
    def planned():
        state = _base_state()
        _seed_history(state)
        plan = RefinementPlanner().plan(state, _candidates(), budget_tokens=50)
        state = plan.apply(state)
        return plan, _score(state.prompts.text("filter_prompt"))

    plan, f1 = once(planned)
    assert [step.refiner.name for step in plan.steps] == ["f_add_criteria"]
    assert "f_strip_structure" in plan.skipped
    assert f1 > 0.6


def test_fixed_order_applies_everything(once):
    def fixed():
        state = _base_state()
        for candidate in _candidates():
            state = candidate.build().apply(state)
        return _score(state.prompts.text("filter_prompt"))

    f1_fixed = once(fixed)
    state = _base_state()
    _seed_history(state)
    plan = RefinementPlanner().plan(state, _candidates(), budget_tokens=50)
    state = plan.apply(state)
    f1_planned = _score(state.prompts.text("filter_prompt"))
    assert f1_planned > f1_fixed
    print(f"planned F1 {f1_planned:.3f} vs fixed-order F1 {f1_fixed:.3f}")
