"""Ablation: predictive refinement vs reactive retry (paper §5).

Reactive repair waits for a low-confidence answer, refines, and re-runs —
two generations per risky item.  Predictive refinement scores the prompt's
risk *before* generating and strengthens it upfront — one generation.
Both are run over the clinical QA corpus; predictive must reduce total
calls and simulated latency without losing confidence.
"""

from __future__ import annotations

from repro.core import CHECK, Condition, GEN, REF, RefAction, ExecutionState
from repro.data.clinical import make_clinical_corpus
from repro.llm.model import SimulatedLLM
from repro.llm.profiles import get_profile
from repro.optimizer.predictive import HeuristicRiskModel, PredictiveRefine

N_PATIENTS = 30
_corpus = make_clinical_corpus(N_PATIENTS, seed=11)

#: Deliberately weak base prompt — the interesting regime for repair.
WEAK_PROMPT = (
    "Tell me about Enoxaparin for this patient.\nNotes:\n{notes}"
)
STRENGTHENING = (
    "Be specific about dosage and timing. Respond with the medication "
    "status first. Explain your reasoning step by step."
)


def _notes(patient) -> str:
    return "\n".join(note.text for note in patient.notes)


def _reactive() -> tuple[int, float, float]:
    """GEN, then CHECK confidence → REF + GEN again."""
    llm = SimulatedLLM()
    llm.bind_clinical(_corpus)
    calls = 0
    confidences = []
    for patient in _corpus:
        state = ExecutionState(model=llm, clock=llm.clock)
        state.context.put("notes", _notes(patient))
        state.prompts.create("qa", WEAK_PROMPT)
        pipeline = (
            GEN("answer", prompt="qa")
            >> CHECK(
                Condition.metadata_below("confidence", 0.7),
                REF(RefAction.APPEND, STRENGTHENING, key="qa")
                >> GEN("answer", prompt="qa"),
            )
        )
        state = pipeline.apply(state)
        calls += int(state.metadata["gen_calls"])
        confidences.append(state.metadata["confidence"])
    return calls, llm.total_latency, sum(confidences) / len(confidences)


def _predictive() -> tuple[int, float, float]:
    """Risk-score the prompt first; refine before the (single) GEN."""
    llm = SimulatedLLM()
    llm.bind_clinical(_corpus)
    risk_model = HeuristicRiskModel(get_profile("qwen2.5-7b-instruct"))
    calls = 0
    confidences = []
    for patient in _corpus:
        state = ExecutionState(model=llm, clock=llm.clock)
        state.context.put("notes", _notes(patient))
        state.prompts.create("qa", WEAK_PROMPT)
        pipeline = PredictiveRefine(
            "qa",
            risk_model,
            REF(RefAction.APPEND, STRENGTHENING, key="qa"),
            threshold=0.15,
        ) >> GEN("answer", prompt="qa")
        state = pipeline.apply(state)
        calls += int(state.metadata["gen_calls"])
        confidences.append(state.metadata["confidence"])
    return calls, llm.total_latency, sum(confidences) / len(confidences)


def test_reactive_retry(once):
    calls, seconds, confidence = once(_reactive)
    # The weak prompt triggers retries: more than one call per item.
    assert calls > N_PATIENTS
    print(f"reactive: {calls} calls, {seconds:.1f}s, conf {confidence:.2f}")


def test_predictive_refinement(once):
    calls, seconds, confidence = once(_predictive)
    assert calls == N_PATIENTS  # exactly one generation per item
    reactive_calls, reactive_seconds, reactive_conf = _reactive()
    assert calls < reactive_calls
    assert seconds < reactive_seconds
    # Quality preserved: predictive confidence within noise of reactive.
    assert confidence > reactive_conf - 0.05
    print(
        f"predictive: {calls} calls ({reactive_calls} reactive), "
        f"{seconds:.1f}s ({reactive_seconds:.1f}s reactive)"
    )
