#!/usr/bin/env python
"""Continuous-batching scheduler benchmark: GEN engine vs sequential.

Runs the Table-3 workload (Map: summarize + Filter: negative sentiment
over the seeded tweet corpus, sharing the scaffold prefix) through the
event-driven :class:`~repro.runtime.scheduler.GenScheduler` and reports,
per worker count, the simulated-time speedup over the sequential
baseline plus the engine's own accounting: steps, mean step size, queue
wait p50/p99, forced (watermark) admissions, and preemptions.

Four additional arms exercise the policy surface:

- a **token-budget sweep** at the widest worker count (steps must stay
  within ``max_batch_tokens`` while outputs stay byte-identical);
- a **mixed-priority arm** (every 4th item ``interactive`` with a
  deadline, the rest ``bulk``) asserting the interactive class waits no
  longer than bulk at the median and that preemptions are counted;
- a **determinism arm**: two same-seed ledgered runs must ``spear diff
  --gate`` to zero — batch composition is a function of the workload,
  never of host thread timing;
- byte-identity everywhere: every scheduled arm's outputs are compared
  against the sequential baseline and must match exactly.

Writes ``BENCH_scheduler.json`` at the repo root (or ``--output``) and
exits non-zero when the speedup at the widest configuration falls below
``--min-speedup`` (CI gates at 3.0 at 16 workers).

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler.py
    PYTHONPATH=src python benchmarks/bench_scheduler.py --tiny
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for entry in (str(SRC), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.bench_throughput_parallel import (  # noqa: E402
    PROFILE,
    bind,
    build_pipeline,
    build_state,
    outputs_of,
)
from repro.cli import main as spear_main  # noqa: E402
from repro.obs.ledger import Ledger  # noqa: E402
from repro.runtime.batch import BatchRunner  # noqa: E402
from repro.runtime.options import RuntimeOptions  # noqa: E402
from repro.runtime.parallel import ParallelBatchRunner  # noqa: E402
from repro.runtime.scheduler import SchedulerConfig  # noqa: E402

WORKER_COUNTS = (1, 4, 16)
TOKEN_BUDGETS = (1024, 320)


def _quantile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _engine_stats(runner: ParallelBatchRunner) -> dict:
    engine = runner.last_batcher
    waits = [
        member.wait for record in engine.steps for member in record.members
    ]
    snapshot = engine.snapshot()
    return {
        "steps": int(snapshot["flushes"]),
        "mean_step_size": round(snapshot["mean_batch_size"], 2),
        "largest_step": int(snapshot["largest_batch"]),
        "forced": int(snapshot["forced"]),
        "preemptions": int(snapshot["preemptions"]),
        "wait_p50_s": round(_quantile(waits, 0.50), 4),
        "wait_p99_s": round(_quantile(waits, 0.99), 4),
    }


def _scheduled_run(
    n_items: int,
    seed: int,
    workers: int,
    *,
    options: RuntimeOptions | None = None,
) -> tuple[ParallelBatchRunner, object, float]:
    state, items = build_state(n_items, seed)
    runner = ParallelBatchRunner(
        state, bind=bind, workers=workers, options=options or RuntimeOptions()
    )
    wall0 = time.perf_counter()
    batch = runner.run(build_pipeline(), items=items)
    return runner, batch, time.perf_counter() - wall0


def _assert_identical(batch, baseline_outputs, arm: str) -> None:
    if outputs_of(batch) != baseline_outputs:
        raise AssertionError(
            f"{arm}: scheduled outputs diverged from the sequential baseline"
        )


def run_worker_sweep(n_items: int, seed: int, sequential, baseline) -> dict:
    sweep = {}
    for workers in WORKER_COUNTS:
        runner, batch, host_wall = _scheduled_run(n_items, seed, workers)
        _assert_identical(batch, baseline, f"workers={workers}")
        speedup = sequential.elapsed / batch.elapsed if batch.elapsed else 0.0
        sweep[str(workers)] = {
            "sim_elapsed_s": batch.elapsed,
            "items_per_sim_s": batch.throughput,
            "speedup": round(speedup, 3),
            "utilization": round(
                sequential.elapsed / (workers * batch.elapsed), 3
            )
            if batch.elapsed
            else 0.0,
            "host_wall_s": round(host_wall, 4),
            **_engine_stats(runner),
        }
    return sweep


def run_token_budget_sweep(
    n_items: int, seed: int, workers: int, sequential, baseline
) -> dict:
    sweep = {}
    for budget in TOKEN_BUDGETS:
        config = SchedulerConfig(max_batch_tokens=budget)
        runner, batch, _ = _scheduled_run(
            n_items, seed, workers, options=RuntimeOptions(scheduler=config)
        )
        _assert_identical(batch, baseline, f"max_batch_tokens={budget}")
        engine = runner.last_batcher
        oversize = [
            record
            for record in engine.steps
            if record.tokens > budget and record.size > 1
        ]
        if oversize:
            raise AssertionError(
                f"max_batch_tokens={budget}: {len(oversize)} steps exceeded "
                "the token budget with more than one member"
            )
        speedup = sequential.elapsed / batch.elapsed if batch.elapsed else 0.0
        sweep[str(budget)] = {
            "speedup": round(speedup, 3),
            **_engine_stats(runner),
        }
    return sweep


def run_mixed_priority_arm(
    n_items: int, seed: int, workers: int, baseline
) -> dict:
    """Every 4th item is interactive with a deadline; the rest are bulk."""

    def priority_of(item) -> str:
        return "interactive" if int(item.uid[-1]) % 4 == 0 else "bulk"

    options = RuntimeOptions(
        scheduler=SchedulerConfig(max_batch=4, watermark_s=1e9),
        priority=priority_of,
        deadline_s=lambda item: 2.0 if priority_of(item) == "interactive" else None,
    )
    runner, batch, _ = _scheduled_run(n_items, seed, workers, options=options)
    _assert_identical(batch, baseline, "mixed-priority")
    engine = runner.last_batcher
    stats = engine.wait_stats()
    interactive, bulk = stats["interactive"], stats["bulk"]
    if interactive["p50"] > bulk["p50"]:
        raise AssertionError(
            f"interactive p50 wait {interactive['p50']:.4f}s exceeds "
            f"bulk p50 {bulk['p50']:.4f}s — the priority policy is inverted"
        )
    return {
        "workers": workers,
        "preemptions": int(engine.preemptions),
        "classes": {
            name: {
                "count": class_stats["count"],
                "wait_mean_s": round(class_stats["mean"], 4),
                "wait_p50_s": round(class_stats["p50"], 4),
                "wait_p95_s": round(class_stats["p95"], 4),
            }
            for name, class_stats in sorted(stats.items())
        },
    }


def run_determinism_arm(n_items: int, seed: int, workers: int) -> dict:
    """Two same-seed ledgered runs must ``spear diff --gate`` to zero."""
    with tempfile.TemporaryDirectory(prefix="bench_sched_") as tmp:
        run_dirs = []
        for rep in range(2):
            root = Path(tmp) / f"runs_{rep}"
            _scheduled_run(
                n_items,
                seed,
                workers,
                options=RuntimeOptions(ledger_dir=root),
            )
            run_dirs.append(Ledger(root).latest().path)
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            code = spear_main(
                ["diff", str(run_dirs[0]), str(run_dirs[1]), "--gate"]
            )
    if code != 0:
        raise AssertionError(
            f"spear diff --gate exited {code}: same-seed scheduler runs "
            f"are not deterministic\n{sink.getvalue()}"
        )
    return {"workers": workers, "diff_gate_exit": code, "identical": True}


def run_benchmark(n_items: int, seed: int) -> dict:
    pipeline = build_pipeline()
    state, items = build_state(n_items, seed)
    wall0 = time.perf_counter()
    sequential = BatchRunner(state, bind=bind).run(pipeline, items=items)
    seq_wall = time.perf_counter() - wall0
    baseline = outputs_of(sequential)

    widest = max(WORKER_COUNTS)
    return {
        "profile": PROFILE,
        "items": n_items,
        "seed": seed,
        "sequential": {
            "sim_elapsed_s": sequential.elapsed,
            "items_per_sim_s": sequential.throughput,
            "host_wall_s": round(seq_wall, 4),
        },
        "scheduler": run_worker_sweep(n_items, seed, sequential, baseline),
        "token_budget": run_token_budget_sweep(
            n_items, seed, widest, sequential, baseline
        ),
        "mixed_priority": run_mixed_priority_arm(n_items, seed, 8, baseline),
        "determinism": run_determinism_arm(n_items, seed, widest),
        "outputs_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=120, help="corpus size (default 120)"
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke: 48 items, same arms",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="fail when speedup at the widest worker count is below this",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_scheduler.json"
    )
    args = parser.parse_args(argv)

    n_items = 48 if args.tiny else args.items
    result = run_benchmark(n_items, args.seed)

    widest = str(max(WORKER_COUNTS))
    speedup = result["scheduler"][widest]["speedup"]
    result["widest_workers"] = int(widest)
    result["widest_speedup"] = speedup
    result["min_speedup"] = args.min_speedup
    result["ok"] = speedup >= args.min_speedup

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"sequential: {result['sequential']['sim_elapsed_s']:.2f}s simulated, "
        f"{result['sequential']['items_per_sim_s']:.3f} items/s"
    )
    for workers in WORKER_COUNTS:
        row = result["scheduler"][str(workers)]
        print(
            f"workers={workers:3d}: speedup {row['speedup']:.2f}x, "
            f"{row['steps']} steps (mean size {row['mean_step_size']}), "
            f"wait p50 {row['wait_p50_s']:.3f}s / p99 {row['wait_p99_s']:.3f}s, "
            f"utilization {row['utilization']:.0%}"
        )
    mixed = result["mixed_priority"]
    print(
        "mixed priority: interactive p50 "
        f"{mixed['classes']['interactive']['wait_p50_s']:.3f}s vs bulk "
        f"{mixed['classes']['bulk']['wait_p50_s']:.3f}s, "
        f"{mixed['preemptions']} preemptions"
    )
    print(
        f"determinism: same-seed runs diff --gate exit "
        f"{result['determinism']['diff_gate_exit']} (identical)"
    )
    if not result["ok"]:
        print(
            f"FAIL: speedup at {widest} workers is {speedup:.2f}x "
            f"< required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
