"""Benchmark: the semantic layer's adaptive plan vs fixed policies.

At low selectivity, a Filter→Map query should stay sequential (predicate
pushdown); a policy that always fuses pays for summaries it throws away.
At high selectivity the opposite holds.  The adaptive executor — pilot
sampling + SPEAR's fusion planner — must match the better fixed policy in
each regime (within the pilot's overhead).
"""

from __future__ import annotations

from repro.data.tweets import make_tweet_corpus
from repro.llm.model import SimulatedLLM
from repro.semantic import SemanticExecutor, SemanticQuery

MAP_INSTRUCTION = "Summarize and clean up the tweet in at most 30 words."
FILTER_INSTRUCTION = (
    "Select the tweet only if its sentiment is negative. Respond with yes or no."
)
N_ITEMS = 120


def _run(selectivity: float, policy: str, n: int = N_ITEMS) -> float:
    """Execute filter→map under one policy; returns simulated seconds."""
    corpus = make_tweet_corpus(n, seed=7, negative_fraction=selectivity)
    llm = SimulatedLLM()
    llm.bind_tweets(corpus)
    query = (
        SemanticQuery([tweet.text for tweet in corpus])
        .sem_filter(FILTER_INSTRUCTION)
        .sem_map(MAP_INSTRUCTION)
    )
    if policy == "adaptive":
        executor = SemanticExecutor(llm)
    elif policy == "never_fuse":
        executor = SemanticExecutor(llm, enable_fusion=False)
    elif policy == "always_fuse":
        # Force fusion regardless of cost by making the pilot see 100%.
        executor = SemanticExecutor(llm, pilot_size=0)
        executor._estimate_selectivity = lambda op, items, result: 1.0  # type: ignore[method-assign]
    else:
        raise ValueError(policy)
    return executor.execute(query).sim_seconds


def test_adaptive_low_selectivity(once):
    # Larger n so the one-time pilot cost amortizes below the per-item
    # advantage of predicate pushdown.
    adaptive = once(_run, 0.1, "adaptive", n=300)
    always = _run(0.1, "always_fuse", n=300)
    # Pushdown regime: adaptive (sequential) beats forced fusion.
    assert adaptive < always
    print(f"s=10%: adaptive {adaptive:.0f}s vs always-fuse {always:.0f}s")


def test_adaptive_high_selectivity(once):
    adaptive = once(_run, 0.95, "adaptive")
    never = _run(0.95, "never_fuse")
    # Fusion regime: adaptive (fused) beats forced-sequential.
    assert adaptive < never
    print(f"s=95%: adaptive {adaptive:.0f}s vs never-fuse {never:.0f}s")


def test_adaptive_never_catastrophic(once):
    def sweep():
        worst_ratio = 0.0
        for selectivity in (0.1, 0.5, 0.95):
            adaptive = _run(selectivity, "adaptive")
            best_fixed = min(
                _run(selectivity, "never_fuse"), _run(selectivity, "always_fuse")
            )
            worst_ratio = max(worst_ratio, adaptive / best_fixed)
        return worst_ratio

    worst_ratio = once(sweep)
    # The pilot costs a little, but adaptive never loses badly to the
    # best fixed policy in any regime.
    assert worst_ratio < 1.15
    print(f"worst adaptive/best-fixed ratio across regimes: {worst_ratio:.3f}")
