#!/usr/bin/env python
"""Multi-tenant serving benchmark: latency, throughput, shedding, identity.

Drives the :class:`~repro.serve.server.SpearServer` pool with the
deterministic synthetic traffic driver over the Table-3 tweet workload
(Map: summarize + Filter: negative sentiment) and reports three arms:

- **nominal** — 16 tenants each submitting exactly their queue limit at
  8 workers: zero sheds expected; reports simulated latency p50/p99,
  wall-clock throughput, and per-tenant cache warmth;
- **overload** — the same pool at 4× the admission limit: the server
  must *shed* the excess (exactly ``(4-1) × limit`` per tenant, a pure
  function of the config) rather than queue unboundedly or deadlock;
- **identity** — one non-interactive tenant's ledgered request compared
  against a standalone executor run of the same pipeline with ``spear
  diff --gate``: exit 0 proves serving adds zero behavioral drift.

Writes ``BENCH_serve.json`` at the repo root (or ``--output``) and exits
non-zero when any gate fails: nominal sheds, wrong overload shed count,
non-finite p99, or a failed identity diff.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --tiny
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import math
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.cli import main as spear_main  # noqa: E402
from repro.core import GEN, Pipeline  # noqa: E402
from repro.data import make_tweet_corpus  # noqa: E402
from repro.llm.model import SimulatedLLM  # noqa: E402
from repro.runtime.clock import VirtualClock  # noqa: E402
from repro.runtime.executor import Executor  # noqa: E402
from repro.runtime.options import RuntimeOptions  # noqa: E402
from repro.runtime.result_cache import ResultCache  # noqa: E402
from repro.serve import ServeRequest, SpearServer  # noqa: E402
from repro.serve.traffic import (  # noqa: E402
    FILTER_PROMPT,
    MAP_PROMPT,
    PROFILE,
    TrafficConfig,
    build_demo_server,
    run_traffic,
)


def traffic_arm(config: TrafficConfig) -> dict:
    metrics = run_traffic(build_demo_server(config), config)
    sessions = metrics.pop("sessions")
    kv_hit_rates = [
        session["model"]["kv_cache"]["hit_rate"]
        for session in sessions.values()
        if "kv_cache" in session.get("model", {})
    ]
    if kv_hit_rates:
        metrics["mean_tenant_kv_hit_rate"] = round(
            sum(kv_hit_rates) / len(kv_hit_rates), 4
        )
    return metrics


def identity_arm(corpus_size: int, seed: int) -> dict:
    """Serve one request, run the same pipeline standalone, diff ledgers."""
    corpus = make_tweet_corpus(corpus_size, seed=seed)
    tweet = corpus[0]
    pipeline = Pipeline(
        [GEN("summary", prompt="map_p"), GEN("neg", prompt="filter_p")]
    )
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        server = SpearServer(
            profile=PROFILE,
            binder=lambda llm: llm.bind_tweets(corpus),
            workers=1,
            ledger_dir=str(root / "serve"),
        )
        server.register_pipeline(
            "summarize_filter",
            pipeline,
            prompts={"map_p": MAP_PROMPT, "filter_p": FILTER_PROMPT},
        )
        server.add_tenant("ident")
        with server:
            response = server.submit(
                ServeRequest(
                    tenant="ident",
                    pipeline="summarize_filter",
                    context={"tweet": tweet.text},
                )
            ).result()

        clock = VirtualClock()
        llm = SimulatedLLM(PROFILE, clock=clock)
        llm.bind_tweets(make_tweet_corpus(corpus_size, seed=seed))
        executor = Executor(
            options=RuntimeOptions(
                model=llm,
                clock=clock,
                result_cache=ResultCache(),
                scheduler=True,
                ledger_dir=str(root / "solo"),
            )
        )
        state = executor.new_state()
        state.prompts.create("map_p", MAP_PROMPT)
        state.prompts.create("filter_p", FILTER_PROMPT)
        state.context.put("tweet", tweet.text, producer="serve")
        reference = executor.run(pipeline, state=state)

        outputs_match = response.ok and all(
            response.output(label) == reference.output(label)
            for label in ("summary", "neg")
        )
        (serve_run,) = sorted((root / "serve" / "ident").iterdir())
        (solo_run,) = sorted(
            p for p in (root / "solo").iterdir() if p.is_dir()
        )
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            exit_code = spear_main(
                ["diff", str(serve_run), str(solo_run), "--gate"]
            )
    return {
        "outputs_match": bool(outputs_match),
        "diff_gate_exit": int(exit_code),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=16)
    parser.add_argument("--queue-limit", type=int, default=8)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--overload", type=int, default=4)
    parser.add_argument("--corpus", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke scale: 6 tenants, queue limit 3, 4 workers",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_serve.json"
    )
    args = parser.parse_args(argv)
    if args.tiny:
        args.tenants, args.queue_limit, args.workers = 6, 3, 4
        args.corpus = 16

    base = dict(
        tenants=args.tenants,
        queue_limit=args.queue_limit,
        workers=args.workers,
        corpus_size=args.corpus,
        seed=args.seed,
    )
    nominal = traffic_arm(TrafficConfig(**base))
    overload = traffic_arm(TrafficConfig(**base, overload=args.overload))
    identity = identity_arm(args.corpus, args.seed)

    expected_shed = (
        args.tenants * args.queue_limit * (args.overload - 1)
    )
    gates = {
        "nominal_shed_zero": nominal["shed"] == 0 and nominal["errors"] == 0,
        "nominal_p99_finite": math.isfinite(nominal["latency_p99_s"])
        and nominal["latency_p99_s"] > 0.0,
        "overload_sheds_exact_excess": overload["shed"] == expected_shed,
        "overload_serves_admitted": overload["served"]
        == args.tenants * args.queue_limit,
        "identity_outputs_match": identity["outputs_match"],
        "identity_diff_gate": identity["diff_gate_exit"] == 0,
    }
    payload = {
        "benchmark": "serve",
        "profile": PROFILE,
        "config": {**base, "overload": args.overload},
        "nominal": nominal,
        "overload": overload,
        "identity": identity,
        "gates": gates,
    }
    args.output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    print(
        f"nominal: {nominal['served']}/{nominal['submitted']} served, "
        f"p50 {nominal['latency_p50_s']}s p99 {nominal['latency_p99_s']}s, "
        f"{nominal['throughput_rps']} req/s"
    )
    print(
        f"overload x{args.overload}: {overload['served']} served, "
        f"{overload['shed']} shed ({overload['shed_rate'] * 100:.0f}%)"
    )
    print(
        f"identity: outputs_match={identity['outputs_match']} "
        f"diff_gate_exit={identity['diff_gate_exit']}"
    )
    failed = [name for name, passed in gates.items() if not passed]
    if failed:
        print(f"GATE FAILURES: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
