"""Benchmark configuration.

Every benchmark runs the measured harness exactly once per round
(simulated latency is deterministic; repeated rounds only measure Python
overhead), and asserts the paper's shape claims on the produced results so
a regression in either speed *or* behaviour fails the bench run.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable through pytest-benchmark exactly once, return result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
