#!/usr/bin/env python
"""Result-cache benchmark: incremental vs full refinement-loop re-runs.

Runs a Table-3-style refinement loop — a per-item Map (summarize),
Enrich (keywords), Digest (takeaway) prefix feeding a short Filter
(negative sentiment) stage — for five iterations, where each iteration
boundary refines *only the filter prompt*.  The uncached arm re-executes
the whole pipeline every iteration; the cached arm attaches a
:class:`~repro.runtime.result_cache.ResultCache`, so after each
refinement only the filter stage (the refined prompt's transitive
dependents) re-runs while the upstream stages splice their memoized
``(C, M)`` deltas at ~zero simulated cost.

Both arms disable the model's prefix cache so the measurement isolates
the result-cache tier: every quantity (latency signals included) is then
a pure function of the prompt, which is also what makes the byte-identity
assertion below exact.  The tiers compose in normal use; see
``docs/caching.md``.

Asserts the final context and metadata of the cached arm are
byte-identical to the uncached arm, writes ``BENCH_result_cache.json``
at the repo root (or ``--output``), and exits non-zero when the
simulated-time speedup falls below ``--min-speedup`` (CI uses 2.0; the
acceptance bar for the workload is 3.0).

Usage::

    PYTHONPATH=src python benchmarks/bench_result_cache.py
    PYTHONPATH=src python benchmarks/bench_result_cache.py --tiny
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import GEN, REF, FunctionOperator, Pipeline  # noqa: E402
from repro.core.state import ExecutionState  # noqa: E402
from repro.data import make_tweet_corpus  # noqa: E402
from repro.experiments.common import (  # noqa: E402
    FILTER_NEG_INSTRUCTION,
    MAP_INSTRUCTION,
    SCAFFOLD,
)
from repro.llm.model import SimulatedLLM  # noqa: E402
from repro.runtime.executor import Executor  # noqa: E402
from repro.runtime.incremental import RefinementLoop  # noqa: E402
from repro.runtime.options import RuntimeOptions  # noqa: E402
from repro.runtime.result_cache import ResultCache  # noqa: E402

PROFILE = "qwen2.5-7b-instruct"
ITERATIONS = 5

ENRICH_INSTRUCTION = (
    "List the key topics and entities the tweet mentions, one per line."
)
DIGEST_INSTRUCTION = (
    "Condense the summary above into a single factual takeaway sentence."
)

#: The per-iteration focus hints the refiner appends to the filter
#: prompt — the Table-3 "manual refinement" move, repeated.
REFINEMENT_HINTS = (
    "Focus on school-related content such as classes and exams.",
    "Also count complaints about teachers and homework as school-related.",
    "Ignore sarcasm-free positive mentions of school events.",
    "Treat exam-stress venting as negative school content.",
)


def build_state(n_items: int, seed: int) -> tuple[ExecutionState, list]:
    """Fresh model + corpus + prompts (cold everything) for one arm."""
    llm = SimulatedLLM(PROFILE, enable_prefix_cache=False)
    corpus = make_tweet_corpus(n_items, seed=seed)
    llm.bind_tweets(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    state.prompts.create(
        "map_p", SCAFFOLD + "\n" + MAP_INSTRUCTION + "\nTweet:\n{tweet}"
    )
    state.prompts.create(
        "enrich_p", SCAFFOLD + "\n" + ENRICH_INSTRUCTION + "\nTweet:\n{tweet}"
    )
    state.prompts.create(
        "digest_p",
        SCAFFOLD + "\nSummary:\n{summary}\n" + DIGEST_INSTRUCTION,
    )
    state.prompts.create(
        "filter_p", FILTER_NEG_INSTRUCTION + "\nTweet:\n{tweet}"
    )
    return state, list(corpus)


def build_pipeline(items: list) -> Pipeline:
    """One long pipeline: bind → Map → Enrich → Digest → Filter per item.

    The three upstream stages carry the heavy scaffold and full decode
    budgets; the refined filter stage is short with a tiny decode — the
    regime where invalidating only the filter suffix pays off.
    """
    operators = []
    for index, tweet in enumerate(items):
        text = tweet.text

        def bind(state: ExecutionState, _text: str = text) -> ExecutionState:
            state.context.put("tweet", _text, producer="bind")
            return state

        operators.append(FunctionOperator(bind, label=f"BIND[{index}]"))
        operators.append(GEN("summary", prompt="map_p"))
        operators.append(GEN("keywords", prompt="enrich_p"))
        operators.append(GEN("takeaway", prompt="digest_p"))
        operators.append(GEN("verdict", prompt="filter_p", max_tokens=8))
    return Pipeline(operators, name="bench_result_cache")


def build_refiners() -> list:
    return [
        REF("APPEND", hint, key="filter_p", function_name=f"f_focus_{index}")
        for index, hint in enumerate(REFINEMENT_HINTS[: ITERATIONS - 1])
    ]


def freeze_outputs(state: ExecutionState) -> str:
    """A byte-exact serialization of the final (C, M) pair."""
    context = {key: repr(state.context[key]) for key in state.context.keys()}
    metadata = {key: repr(state.metadata[key]) for key in state.metadata.keys()}
    return json.dumps({"context": context, "metadata": metadata}, sort_keys=True)


def run_arm(n_items: int, seed: int, *, cached: bool) -> dict:
    state, items = build_state(n_items, seed)
    cache = ResultCache(capacity=16384) if cached else None
    executor = Executor(
        options=RuntimeOptions(
            model=state.model, clock=state.clock, result_cache=cache
        )
    )
    loop = RefinementLoop(
        executor,
        build_pipeline(items),
        refiners=build_refiners(),
        max_iterations=ITERATIONS,
    )
    wall0 = time.perf_counter()
    report = loop.run(state)
    host_wall = time.perf_counter() - wall0
    assert report.final is not None
    return {
        "sim_elapsed_s": report.total_elapsed,
        "host_wall_s": round(host_wall, 4),
        "iterations": report.to_dict()["iterations"],
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "saved_seconds": report.total_saved_seconds,
        "outputs": freeze_outputs(report.final.state),
        "cache_snapshot": cache.snapshot() if cache is not None else None,
    }


def run_benchmark(n_items: int, seed: int) -> dict:
    uncached = run_arm(n_items, seed, cached=False)
    cached = run_arm(n_items, seed, cached=True)

    if cached["outputs"] != uncached["outputs"]:
        raise AssertionError(
            "cached refinement loop diverged from the uncached run — "
            "final context/metadata are not byte-identical"
        )

    speedup = (
        uncached["sim_elapsed_s"] / cached["sim_elapsed_s"]
        if cached["sim_elapsed_s"]
        else 0.0
    )
    for arm in (uncached, cached):
        arm.pop("outputs")
    return {
        "profile": PROFILE,
        "items": n_items,
        "seed": seed,
        "iterations": ITERATIONS,
        "uncached": uncached,
        "cached": cached,
        "speedup": round(speedup, 3),
        "outputs_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=40, help="corpus size (default 40)"
    )
    parser.add_argument(
        "--tiny", action="store_true", help="CI smoke: 12 items"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail when the simulated-time speedup is below this",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_result_cache.json"
    )
    args = parser.parse_args(argv)

    n_items = 12 if args.tiny else args.items
    result = run_benchmark(n_items, args.seed)
    result["min_speedup"] = args.min_speedup
    result["ok"] = result["speedup"] >= args.min_speedup

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"uncached: {result['uncached']['sim_elapsed_s']:.2f}s simulated "
        f"across {ITERATIONS} iterations"
    )
    print(
        f"cached:   {result['cached']['sim_elapsed_s']:.2f}s simulated, "
        f"{result['cached']['cache_hits']} hits / "
        f"{result['cached']['cache_misses']} misses, "
        f"{result['cached']['saved_seconds']:.2f}s saved"
    )
    print(f"speedup:  {result['speedup']:.2f}x (outputs byte-identical)")
    if not result["ok"]:
        print(
            f"FAIL: speedup {result['speedup']:.2f}x "
            f"< required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
