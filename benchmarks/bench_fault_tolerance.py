#!/usr/bin/env python
"""Fault-tolerance benchmark: pipeline success under injected faults.

Runs a Table-3-style per-item workload (Map: summarize, Filter: verdict —
two GEN calls per tweet) through the sequential batch runner in four arms:

1. ``baseline``      — no fault injection, no resilience.
2. ``no_retries``    — a seeded :class:`~repro.resilience.faults.FaultPlan`
   injects transient errors, rate limits, and truncated generations at a
   combined 10% per-attempt rate; failures surface as item errors
   (``on_error="collect"``).
3. ``resilient``     — same fault seed, plus a
   :class:`~repro.resilience.runtime.ResilienceRuntime` (exponential-
   backoff retries, a per-model circuit breaker, and a cheaper-model
   fallback).  Run twice to prove the whole arm is deterministic.
4. ``resilient_no_faults`` — resilience attached but injection disabled;
   outputs must be byte-identical to ``baseline`` (the clean path adds
   no events, metadata, or clock charges).

Writes ``BENCH_fault.json`` at the repo root (or ``--output``) and exits
non-zero when the resilient arm's success rate falls below
``--min-success`` (CI uses 0.99), when the no-retries arm is not
measurably worse, or when any identity/determinism assertion fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --tiny
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import GEN, FunctionOperator, Pipeline  # noqa: E402
from repro.core.state import ExecutionState  # noqa: E402
from repro.data import make_tweet_corpus  # noqa: E402
from repro.experiments.common import (  # noqa: E402
    FILTER_NEG_INSTRUCTION,
    MAP_INSTRUCTION,
    SCAFFOLD,
)
from repro.llm.model import SimulatedLLM  # noqa: E402
from repro.resilience import (  # noqa: E402
    BreakerPolicy,
    FallbackChain,
    FaultPlan,
    FaultSpec,
    ModelFallback,
    ResilienceRuntime,
    RetryPolicy,
)
from repro.runtime.batch import BatchRunner  # noqa: E402

PROFILE = "qwen2.5-7b-instruct"
FALLBACK_PROFILE = "gpt-4o-mini"

#: 10% combined per-attempt failure rate, split across the channels real
#: serving exhibits (the timeout channel is exercised in unit tests; here
#: it would conflate per-attempt deadlines with the injection rate).
FAULTS = FaultSpec(
    transient_rate=0.06,
    rate_limit_rate=0.02,
    malformed_rate=0.02,
    spike_rate=0.05,
)

RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.2, multiplier=2.0, jitter=0.1)
BREAKER = BreakerPolicy(failure_threshold=8, cooldown_s=5.0)
FALLBACK = FallbackChain((ModelFallback(FALLBACK_PROFILE),))


def build_state(
    n_items: int,
    seed: int,
    *,
    faults: bool,
    resilient: bool,
) -> tuple[ExecutionState, list]:
    """Fresh model + corpus + prompts (cold everything) for one arm."""
    llm = SimulatedLLM(
        PROFILE,
        enable_prefix_cache=False,
        fault_plan=FaultPlan(seed, default=FAULTS) if faults else None,
    )
    corpus = make_tweet_corpus(n_items, seed=seed)
    llm.bind_tweets(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    if resilient:
        state.resilience = ResilienceRuntime(
            retry=RETRY, breaker=BREAKER, fallback=FALLBACK, seed=seed
        )
    state.prompts.create(
        "map_p", SCAFFOLD + "\n" + MAP_INSTRUCTION + "\nTweet:\n{tweet}"
    )
    state.prompts.create(
        "filter_p", FILTER_NEG_INSTRUCTION + "\nTweet:\n{tweet}"
    )
    return state, list(corpus)


def build_pipeline() -> Pipeline:
    return Pipeline(
        [
            GEN("summary", prompt="map_p"),
            GEN("verdict", prompt="filter_p", max_tokens=8),
        ],
        name="bench_fault_tolerance",
    )


def bind(state: ExecutionState, tweet) -> None:
    state.context.put("tweet", tweet.text, producer="bind")


def freeze_outputs(batch) -> str:
    """A byte-exact serialization of every item's final (C, M, error)."""
    return json.dumps(
        [
            {
                "context": {
                    key: repr(value)
                    for key, value in sorted(result.context.items())
                },
                "metadata": {
                    key: repr(value)
                    for key, value in sorted(result.metadata.items())
                },
                "error": type(result.error).__name__ if result.error else None,
            }
            for result in batch.items
        ],
        sort_keys=True,
    )


def run_arm(
    n_items: int, seed: int, *, faults: bool, resilient: bool
) -> dict:
    state, items = build_state(
        n_items, seed, faults=faults, resilient=resilient
    )
    runner = BatchRunner(state, bind=bind, on_error="collect")
    wall0 = time.perf_counter()
    batch = runner.run(build_pipeline(), items=items)
    host_wall = time.perf_counter() - wall0
    failures = batch.failures()
    fault_plan = state.model.fault_plan
    arm = {
        "items": len(batch.items),
        "failures": len(failures),
        "success_rate": round(1.0 - len(failures) / len(batch.items), 4),
        "sim_elapsed_s": round(batch.elapsed, 4),
        "host_wall_s": round(host_wall, 4),
        "retries": int(
            sum(
                result.metadata.get("resilience_retries", 0)
                for result in batch.items
            )
        ),
        "degraded_runs": int(
            sum(
                result.metadata.get("degraded_runs", 0)
                for result in batch.items
            )
        ),
        "faults_injected": (
            fault_plan.snapshot()["injected"] if fault_plan is not None else None
        ),
        "error_kinds": sorted(
            {type(result.error).__name__ for result in failures}
        ),
        "outputs": freeze_outputs(batch),
    }
    return arm


def run_benchmark(n_items: int, seed: int) -> dict:
    baseline = run_arm(n_items, seed, faults=False, resilient=False)
    no_retries = run_arm(n_items, seed, faults=True, resilient=False)
    resilient = run_arm(n_items, seed, faults=True, resilient=True)
    resilient_repeat = run_arm(n_items, seed, faults=True, resilient=True)
    clean_resilient = run_arm(n_items, seed, faults=False, resilient=True)

    if resilient["outputs"] != resilient_repeat["outputs"]:
        raise AssertionError(
            "resilient arm is not deterministic: two runs with the same "
            "seed produced different outputs"
        )
    if clean_resilient["outputs"] != baseline["outputs"]:
        raise AssertionError(
            "resilience runtime with injection disabled diverged from the "
            "vanilla baseline — the clean path is supposed to be "
            "byte-identical"
        )

    outputs_identical = True
    for arm in (baseline, no_retries, resilient, resilient_repeat, clean_resilient):
        arm.pop("outputs")
    return {
        "profile": PROFILE,
        "fallback_profile": FALLBACK_PROFILE,
        "items": n_items,
        "seed": seed,
        "fault_rate": FAULTS.failure_rate,
        "retry_policy": {
            "max_attempts": RETRY.max_attempts,
            "base_delay_s": RETRY.base_delay_s,
            "multiplier": RETRY.multiplier,
        },
        "baseline": baseline,
        "no_retries": no_retries,
        "resilient": resilient,
        "resilient_no_faults": clean_resilient,
        "deterministic": True,
        "clean_path_byte_identical": outputs_identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=80, help="corpus size (default 80)"
    )
    parser.add_argument(
        "--tiny", action="store_true", help="CI smoke: 24 items"
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--min-success", type=float, default=0.99,
        help="fail when the resilient arm's success rate is below this",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_fault.json"
    )
    args = parser.parse_args(argv)

    n_items = 24 if args.tiny else args.items
    result = run_benchmark(n_items, args.seed)
    result["min_success"] = args.min_success
    resilient = result["resilient"]
    no_retries = result["no_retries"]
    result["ok"] = (
        resilient["success_rate"] >= args.min_success
        and no_retries["success_rate"] < resilient["success_rate"]
    )

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"baseline:   {result['baseline']['success_rate'] * 100:.1f}% success "
        f"({result['baseline']['items']} items, no faults)"
    )
    print(
        f"no retries: {no_retries['success_rate'] * 100:.1f}% success at "
        f"{result['fault_rate'] * 100:.0f}% injected fault rate "
        f"({no_retries['failures']} failures)"
    )
    print(
        f"resilient:  {resilient['success_rate'] * 100:.1f}% success, "
        f"{resilient['retries']} retries, "
        f"{resilient['degraded_runs']} degraded runs"
    )
    print(
        "clean path: byte-identical to baseline with injection disabled; "
        "resilient arm deterministic across two runs"
    )
    if not result["ok"]:
        print(
            f"FAIL: resilient success {resilient['success_rate']:.4f} "
            f"< required {args.min_success} (or no measurable gap vs "
            f"no-retries at {no_retries['success_rate']:.4f})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
