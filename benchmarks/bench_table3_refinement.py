"""Benchmark regenerating Table 3: prompt refinement strategy comparison.

Each strategy's full Map + refined-Filter pipeline is benchmarked over the
synthetic Sentiment140 stand-in; the produced simulated-latency /
F1 / cache-hit numbers are asserted against the paper's shape and printed
in the paper's row format.

Regenerate at full scale with: ``python -m repro.experiments.refinement_strategies``
"""

from __future__ import annotations

import json

import pytest

from repro.data.tweets import make_tweet_corpus
from repro.experiments.refinement_strategies import (
    PAPER_TABLE3,
    STRATEGIES,
    run_strategy,
    run_table3,
)
from repro.obs import ObsCollector, build_report
from repro.obs.exporters import write_json_report

N_ITEMS = 200
_corpus = make_tweet_corpus(N_ITEMS, seed=7)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_pipeline(once, strategy):
    """Per-strategy pipeline wall time + shape checks."""
    result = once(run_strategy, strategy, _corpus)
    paper = PAPER_TABLE3[strategy]
    # Cache-hit shape: refinement modes reuse prefixes, others do not.
    if paper["cache_hit"] > 50:
        assert result.filter_cache_hit > 0.75
    else:
        assert result.filter_cache_hit < 0.05
    assert 0.5 < result.f1 < 0.95


def test_table3_full(once, tmp_path):
    """The whole table in one run; prints measured vs paper rows.

    The run is observed by an :class:`ObsCollector`; alongside the table a
    JSON :class:`RunReport` is persisted and checked to be numerically
    identical to the in-process registry.
    """
    collector = ObsCollector()
    table = once(run_table3, n=N_ITEMS, seed=7, collector=collector)
    # Headline shape claims (paper §7, Table 3).
    assert table.speedup("manual") > 1.15
    assert table.speedup("assisted") > 1.15
    assert table.speedup("auto") > 1.15
    assert 1.0 < table.speedup("agentic") < 1.25
    auto = table.results["auto"].f1
    assert auto >= table.results["static"].f1
    assert auto >= table.results["manual"].f1
    for row in table.rows():
        print(row)

    report = build_report(collector)
    path = write_json_report(report, tmp_path / "table3_run_report.json")
    loaded = json.loads(path.read_text())
    registry = collector.registry
    # The persisted report and the in-process registry agree exactly.
    assert loaded["totals"]["model_gen_calls"] == int(
        registry.sum_counter("spear_model_gen_calls_total")
    )
    for strategy in STRATEGIES:
        label = f"qwen2.5-7b-instruct/{strategy}"
        section = loaded["model"][label]
        # Map + Filter per item, plus any strategy-specific rewrite calls.
        assert section["calls"] >= 2 * N_ITEMS
        assert section["calls"] == int(
            registry.get("spear_model_gen_calls_total", model=label).value
        )
        assert section["prompt_tokens"] == int(
            registry.get("spear_model_prompt_tokens_total", model=label).value
        )
    print(f"run report written to {path}")
