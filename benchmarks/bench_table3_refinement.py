"""Benchmark regenerating Table 3: prompt refinement strategy comparison.

Each strategy's full Map + refined-Filter pipeline is benchmarked over the
synthetic Sentiment140 stand-in; the produced simulated-latency /
F1 / cache-hit numbers are asserted against the paper's shape and printed
in the paper's row format.

Alongside the pytest run, the measured table is persisted as
``BENCH_table3.json`` at the repo root (mirroring ``BENCH_parallel.json``)
so CI can archive it.  The module is also directly executable for the CI
bench-smoke job: ``python benchmarks/bench_table3_refinement.py --tiny``.

Regenerate at full scale with: ``python -m repro.experiments.refinement_strategies``
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest  # noqa: E402

from repro.data.tweets import make_tweet_corpus  # noqa: E402
from repro.experiments.refinement_strategies import (  # noqa: E402
    PAPER_TABLE3,
    STRATEGIES,
    Table3Result,
    run_strategy,
    run_table3,
)
from repro.obs import ObsCollector, build_report  # noqa: E402
from repro.obs.exporters import write_json_report  # noqa: E402

N_ITEMS = 200
_corpus = make_tweet_corpus(N_ITEMS, seed=7)


def table_to_dict(table: Table3Result) -> dict:
    """Serialize a measured table next to the paper's reference rows."""
    return {
        "corpus_size": table.corpus_size,
        "strategies": {
            strategy: {
                "mean_item_seconds": round(result.mean_item_seconds, 4),
                "speedup": round(table.speedup(strategy), 3),
                "f1": round(result.f1, 4),
                "f1_gain_pct": round(table.f1_gain_pct(strategy), 2),
                "filter_cache_hit_pct": round(result.filter_cache_hit * 100.0, 2),
            }
            for strategy, result in table.results.items()
        },
        "paper": PAPER_TABLE3,
    }


def write_bench_json(table: Table3Result, path: Path) -> Path:
    path.write_text(json.dumps(table_to_dict(table), indent=2) + "\n")
    return path


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_pipeline(once, strategy):
    """Per-strategy pipeline wall time + shape checks."""
    result = once(run_strategy, strategy, _corpus)
    paper = PAPER_TABLE3[strategy]
    # Cache-hit shape: refinement modes reuse prefixes, others do not.
    if paper["cache_hit"] > 50:
        assert result.filter_cache_hit > 0.75
    else:
        assert result.filter_cache_hit < 0.05
    assert 0.5 < result.f1 < 0.95


def test_table3_full(once, tmp_path):
    """The whole table in one run; prints measured vs paper rows.

    The run is observed by an :class:`ObsCollector`; alongside the table a
    JSON :class:`RunReport` is persisted and checked to be numerically
    identical to the in-process registry.
    """
    collector = ObsCollector()
    table = once(run_table3, n=N_ITEMS, seed=7, collector=collector)
    # Headline shape claims (paper §7, Table 3).
    assert table.speedup("manual") > 1.15
    assert table.speedup("assisted") > 1.15
    assert table.speedup("auto") > 1.15
    assert 1.0 < table.speedup("agentic") < 1.25
    auto = table.results["auto"].f1
    assert auto >= table.results["static"].f1
    assert auto >= table.results["manual"].f1
    for row in table.rows():
        print(row)
    print(f"wrote {write_bench_json(table, REPO_ROOT / 'BENCH_table3.json')}")

    report = build_report(collector)
    path = write_json_report(report, tmp_path / "table3_run_report.json")
    loaded = json.loads(path.read_text())
    registry = collector.registry
    # The persisted report and the in-process registry agree exactly.
    assert loaded["totals"]["model_gen_calls"] == int(
        registry.sum_counter("spear_model_gen_calls_total")
    )
    for strategy in STRATEGIES:
        label = f"qwen2.5-7b-instruct/{strategy}"
        section = loaded["model"][label]
        # Map + Filter per item, plus any strategy-specific rewrite calls.
        assert section["calls"] >= 2 * N_ITEMS
        assert section["calls"] == int(
            registry.get("spear_model_gen_calls_total", model=label).value
        )
        assert section["prompt_tokens"] == int(
            registry.get("spear_model_prompt_tokens_total", model=label).value
        )
    print(f"run report written to {path}")


def main(argv: list[str] | None = None) -> int:
    """Direct execution for the CI bench-smoke job (no pytest harness)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=N_ITEMS, help=f"corpus size (default {N_ITEMS})"
    )
    parser.add_argument("--tiny", action="store_true", help="CI smoke: 60 items")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_table3.json"
    )
    args = parser.parse_args(argv)

    n_items = 60 if args.tiny else args.items
    table = run_table3(n=n_items, seed=args.seed)
    for row in table.rows():
        print(row)
    print(f"wrote {write_bench_json(table, args.output)}")

    # The pytest bench's headline shape claims, repeated here so the
    # smoke run fails on a behaviour regression, not just on a crash.
    failures = [
        claim
        for claim, ok in (
            ("manual speedup > 1.15", table.speedup("manual") > 1.15),
            ("assisted speedup > 1.15", table.speedup("assisted") > 1.15),
            ("auto speedup > 1.15", table.speedup("auto") > 1.15),
            ("1.0 < agentic speedup < 1.25", 1.0 < table.speedup("agentic") < 1.25),
            ("auto f1 >= static f1", table.results["auto"].f1 >= table.results["static"].f1),
        )
        if not ok
    ]
    for claim in failures:
        print(f"FAIL: {claim}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
