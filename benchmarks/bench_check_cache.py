#!/usr/bin/env python
"""Incremental re-check micro-bench: warm strict mode must be ~free.

Builds a moderately branchy pipeline, runs the full static analysis
cold (graph build + every analyzer), then re-checks it through the
:class:`~repro.analysis.cache.CheckCache` many times.  Asserts:

- warm re-checks are at least ``--min-speedup`` (CI: 10x) faster than
  cold analyses, amortized;
- warm results are the *same object* the cold run produced (O(1)
  lookup, byte-identical diagnostics by construction);
- the serve registration path stays clean: a clean pipeline registers
  on a :class:`~repro.serve.server.SpearServer` with strict-by-default
  validation and no warnings.

Writes ``BENCH_check_cache.json`` at the repo root (or ``--output``).

Usage::

    PYTHONPATH=src python benchmarks/bench_check_cache.py
    PYTHONPATH=src python benchmarks/bench_check_cache.py --tiny
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import CheckCache, check_pipeline  # noqa: E402
from repro.core import (  # noqa: E402
    CHECK,
    GEN,
    REF,
    RET,
    Condition,
    Pipeline,
    RefAction,
)
from repro.serve import SpearServer  # noqa: E402


def build_pipeline(stages: int) -> Pipeline:
    ops = [
        RET("notes", into="material"),
        REF(RefAction.CREATE, "Answer from: {material}. ", key="qa"),
    ]
    for stage in range(stages):
        ops.append(GEN(f"answer_{stage}", prompt="qa"))
        ops.append(
            CHECK(
                Condition.metadata_below("confidence", 0.7),
                then=REF(
                    RefAction.APPEND,
                    f"Refine pass {stage}: cite evidence.",
                    key=f"refine_{stage}",
                ),
            )
        )
    ops.append(GEN("final", prompt="qa"))
    return Pipeline(ops, name="bench_check_cache")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true", help="CI-sized run")
    parser.add_argument("--min-speedup", type=float, default=10.0)
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args()

    stages = 4 if args.tiny else 12
    cold_reps = 5 if args.tiny else 20
    warm_reps = 200 if args.tiny else 1000
    pipeline = build_pipeline(stages)
    env = {"runtime": {"scheduler": True, "deadline_s": 300.0}}

    # Best-of-N timing on both sides: the means drift with scheduler
    # jitter on sub-millisecond workloads, the minima do not.
    cold_times = []
    for __ in range(cold_reps):
        start = time.perf_counter()
        cold_result = check_pipeline(pipeline, **env)
        cold_times.append(time.perf_counter() - start)
    cold_seconds = min(cold_times)

    cache = CheckCache()
    warm_result = cache.check(pipeline, **env)  # populate: one miss
    chunk = max(1, warm_reps // 10)
    warm_times = []
    for __ in range(warm_reps // chunk):
        start = time.perf_counter()
        for __ in range(chunk):
            warm_result = cache.check(pipeline, **env)
        warm_times.append((time.perf_counter() - start) / chunk)
    warm_seconds = min(warm_times)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    identical = [d.render() for d in warm_result] == [
        d.render() for d in cold_result
    ]

    # The serve registration path: strict by default, clean, warning-free.
    server = SpearServer(workers=2)
    clean = Pipeline(
        [
            REF(RefAction.CREATE, "Summarize the ticket.", key="qa"),
            GEN("answer", prompt="qa"),
        ],
        name="serve_clean",
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        server.register_pipeline("clean", clean, prompts={})
    serve_warnings = [str(w.message) for w in caught]

    payload = {
        "stages": stages,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 9),
        "speedup": round(speedup, 2),
        "min_speedup": args.min_speedup,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "results_identical": identical,
        "serve_registration_warnings": serve_warnings,
    }
    output = args.output or (REPO_ROOT / "BENCH_check_cache.json")
    output.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))

    if not identical:
        print("FAIL: warm diagnostics differ from cold", file=sys.stderr)
        return 1
    if serve_warnings:
        print("FAIL: clean serve registration warned", file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: warm re-check speedup {speedup:.1f}x is below the "
            f"{args.min_speedup:.0f}x bar",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: warm re-check {speedup:.0f}x faster than cold "
        f"({cache.hits} hits / {cache.misses} miss)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
