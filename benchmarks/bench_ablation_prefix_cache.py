"""Ablation: how much of the refinement speedup is the prefix cache?

DESIGN.md §5: Table 3's refinement-mode speedups rest on prefix reuse.
This bench re-runs the manual-refinement pipeline with the KV cache
disabled, and sweeps the cache block size to show hit-rate sensitivity to
block quantization.
"""

from __future__ import annotations

import pytest

from repro.data.tweets import make_tweet_corpus
from repro.experiments.common import build_views, compose_item_prompt
from repro.llm.kv_cache import BlockPrefixCache
from repro.llm.model import SimulatedLLM

N_ITEMS = 150
_corpus = make_tweet_corpus(N_ITEMS, seed=7)
_views = build_views()
_instructions = (
    _views.expand("filter_stage")
    + "\nFocus on school-related content such as classes, exams, and homework."
)


def _run_filter_stage(llm: SimulatedLLM) -> tuple[float, float]:
    """Run the refined filter stage; returns (sim_seconds, hit_rate)."""
    llm.bind_tweets(_corpus)
    for tweet in _corpus:
        llm.generate(compose_item_prompt(_instructions, tweet.text))
    return llm.total_latency, llm.overall_cache_hit_rate


def test_prefix_cache_enabled(once):
    seconds, hit_rate = once(_run_filter_stage, SimulatedLLM())
    assert hit_rate > 0.75


def test_prefix_cache_disabled(once):
    seconds_off, hit_rate = once(
        _run_filter_stage, SimulatedLLM(enable_prefix_cache=False)
    )
    assert hit_rate == 0.0
    seconds_on, __ = _run_filter_stage(SimulatedLLM())
    # The cache is worth a large share of the stage latency.
    assert seconds_off / seconds_on > 1.5
    print(f"prefix cache speedup: {seconds_off / seconds_on:.2f}x")


@pytest.mark.parametrize("block_size", [4, 16, 64])
def test_block_size_sweep(once, block_size):
    """Smaller blocks waste less of the shared prefix to quantization."""
    llm = SimulatedLLM(kv_cache=BlockPrefixCache(block_size=block_size))
    __, hit_rate = once(_run_filter_stage, llm)
    assert hit_rate > 0.5
    print(f"block_size={block_size}: hit rate {hit_rate:.1%}")


def test_block_size_monotonicity(once):
    """Hit rate decreases (weakly) as blocks grow coarser."""

    def sweep():
        rates = []
        for block_size in (4, 16, 64):
            llm = SimulatedLLM(kv_cache=BlockPrefixCache(block_size=block_size))
            __, hit_rate = _run_filter_stage(llm)
            rates.append(hit_rate)
        return rates

    rates = once(sweep)
    assert rates[0] >= rates[1] >= rates[2]
