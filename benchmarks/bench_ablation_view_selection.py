"""Ablation: cost-based view selection vs a poor starting view (paper §5).

View-guided refinement says: derive task prompts from the base view that
minimizes refinement effort.  For a dosage/timing extraction task, the
medication-focused view needs no refinement, while starting from the
radiology view requires appended criteria — more tokens per call forever
after.  The bench measures total simulated latency over the clinical
corpus from each starting point.
"""

from __future__ import annotations

from repro.core.views import ViewRegistry
from repro.data.clinical import make_clinical_corpus
from repro.llm.model import SimulatedLLM
from repro.optimizer.view_selection import refine_missing_terms, select_view

N_PATIENTS = 30
_corpus = make_clinical_corpus(N_PATIENTS, seed=11)

REQUIRED_TERMS = ["enoxaparin", "dosage", "timing"]


def _registry() -> ViewRegistry:
    views = ViewRegistry()
    views.define(
        "med_focused",
        "### Task\nSummarize the patient's medication history and highlight "
        "any use of Enoxaparin. Be specific about dosage and timing.\n"
        "Notes:\n{notes}",
    )
    views.define(
        "radiology",
        "### Task\nDescribe the imaging findings and impressions in the "
        "chart below.\nNotes:\n{notes}",
    )
    views.define(
        "generic",
        "### Task\nAnswer questions about the patient chart below.\n"
        "Notes:\n{notes}",
    )
    return views


def _run_from_view(view_name: str) -> float:
    views = _registry()
    __, scores = select_view(views, [view_name], REQUIRED_TERMS)
    refinement = refine_missing_terms(scores[0])
    llm = SimulatedLLM()
    llm.bind_clinical(_corpus)
    for patient in _corpus:
        notes = "\n".join(note.text for note in patient.notes)
        prompt = views.expand(view_name, {"notes": notes})
        if refinement is not None:
            prompt = f"{prompt}\n{refinement}"
        llm.generate(prompt)
    return llm.total_latency


def test_selector_picks_covering_view(once):
    def select():
        return select_view(
            _registry(), ["med_focused", "radiology", "generic"], REQUIRED_TERMS
        )

    winner, scores = once(select)
    assert winner == "med_focused"
    assert scores[0].missing_terms == ()
    assert len(scores[-1].missing_terms) >= 2


def test_best_view_run(once):
    seconds = once(_run_from_view, "med_focused")
    assert seconds > 0


def test_worst_view_run_costs_more(once):
    worst = once(_run_from_view, "radiology")
    best = _run_from_view("med_focused")
    assert worst > best
    print(f"best-view {best:.1f}s vs worst-view {worst:.1f}s")
