"""Benchmark regenerating Table 4: fusion gain by type and selectivity.

Each (fusion order × selectivity) cell runs the sequential and fused plans
over a corpus whose negative fraction *is* the filter selectivity; the
measured simulated-time gain is asserted against the paper's signs and
monotonicity.

Regenerate at full scale with: ``python -m repro.experiments.fusion_selectivity``
"""

from __future__ import annotations

import pytest

from repro.experiments.fusion_selectivity import (
    PAPER_TABLE4,
    SELECTIVITIES,
    run_cell,
)

N_ITEMS = 150


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_map_filter_cell(once, selectivity):
    """Map→Filter fusion wins at every selectivity (paper: ≈20% gain)."""
    cell = once(run_cell, "map_filter", selectivity, n=N_ITEMS)
    assert cell.gain_pct > 10.0
    print(
        f"map_filter s={selectivity:.0%}: gain {cell.gain_pct:+.2f}% "
        f"(paper {PAPER_TABLE4['map_filter'][selectivity]:+.2f}%)"
    )


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_filter_map_cell(once, selectivity):
    """Filter→Map fusion loses at low selectivity, wins at high."""
    cell = once(run_cell, "filter_map", selectivity, n=N_ITEMS)
    if selectivity <= 0.1:
        assert cell.gain_pct < 0.0
    if selectivity >= 0.8:
        assert cell.gain_pct > 5.0
    print(
        f"filter_map s={selectivity:.0%}: gain {cell.gain_pct:+.2f}% "
        f"(paper {PAPER_TABLE4['filter_map'][selectivity]:+.2f}%)"
    )


def test_filter_map_monotone(once):
    """Gain increases with selectivity — the predicate-pushdown effect."""

    def sweep():
        return [
            run_cell("filter_map", selectivity, n=100).gain_pct
            for selectivity in SELECTIVITIES
        ]

    gains = once(sweep)
    assert gains == sorted(gains)
