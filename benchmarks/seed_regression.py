#!/usr/bin/env python
"""Seed a regression fixture from a real ledger run (for gate testing).

Copies a finalized ``runs/<run_id>/`` directory and inflates the gated
report totals (cost, tokens) by ``--inflate-pct``, producing a run that
``spear diff <original> <fixture> --gate`` must reject with exit 2.  CI
uses this to prove the gate actually fires — a diff gate that never
fails is indistinguishable from one that never runs.

Usage::

    python benchmarks/seed_regression.py RUNS/runs_0/000001 regressed/
    spear diff RUNS/runs_0/000001 regressed/ --gate   # must exit 2
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

#: report totals inflated in the fixture; must overlap the CLI's gated
#: metrics (``repro.cli._GATE_METRICS``) so the gate trips.
INFLATED_TOTALS = ("cost_usd", "prompt_tokens", "output_tokens")


def seed_regression(run_dir: Path, out_dir: Path, inflate_pct: float) -> list[str]:
    """Copy ``run_dir`` to ``out_dir`` with inflated report totals."""
    report_path = run_dir / "report.json"
    if not report_path.exists():
        raise SystemExit(
            f"error: {run_dir} has no report.json (not a finalized ledger run)"
        )
    if out_dir.exists():
        raise SystemExit(f"error: {out_dir} already exists")
    shutil.copytree(run_dir, out_dir)

    factor = 1.0 + inflate_pct / 100.0
    report = json.loads((out_dir / "report.json").read_text(encoding="utf-8"))
    totals = report.get("totals", {})
    touched = []
    for key in INFLATED_TOTALS:
        value = totals.get(key)
        if not value:
            continue
        totals[key] = (
            round(value * factor, 6)
            if isinstance(value, float)
            else int(value * factor)
        )
        touched.append(f"{key}: {value} -> {totals[key]}")
    (out_dir / "report.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    return touched


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("run_dir", type=Path, help="a finalized ledger run")
    parser.add_argument("out_dir", type=Path, help="fixture destination")
    parser.add_argument(
        "--inflate-pct",
        type=float,
        default=10.0,
        help="percent inflation applied to the gated totals (default: 10)",
    )
    args = parser.parse_args(argv)
    touched = seed_regression(args.run_dir, args.out_dir, args.inflate_pct)
    if not touched:
        print("error: no non-zero gated totals to inflate", file=sys.stderr)
        return 1
    print(f"seeded regression fixture at {args.out_dir}:")
    for line in touched:
        print(f"  {line}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
