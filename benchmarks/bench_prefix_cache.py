#!/usr/bin/env python
"""Radix prefix cache benchmark: hit-rate uplift, dedup speedup, eviction.

Runs the Table-3 workload (Map: summarize + Filter: negative sentiment
over the seeded tweet corpus, sharing the scaffold prefix) and measures
what the radix-tree prefix cache and prefix-aware scheduling buy:

- a **hit-rate arm**: sequential runs with the radix tier, the legacy
  hash-chain tier, and no prefix cache at all.  At ample capacity the
  radix tier must reproduce the chain tier's Table-3 hit rate exactly
  (drop-in accounting parity) while beating the no-cache run's simulated
  time; the hit rate gates against ``--min-hit-rate``;
- a **scheduler arm**: the 1/4/16-worker sweep through the continuous
  engine with prefix-aware admission (trunk grouping + intra-step dedup)
  enabled — outputs byte-identical to sequential, and the 16-worker
  speedup must come out *strictly above* ``--min-speedup`` (the PR 7
  engine's own 16-worker figure, so dedup must pay for itself);
- an **eviction-pressure arm**: both cache tiers replay the same
  sequential workload at 1/8 of the blocks the full run needs.  The
  chain tier's LRU strands orphaned descendants (resident but
  unreachable blocks), the radix tier's leaf-first eviction cannot —
  its hit rate must be strictly higher;
- a **determinism arm**: two same-seed ledgered scheduler runs must
  ``spear diff --gate`` to zero with prefix-aware admission on.

Writes ``BENCH_prefix.json`` at the repo root (or ``--output``) and
exits non-zero when any gate fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_prefix_cache.py
    PYTHONPATH=src python benchmarks/bench_prefix_cache.py --tiny
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for entry in (str(SRC), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.bench_throughput_parallel import (  # noqa: E402
    PROFILE,
    bind,
    build_pipeline,
    build_state,
    outputs_of,
)
from repro.cli import main as spear_main  # noqa: E402
from repro.core.state import ExecutionState  # noqa: E402
from repro.data import make_tweet_corpus  # noqa: E402
from repro.experiments.common import (  # noqa: E402
    FILTER_NEG_INSTRUCTION,
    MAP_INSTRUCTION,
    SCAFFOLD,
)
from repro.llm.kv_cache import BlockPrefixCache  # noqa: E402
from repro.llm.model import SimulatedLLM  # noqa: E402
from repro.llm.radix_cache import (  # noqa: E402
    RadixPrefixCache,
    shared_prefix_tokens,
)
from repro.obs.ledger import Ledger  # noqa: E402
from repro.runtime.batch import BatchRunner  # noqa: E402
from repro.runtime.options import RuntimeOptions  # noqa: E402
from repro.runtime.parallel import ParallelBatchRunner  # noqa: E402

WORKER_COUNTS = (1, 4, 16)
EVICTION_DIVISOR = 8


def _build_state_with_cache(n_items: int, seed: int, kv_cache=None, **kwargs):
    """The Table-3 workload state with an explicit kv-cache tier."""
    llm = SimulatedLLM(PROFILE, kv_cache=kv_cache, **kwargs)
    corpus = make_tweet_corpus(n_items, seed=seed)
    llm.bind_tweets(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    state.prompts.create(
        "map_p", SCAFFOLD + "\n" + MAP_INSTRUCTION + "\nTweet:\n{tweet}"
    )
    state.prompts.create(
        "filter_p", SCAFFOLD + "\n" + FILTER_NEG_INSTRUCTION + "\nTweet:\n{tweet}"
    )
    return state, list(corpus)


def _sequential(n_items: int, seed: int, kv_cache=None, **kwargs):
    state, items = _build_state_with_cache(n_items, seed, kv_cache, **kwargs)
    batch = BatchRunner(state, bind=bind).run(build_pipeline(), items=items)
    return state, batch


def run_hit_rate_arm(n_items: int, seed: int) -> dict:
    """Table-3 hit-rate uplift: radix vs chain vs no prefix cache."""
    radix_state, radix_batch = _sequential(n_items, seed, RadixPrefixCache())
    chain_state, chain_batch = _sequential(n_items, seed, BlockPrefixCache())
    cold_state, cold_batch = _sequential(
        n_items, seed, enable_prefix_cache=False
    )
    if outputs_of(radix_batch) != outputs_of(chain_batch) or outputs_of(
        radix_batch
    ) != outputs_of(cold_batch):
        raise AssertionError("cache tier changed outputs — caching is broken")
    radix = radix_state.model.kv_cache.snapshot()
    chain = chain_state.model.kv_cache.snapshot()
    for key in ("hit_rate", "cached_tokens", "block_hits", "blocks"):
        if radix[key] != chain[key]:
            raise AssertionError(
                f"radix/chain accounting parity broken on {key}: "
                f"{radix[key]} != {chain[key]}"
            )
    return {
        "radix_hit_rate": round(radix["hit_rate"], 4),
        "chain_hit_rate": round(chain["hit_rate"], 4),
        "cached_tokens": int(radix["cached_tokens"]),
        "resident_blocks": int(radix["blocks"]),
        "radix_nodes": int(radix["nodes"]),
        "radix_leaves": int(radix["leaves"]),
        "sim_elapsed_cached_s": radix_batch.elapsed,
        "sim_elapsed_uncached_s": cold_batch.elapsed,
        "uplift": round(
            cold_batch.elapsed / radix_batch.elapsed, 3
        )
        if radix_batch.elapsed
        else 0.0,
    }


def run_scheduler_arm(n_items: int, seed: int, sequential, baseline) -> dict:
    """Worker sweep with prefix-aware admission (the default engine)."""
    sweep = {}
    for workers in WORKER_COUNTS:
        state, items = build_state(n_items, seed)
        runner = ParallelBatchRunner(state, bind=bind, workers=workers)
        wall0 = time.perf_counter()
        batch = runner.run(build_pipeline(), items=items)
        host_wall = time.perf_counter() - wall0
        if outputs_of(batch) != baseline:
            raise AssertionError(
                f"workers={workers}: prefix-aware outputs diverged from "
                "the sequential baseline"
            )
        engine = runner.last_batcher
        snapshot = engine.snapshot()
        sweep[str(workers)] = {
            "sim_elapsed_s": batch.elapsed,
            "speedup": round(sequential.elapsed / batch.elapsed, 3)
            if batch.elapsed
            else 0.0,
            "host_wall_s": round(host_wall, 4),
            "steps": int(snapshot["flushes"]),
            "mean_step_size": round(snapshot["mean_batch_size"], 2),
            "dedup_tokens": int(snapshot["dedup_tokens"]),
            "mean_step_dedup_tokens": round(
                snapshot["mean_step_dedup_tokens"], 1
            ),
            "kv_hit_rate": round(
                state.model.kv_cache.snapshot()["hit_rate"], 4
            ),
        }
    return sweep


def _trunk_blocks() -> int:
    """Complete cache blocks of the Table-3 map prompt's shared trunk."""
    llm = SimulatedLLM(PROFILE)
    base = SCAFFOLD + "\n" + MAP_INSTRUCTION + "\nTweet:\n"
    a = llm.tokenizer.encode(base + "one tweet text here")
    b = llm.tokenizer.encode(base + "another different tweet")
    block = llm.kv_cache.block_size
    return shared_prefix_tokens(a, b, block) // block


def _tiers_at_capacity(n_items: int, seed: int, capacity: int) -> dict:
    radix_state, _ = _sequential(
        n_items, seed, RadixPrefixCache(capacity_blocks=capacity)
    )
    chain_state, _ = _sequential(
        n_items, seed, BlockPrefixCache(capacity_blocks=capacity)
    )
    radix = radix_state.model.kv_cache.snapshot()
    chain = chain_state.model.kv_cache.snapshot()
    return {
        "capacity_blocks": capacity,
        "radix_hit_rate": round(radix["hit_rate"], 4),
        "chain_hit_rate": round(chain["hit_rate"], 4),
        "radix_evictions": int(radix["evictions"]),
        "chain_evictions": int(chain["evictions"]),
        "hit_rate_gain": round(radix["hit_rate"] - chain["hit_rate"], 4),
    }


def run_eviction_arm(n_items: int, seed: int, full_blocks: int) -> dict:
    """Both tiers under eviction pressure: leaf-first eviction must win.

    The chain tier's LRU can evict a mid-chain parent, stranding its
    still-resident descendants (a prefix walk stops at the first missing
    block), so part of a tight capacity is wasted on unreachable blocks.
    The radix tier evicts leaf-first and keeps every resident block
    reachable.  Two rows:

    - ``pressure``: 1/8 of the blocks the full workload needs — radix
      hit rate must be strictly higher (the acceptance gate);
    - ``trunk_collapse``: capacity one block below the shared scaffold
      trunk — the chain tier's LRU cycles the trunk's head blocks out on
      every insert and its hit rate collapses toward zero, while the
      radix tier keeps the hot trunk interior resident.
    """
    capacity = max(1, full_blocks // EVICTION_DIVISOR)
    pressure = _tiers_at_capacity(n_items, seed, capacity)
    if pressure["radix_hit_rate"] <= pressure["chain_hit_rate"]:
        raise AssertionError(
            f"eviction arm: radix hit rate {pressure['radix_hit_rate']:.4f} "
            f"does not beat chain {pressure['chain_hit_rate']:.4f} at "
            f"capacity {capacity}"
        )
    trunk = _trunk_blocks()
    collapse = _tiers_at_capacity(n_items, seed, max(1, trunk - 1))
    if collapse["hit_rate_gain"] <= 0.25:
        raise AssertionError(
            "eviction arm: trunk-sized capacity no longer collapses the "
            f"chain tier (gain {collapse['hit_rate_gain']:.4f})"
        )
    return {
        "full_workload_blocks": full_blocks,
        "trunk_blocks": trunk,
        "pressure": pressure,
        "trunk_collapse": collapse,
        # Legacy flat keys for the 1/8-capacity gate row.
        "capacity_blocks": pressure["capacity_blocks"],
        "radix_hit_rate": pressure["radix_hit_rate"],
        "chain_hit_rate": pressure["chain_hit_rate"],
        "hit_rate_gain": pressure["hit_rate_gain"],
    }


def run_determinism_arm(n_items: int, seed: int, workers: int) -> dict:
    """Two same-seed ledgered runs must ``spear diff --gate`` to zero."""
    with tempfile.TemporaryDirectory(prefix="bench_prefix_") as tmp:
        run_dirs = []
        for rep in range(2):
            root = Path(tmp) / f"runs_{rep}"
            state, items = build_state(n_items, seed)
            ParallelBatchRunner(
                state,
                bind=bind,
                workers=workers,
                options=RuntimeOptions(ledger_dir=root),
            ).run(build_pipeline(), items=items)
            run_dirs.append(Ledger(root).latest().path)
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            code = spear_main(
                ["diff", str(run_dirs[0]), str(run_dirs[1]), "--gate"]
            )
    if code != 0:
        raise AssertionError(
            f"spear diff --gate exited {code}: same-seed prefix-aware runs "
            f"are not deterministic\n{sink.getvalue()}"
        )
    return {"workers": workers, "diff_gate_exit": code, "identical": True}


def run_benchmark(n_items: int, seed: int) -> dict:
    state, items = build_state(n_items, seed)
    wall0 = time.perf_counter()
    sequential = BatchRunner(state, bind=bind).run(build_pipeline(), items=items)
    seq_wall = time.perf_counter() - wall0
    baseline = outputs_of(sequential)
    full_blocks = int(state.model.kv_cache.snapshot()["blocks"])

    widest = max(WORKER_COUNTS)
    return {
        "profile": PROFILE,
        "items": n_items,
        "seed": seed,
        "sequential": {
            "sim_elapsed_s": sequential.elapsed,
            "items_per_sim_s": sequential.throughput,
            "host_wall_s": round(seq_wall, 4),
        },
        "hit_rate": run_hit_rate_arm(n_items, seed),
        "scheduler": run_scheduler_arm(n_items, seed, sequential, baseline),
        "eviction_pressure": run_eviction_arm(n_items, seed, full_blocks),
        "determinism": run_determinism_arm(n_items, seed, widest),
        "outputs_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=120, help="corpus size (default 120)"
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke: 48 items, same arms",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup", type=float, default=6.123,
        help="fail unless the 16-worker speedup is STRICTLY above this "
        "(default: the PR 7 engine's own 16-worker figure)",
    )
    parser.add_argument(
        "--min-hit-rate", type=float, default=0.5,
        help="fail when the Table-3 radix hit rate is below this",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_prefix.json"
    )
    args = parser.parse_args(argv)

    n_items = 48 if args.tiny else args.items
    result = run_benchmark(n_items, args.seed)

    widest = str(max(WORKER_COUNTS))
    speedup = result["scheduler"][widest]["speedup"]
    hit_rate = result["hit_rate"]["radix_hit_rate"]
    result["widest_workers"] = int(widest)
    result["widest_speedup"] = speedup
    result["min_speedup"] = args.min_speedup
    result["min_hit_rate"] = args.min_hit_rate
    result["ok"] = speedup > args.min_speedup and hit_rate >= args.min_hit_rate

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"sequential: {result['sequential']['sim_elapsed_s']:.2f}s simulated, "
        f"{result['sequential']['items_per_sim_s']:.3f} items/s"
    )
    hr = result["hit_rate"]
    print(
        f"hit rate: radix {hr['radix_hit_rate']:.1%} == chain "
        f"{hr['chain_hit_rate']:.1%} (parity), "
        f"{hr['uplift']:.2f}x simulated-time uplift over no cache"
    )
    for workers in WORKER_COUNTS:
        row = result["scheduler"][str(workers)]
        print(
            f"workers={workers:3d}: speedup {row['speedup']:.2f}x, "
            f"{row['steps']} steps (mean size {row['mean_step_size']}), "
            f"dedup {row['dedup_tokens']} tokens "
            f"({row['mean_step_dedup_tokens']}/step)"
        )
    ev = result["eviction_pressure"]
    print(
        f"eviction @ {ev['capacity_blocks']} blocks (1/{EVICTION_DIVISOR} "
        f"of {ev['full_workload_blocks']}): radix {ev['radix_hit_rate']:.1%} "
        f"vs chain {ev['chain_hit_rate']:.1%} "
        f"(+{ev['hit_rate_gain']:.1%})"
    )
    tc = ev["trunk_collapse"]
    print(
        f"trunk collapse @ {tc['capacity_blocks']} blocks (trunk is "
        f"{ev['trunk_blocks']}): radix {tc['radix_hit_rate']:.1%} vs chain "
        f"{tc['chain_hit_rate']:.1%} (+{tc['hit_rate_gain']:.1%})"
    )
    print(
        f"determinism: same-seed runs diff --gate exit "
        f"{result['determinism']['diff_gate_exit']} (identical)"
    )
    if not result["ok"]:
        if speedup <= args.min_speedup:
            print(
                f"FAIL: 16-worker speedup {speedup:.3f}x is not strictly "
                f"above the required {args.min_speedup}x",
                file=sys.stderr,
            )
        if hit_rate < args.min_hit_rate:
            print(
                f"FAIL: radix hit rate {hit_rate:.1%} is below the "
                f"required {args.min_hit_rate:.1%}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
