"""Benchmark regenerating Figure 1: fusion gain vs accuracy drop per model.

For each simulated backend (Qwen2.5-7B, Mistral-7B, GPT-4o-mini) and each
fusion order, the sequential and fused plans run over a balanced corpus;
speedups and accuracy drops are asserted against the paper's bands.

Regenerate at full scale with: ``python -m repro.experiments.fusion_models``
"""

from __future__ import annotations

import pytest

from repro.experiments.fusion_models import MODELS, run_point

N_ITEMS = 400


@pytest.mark.parametrize("model", MODELS)
def test_map_filter_point(once, model):
    """Paper: all models speed up (up to ~1.33×) at a 4–8pp accuracy cost."""
    point = once(run_point, model, "map_filter", n=N_ITEMS)
    assert point.speedup > 1.15
    assert 0.0 < point.accuracy_drop_pct < 12.0
    print(
        f"{model} map_filter: {point.speedup:.2f}x, "
        f"accuracy drop {point.accuracy_drop_pct:+.1f}pp"
    )


@pytest.mark.parametrize("model", MODELS)
def test_filter_map_point(once, model):
    """Paper: smaller/negative speedups, accuracy drops 0.3–6pp."""
    point = once(run_point, model, "filter_map", n=N_ITEMS)
    map_filter = run_point(model, "map_filter", n=N_ITEMS)
    assert point.speedup < map_filter.speedup
    assert point.accuracy_drop_pct < 9.0
    print(
        f"{model} filter_map: {point.speedup:.2f}x, "
        f"accuracy drop {point.accuracy_drop_pct:+.1f}pp"
    )
