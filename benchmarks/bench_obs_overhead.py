#!/usr/bin/env python
"""Observability-overhead benchmark: the ledger must meter itself.

Runs the Table-3-style refinement-loop workload (the same Map → Enrich →
Digest → Filter pipeline as ``bench_result_cache.py``) twice per
repetition: once with the in-memory collector only (ledger off), once
with the persistent run ledger + time-series recorder enabled on top
(``RuntimeOptions(ledger_dir=...)``), so the measured delta is exactly
the ledger + series persistence.

Two overhead numbers are reported, in the two clocks this repo runs on:

- ``overhead_pct`` — **wall-time overhead on the virtual clock**, the
  currency every SPEAR report, span, and benchmark gate is denominated
  in (``bench_result_cache`` gates its speedup on simulated time too).
  The ledger must never touch the virtual clock or perturb scheduling,
  so the acceptance gate is strict: < ``--max-overhead-pct`` (default
  5%; in practice the delta is exactly 0.0).
- ``host_overhead_pct`` — host CPU overhead of the persistence layer.
  On the simulated substrate every event costs only ~100µs of host
  compute, so per-event persistence shows up magnified here in a way it
  never would against real model latency; it is still gated
  (``--max-host-overhead-pct``, default 35%), to catch pathological
  hot-path regressions.  ``host_us_per_event`` is the portable number:
  the ledger's host cost per recorded event.

Also asserts the non-negotiable invariants of the obs layer:

- final ``(C, M)`` outputs are byte-identical with obs fully enabled
  (observability must never perturb the computation);
- the attribution report conserves tokens — every GEN token is charged
  to exactly one ``(prompt_key, version)`` and the attributed sums equal
  the run-report totals.

Writes ``BENCH_obs_overhead.json`` at the repo root (or ``--output``).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --tiny
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for entry in (str(SRC), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.bench_result_cache import (  # noqa: E402
    ITERATIONS,
    PROFILE,
    build_pipeline,
    build_refiners,
    build_state,
    freeze_outputs,
)
from repro.obs import UNATTRIBUTED, Ledger, ObsCollector  # noqa: E402
from repro.runtime.executor import Executor  # noqa: E402
from repro.runtime.incremental import RefinementLoop  # noqa: E402
from repro.runtime.options import RuntimeOptions  # noqa: E402


def run_arm(n_items: int, seed: int, *, ledger_dir: Path | None) -> dict:
    """One full refinement-loop run; ledgered when ``ledger_dir`` is set.

    Both arms attach a live :class:`ObsCollector` — in-memory metrics are
    the pre-existing obs layer and what ``spear stats`` already needs —
    so the measured delta is exactly the ledger + series persistence.
    """
    state, items = build_state(n_items, seed)
    options = RuntimeOptions(
        model=state.model, clock=state.clock, collector=ObsCollector()
    )
    if ledger_dir is not None:
        options = options.replace(ledger_dir=ledger_dir, series_interval=5.0)
    executor = Executor(options=options)
    loop = RefinementLoop(
        executor,
        build_pipeline(items),
        refiners=build_refiners(),
        max_iterations=ITERATIONS,
    )
    wall0 = time.perf_counter()
    report = loop.run(state)
    host_wall = time.perf_counter() - wall0
    assert report.final is not None
    return {
        "host_wall_s": host_wall,
        "sim_elapsed_s": report.total_elapsed,
        "outputs": freeze_outputs(report.final.state),
    }


def check_attribution_conservation(ledger_dir: Path) -> dict:
    """Token conservation: attributed sums == report totals, no orphans."""
    run = Ledger(ledger_dir).latest()
    assert run is not None, "ledgered arm produced no run directory"
    report = run.report()
    attribution = run.attribution()
    totals = report.totals
    att = attribution.totals
    for field in ("prompt_tokens", "cached_tokens", "output_tokens"):
        if att[field] != totals[field]:
            raise AssertionError(
                f"attribution does not conserve {field}: "
                f"attributed {att[field]} != total {totals[field]}"
            )
    if att["attributed_calls"] != totals["gen_calls"]:
        raise AssertionError(
            f"attribution call count {att['attributed_calls']} != "
            f"gen_calls {totals['gen_calls']}"
        )
    unattributed = attribution.prompts.get(UNATTRIBUTED, {})
    if unattributed.get("prompt_tokens") or unattributed.get("output_tokens"):
        raise AssertionError(
            f"tokens leaked to the unattributed bucket: {unattributed}"
        )
    return {
        "attributed_calls": att["attributed_calls"],
        "prompt_tokens": att["prompt_tokens"],
        "output_tokens": att["output_tokens"],
        "prompt_version_buckets": len(attribution.prompts),
        "conserved": True,
    }


def run_benchmark(
    n_items: int, seed: int, reps: int, keep_runs: Path | None = None
) -> dict:
    """min-over-reps wall times for both arms, interleaved fairly.

    With ``keep_runs`` the per-rep ledger roots (``runs_0/``, ``runs_1/``,
    ...) survive under that directory — CI diffs consecutive same-seed
    runs with ``spear diff --gate`` and archives them as artifacts.
    """
    off_walls: list[float] = []
    on_walls: list[float] = []
    off_sim = on_sim = 0.0
    off_outputs = on_outputs = None
    with contextlib.ExitStack() as stack:
        if keep_runs is not None:
            keep_runs.mkdir(parents=True, exist_ok=True)
            tmp = str(keep_runs)
        else:
            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="bench_obs_")
            )
        for rep in range(reps):
            off = run_arm(n_items, seed, ledger_dir=None)
            on = run_arm(n_items, seed, ledger_dir=Path(tmp) / f"runs_{rep}")
            off_walls.append(off["host_wall_s"])
            on_walls.append(on["host_wall_s"])
            off_sim, on_sim = off["sim_elapsed_s"], on["sim_elapsed_s"]
            off_outputs, on_outputs = off["outputs"], on["outputs"]
        if off_outputs != on_outputs:
            raise AssertionError(
                "outputs diverged with observability enabled — the obs "
                "layer must never perturb the computation"
            )
        last_dir = Path(tmp) / f"runs_{reps - 1}"
        conservation = check_attribution_conservation(last_dir)
        event_count = int(
            Ledger(last_dir).latest().manifest.get("event_count", 0)
        )

    host_off = min(off_walls)
    host_on = min(on_walls)
    host_delta = host_on - host_off
    sim_overhead = ((on_sim - off_sim) / off_sim * 100.0) if off_sim else 0.0
    host_overhead = (host_delta / host_off * 100.0) if host_off else 0.0
    return {
        "profile": PROFILE,
        "items": n_items,
        "seed": seed,
        "iterations": ITERATIONS,
        "reps": reps,
        "event_count": event_count,
        "sim_elapsed_off_s": round(off_sim, 6),
        "sim_elapsed_on_s": round(on_sim, 6),
        "overhead_pct": round(sim_overhead, 4),
        "host_wall_off_s": round(host_off, 4),
        "host_wall_on_s": round(host_on, 4),
        "host_overhead_pct": round(host_overhead, 2),
        "host_us_per_event": round(host_delta * 1e6 / event_count, 2)
        if event_count
        else 0.0,
        "outputs_identical": True,
        "attribution": conservation,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=40, help="corpus size (default 40)"
    )
    parser.add_argument("--tiny", action="store_true", help="CI smoke: 12 items")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="repetitions per arm; min wall time is reported (default 3)",
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=5.0,
        help="fail when simulated wall-time overhead exceeds this percent "
        "(default 5; the ledger must not touch the virtual clock at all)",
    )
    parser.add_argument(
        "--max-host-overhead-pct",
        type=float,
        default=35.0,
        help="fail when host CPU overhead exceeds this percent (default 35; "
        "lenient because the simulated substrate magnifies per-event cost)",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_obs_overhead.json"
    )
    parser.add_argument(
        "--keep-runs",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist the per-rep ledger roots under DIR (default: a "
        "temp directory, removed afterwards)",
    )
    args = parser.parse_args(argv)

    n_items = 12 if args.tiny else args.items
    result = run_benchmark(
        n_items, args.seed, args.reps, keep_runs=args.keep_runs
    )
    result["max_overhead_pct"] = args.max_overhead_pct
    result["max_host_overhead_pct"] = args.max_host_overhead_pct
    sim_ok = result["overhead_pct"] < args.max_overhead_pct
    host_ok = result["host_overhead_pct"] < args.max_host_overhead_pct
    result["ok"] = sim_ok and host_ok

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"simulated wall: {result['sim_elapsed_off_s']:.2f}s off / "
        f"{result['sim_elapsed_on_s']:.2f}s on -> "
        f"{result['overhead_pct']:+.4f}% (budget {args.max_overhead_pct:g}%)"
    )
    print(
        f"host wall:      {result['host_wall_off_s']:.4f}s off / "
        f"{result['host_wall_on_s']:.4f}s on -> "
        f"{result['host_overhead_pct']:+.2f}% "
        f"(budget {args.max_host_overhead_pct:g}%, "
        f"{result['host_us_per_event']:.1f}µs/event over "
        f"{result['event_count']} events)"
    )
    print(
        f"outputs byte-identical; tokens conserved across "
        f"{result['attribution']['prompt_version_buckets']} "
        f"prompt-version buckets"
    )
    if not sim_ok:
        print(
            f"FAIL: simulated overhead {result['overhead_pct']:.4f}% "
            f">= budget {args.max_overhead_pct:g}%",
            file=sys.stderr,
        )
    if not host_ok:
        print(
            f"FAIL: host overhead {result['host_overhead_pct']:.2f}% "
            f">= budget {args.max_host_overhead_pct:g}%",
            file=sys.stderr,
        )
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
