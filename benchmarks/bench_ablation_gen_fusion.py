"""Ablation: GEN fusion vs sequential GENs, with and without prefix caching.

Paper §5 motivates fusing semantically coupled GENs (sections over the
same view) "to reduce token duplication".  This ablation quantifies the
interaction with prefix caching, which attacks the *same* duplication:

- without a prefix cache, fusion clearly wins (one overhead, the shared
  scaffold prefilled once instead of twice);
- with the cache on, the duplicated scaffold is already nearly free, so
  fusion's remaining benefit is call count (throughput), not latency.

That interaction is exactly why the paper says GEN fusion must be applied
*selectively*.
"""

from __future__ import annotations

from repro.core import ExecutionState, GEN
from repro.core.derived import VIEW
from repro.data.clinical import make_clinical_corpus
from repro.llm.model import SimulatedLLM
from repro.optimizer.gen_fusion import FusedGen

N_PATIENTS = 20
_corpus = make_clinical_corpus(N_PATIENTS, seed=11)

_QUESTIONS = (
    ("dosage", "Highlight any use of Enoxaparin; be specific about dosage."),
    ("timing", "Highlight any use of Enoxaparin; state the timing."),
    ("indication", "Why was Enoxaparin administered? State the indication."),
)


def _state(llm: SimulatedLLM, patient) -> ExecutionState:
    state = ExecutionState(model=llm, clock=llm.clock)
    state.context.put("notes", "\n".join(note.text for note in patient.notes))
    state.views.define(
        "chart_question",
        "### Task\nYou are reviewing the chart of one patient.\n"
        "Notes:\n{notes}\nQuestion: {question}",
        params=("question",),
    )
    for label, question in _QUESTIONS:
        state = VIEW(
            "chart_question", key=f"q_{label}", params={"question": question}
        ).apply(state)
    return state


def _run(fused: bool, cached: bool) -> tuple[float, int]:
    """Run all patients; returns (simulated seconds, total calls)."""
    llm = SimulatedLLM(enable_prefix_cache=cached)
    llm.bind_clinical(_corpus)
    for patient in _corpus:
        state = _state(llm, patient)
        if fused:
            FusedGen(
                [(label, f"q_{label}") for label, __ in _QUESTIONS]
            ).apply(state)
        else:
            for label, __ in _QUESTIONS:
                state = GEN(label, prompt=f"q_{label}").apply(state)
    return llm.total_latency, llm.calls


def test_sequential_uncached(once):
    seconds, calls = once(_run, fused=False, cached=False)
    assert calls == 3 * N_PATIENTS


def test_fused_uncached_wins(once):
    fused_seconds, fused_calls = once(_run, fused=True, cached=False)
    sequential_seconds, __ = _run(fused=False, cached=False)
    assert fused_calls == N_PATIENTS
    assert fused_seconds < sequential_seconds
    print(
        f"uncached: fused {fused_seconds:.0f}s vs sequential "
        f"{sequential_seconds:.0f}s ({sequential_seconds / fused_seconds:.2f}x)"
    )


def test_fused_cached_saves_calls_not_latency(once):
    fused_seconds, fused_calls = once(_run, fused=True, cached=True)
    sequential_seconds, sequential_calls = _run(fused=False, cached=True)
    assert fused_calls == sequential_calls / 3
    # With prefix caching, fusion's latency edge shrinks to within 20%.
    assert fused_seconds < sequential_seconds * 1.2
    print(
        f"cached: fused {fused_seconds:.0f}s/{fused_calls} calls vs "
        f"sequential {sequential_seconds:.0f}s/{sequential_calls} calls"
    )
