"""Ablation: priority-aware context packing vs naive truncation.

Under a tight context window, the packer keeps the highest-value
fragments (structured orders, the discharge summary) whole, while naive
head-truncation cuts whatever happens to be last — frequently the
structured orders the QA answer needs.  Measured: QA field correctness
for treated patients under both policies at the same budget.
"""

from __future__ import annotations

from dataclasses import replace

from repro.data.clinical import make_clinical_corpus
from repro.llm.model import SimulatedLLM
from repro.llm.packing import Fragment, pack_fragments
from repro.llm.profiles import get_profile
from repro.llm.tokenizer import Tokenizer

N_PATIENTS = 25
_corpus = make_clinical_corpus(N_PATIENTS, seed=11, missing_orders_fraction=0.0)
_TOKENIZER = Tokenizer()

INSTRUCTION = (
    "Highlight any use of Enoxaparin. Be specific about dosage and timing.\n"
    "Notes:\n"
)
#: tight enough that only ~one note fits: naive head-truncation keeps the
#: labs + radiology stream, priority packing keeps orders + the discharge
#: summary where the dosage evidence lives.
BUDGET = 60


def _fragments(patient) -> list[Fragment]:
    """Chart fragments in retrieval order (reverse chronological): labs and
    the radiology report stream in first; the dosage-bearing nursing and
    discharge notes and the structured orders arrive last — the worst case
    for naive head-truncation."""
    by_kind = {note.kind: note for note in patient.notes}
    fragments = [
        Fragment(f"LAB: {lab.test} = {lab.value}", priority=0, name=lab.lab_id)
        for lab in patient.labs
    ]
    for kind, priority in (
        ("radiology_report", 1),
        ("nursing_note", 1),
        ("discharge_summary", 2),
    ):
        note = by_kind[kind]
        fragments.append(Fragment(note.text, priority=priority, name=note.note_id))
    fragments.extend(
        Fragment(
            f"ORDER: {order.medication} {order.dosage} {order.frequency}",
            priority=3,
            name=order.order_id,
        )
        for order in patient.orders
    )
    return fragments


def _naive_truncate(fragments: list[Fragment], budget: int) -> str:
    joined = "\n".join(fragment.text for fragment in fragments)
    pieces = _TOKENIZER.pieces(joined)[:budget]
    return " ".join(pieces)


def _dosage_accuracy(policy: str) -> float:
    """Fraction of treated patients whose answer reports the true dosage."""
    window = BUDGET + _TOKENIZER.count(INSTRUCTION) + 64
    profile = replace(get_profile("qwen2.5-7b-instruct"), context_window=window)
    llm = SimulatedLLM(profile)
    llm.bind_clinical(_corpus)
    correct = 0
    treated = 0
    for patient in _corpus:
        if not patient.on_enoxaparin:
            continue
        treated += 1
        fragments = _fragments(patient)
        if policy == "packed":
            context = pack_fragments(fragments, BUDGET).text
        else:
            context = _naive_truncate(fragments, BUDGET)
        result = llm.generate(INSTRUCTION + context)
        if patient.dosage and patient.dosage in result.text:
            correct += 1
    return correct / treated if treated else 0.0


def test_priority_packing(once):
    accuracy = once(_dosage_accuracy, "packed")
    assert accuracy > 0.6


def test_naive_truncation_loses_dosage_information(once):
    naive = once(_dosage_accuracy, "naive")
    packed = _dosage_accuracy("packed")
    assert packed > naive
    print(f"dosage accuracy: packed {packed:.2f} vs naive truncation {naive:.2f}")
